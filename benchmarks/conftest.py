"""Benchmark harness configuration.

Each benchmark runs one registered experiment (one per paper table/figure),
prints the reproduced table, and asserts the paper's qualitative *shape*
(who wins, what grows, where the knees are) -- absolute numbers depend on
the benchmark scale and host.

Scale control: set ``REPRO_SCALE`` (e.g. ``0.06`` (default), ``0.2``, or
``paper`` for the full Table 1 setup -- the latter takes hours in pure
Python).
"""

from __future__ import annotations

import pytest

from repro.experiments import run_experiment


@pytest.fixture
def run_figure(benchmark):
    """Run one experiment under pytest-benchmark and print its table."""

    def _run(exp_id: str, **kwargs):
        result = benchmark.pedantic(
            lambda: run_experiment(exp_id, **kwargs), rounds=1, iterations=1
        )
        print()
        print(result.table())
        return result

    return _run
