"""Ablation bench: the dead-reckoning threshold delta (Section 3.4)."""


def test_ablation_dead_reckoning(run_figure):
    result = run_figure("ablation-delta")
    messages = result.column("msgs/s")
    errors = [e or 0.0 for e in result.column("error")]

    # Larger thresholds suppress velocity relays: the largest delta sends
    # no more messages than delta = 0.
    assert messages[-1] <= messages[0]
    # Accuracy is the price: delta = 0 is exact, large deltas are not.
    assert errors[0] == 0.0
    assert errors[-1] >= errors[0]
