"""Ablation bench: query grouping under a skewed focal distribution."""


def test_ablation_grouping(run_figure):
    result = run_figure("ablation-grouping")
    off_row, on_row = result.rows
    assert off_row[0] == "off" and on_row[0] == "on"

    headers = result.headers
    downlink = headers.index("downlink/s")
    uplink = headers.index("uplink/s")
    evals = headers.index("evals")

    # Grouping bundles broadcasts of queries sharing (focal, region) and
    # bitmap-packs result reports: strictly less traffic in both
    # directions, and fewer object-side containment evaluations.
    assert on_row[downlink] <= off_row[downlink]
    assert on_row[uplink] <= off_row[uplink]
    assert on_row[evals] <= off_row[evals]
