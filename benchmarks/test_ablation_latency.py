"""Ablation bench: result staleness under modeled delivery latency."""


def test_ablation_latency(run_figure):
    result = run_figure("ablation-latency")
    latencies = result.column("latency-steps")
    jitters = result.column("jitter")
    errors = [e if e is not None else 0.0 for e in result.column("error")]
    inflight = result.column("mean-inflight")
    delays = result.column("delivery-delay")

    fixed = [i for i, j in enumerate(jitters) if j == 0]
    jittered = [i for i, j in enumerate(jitters) if j > 0]
    assert fixed and jittered

    # Zero latency is the inline path: exact results, empty pipeline.
    zero = fixed[0]
    assert latencies[zero] == 0
    assert errors[zero] == 0.0
    assert inflight[zero] == 0.0
    assert delays[zero] == 0.0

    # Positive latency makes results stale (the server's view lags the
    # oracle by the pipeline depth), but dead reckoning keeps the error
    # far from total failure.
    for i in fixed[1:]:
        assert errors[i] > 0.0
        assert errors[i] < 0.85

    # The pipeline actually holds traffic, monotonically more of it as
    # the per-hop delay grows (Little's law at a roughly fixed rate).
    for earlier, later in zip(fixed, fixed[1:]):
        assert inflight[later] > inflight[earlier]

    # With jitter off, every deferred envelope takes exactly the
    # configured per-hop delay.
    for i in fixed[1:]:
        assert delays[i] == latencies[i]

    # Jitter widens the delay (mean strictly above the base latency) and
    # keeps the error in the same bounded regime.
    for i in jittered:
        assert delays[i] > latencies[i]
        assert 0.0 < errors[i] < 0.85
