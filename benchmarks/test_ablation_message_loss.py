"""Ablation bench: protocol robustness under wireless message loss."""


def test_ablation_message_loss(run_figure):
    result = run_figure("ablation-loss")
    models = result.column("model")
    rates = result.column("loss-rate")
    errors = [e or 0.0 for e in result.column("error")]
    lost_uplinks = result.column("lost-uplinks")

    iid = [i for i, model in enumerate(models) if model == "iid"]
    burst = [i for i, model in enumerate(models) if model == "burst"]
    disconnect = [i for i, model in enumerate(models) if model == "disconnect"]
    assert iid and burst and disconnect

    # Zero loss is exact (the EQP + delta=0 guarantee).
    assert rates[iid[0]] == 0.0
    assert errors[iid[0]] == 0.0

    # Loss hurts, but degradation is graceful: the error stays roughly
    # proportional to the loss rate (no cliff), and even at 40% loss the
    # mean missing fraction stays below total failure.
    assert errors[iid[-1]] >= errors[iid[0]]
    assert errors[iid[-1]] < 0.85
    for i in iid[1:]:
        assert errors[i] <= 2.5 * rates[i]

    # The loss injector actually dropped traffic at non-zero rates.
    assert all(lost_uplinks[i] > 0 for i in iid[1:])

    # Burst channels (matched stationary mean, served by the reliability
    # layer) degrade gracefully too, and really drop traffic.
    for i in burst:
        assert errors[i] < 0.85
        assert lost_uplinks[i] > 0

    # Scheduled disconnections drop traffic while the windows are open;
    # carrier sensing + resync keep the mean error bounded.
    for i in disconnect:
        assert lost_uplinks[i] > 0
        assert errors[i] < 0.85
