"""Ablation bench: protocol robustness under wireless message loss."""


def test_ablation_message_loss(run_figure):
    result = run_figure("ablation-loss")
    rates = result.column("loss-rate")
    errors = [e or 0.0 for e in result.column("error")]

    # Zero loss is exact (the EQP + delta=0 guarantee).
    assert rates[0] == 0.0
    assert errors[0] == 0.0

    # Loss hurts, but degradation is graceful: the error stays roughly
    # proportional to the loss rate (no cliff), and even at 40% loss the
    # mean missing fraction stays below total failure.
    assert errors[-1] >= errors[0]
    assert errors[-1] < 0.85
    for rate, error in zip(rates[1:], errors[1:]):
        assert error <= 2.5 * rate

    # The loss injector actually dropped traffic at non-zero rates.
    assert all(v > 0 for v in result.column("lost-uplinks")[1:])
