"""Ablation bench: mobility-model robustness (random waypoint)."""


def test_ablation_mobility(run_figure):
    result = run_figure("ablation-mobility")
    headers = result.headers
    naive = headers.index("naive")
    eqp = headers.index("eqp")
    lqp = headers.index("lqp")
    eqp_error = headers.index("eqp-error")

    for row in result.rows:
        # MobiEyes beats naive central reporting under both mobility models,
        # lazy stays at or below eager, and EQP remains exact.
        assert row[eqp] < row[naive]
        assert row[lqp] <= row[eqp]
        assert (row[eqp_error] or 0.0) == 0.0

    kinds = [row[0] for row in result.rows]
    assert kinds == ["velocity-change", "waypoint"]
