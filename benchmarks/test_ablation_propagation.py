"""Ablation bench: eager vs lazy propagation at the default setup."""


def test_ablation_propagation(run_figure):
    result = run_figure("ablation-propagation")
    eager_row, lazy_row = result.rows
    headers = result.headers
    msgs = headers.index("msgs/s")
    uplink = headers.index("uplink/s")
    error = headers.index("error")

    # Lazy saves messages, mostly on the uplink.
    assert lazy_row[msgs] <= eager_row[msgs]
    assert lazy_row[uplink] < eager_row[uplink]

    # Eager propagation (with delta = 0) is exact; lazy's error stays a
    # small fraction.
    assert (eager_row[error] or 0.0) == 0.0
    assert (lazy_row[error] or 0.0) <= 0.2
