"""Analysis bench: the closed-form LQT model tracks simulation."""


def test_analysis_lqt_size(run_figure):
    result = run_figure("analysis-lqt")
    simulated = result.column("simulated")
    modeled = result.column("model")

    # Both grow with alpha.
    assert simulated[-1] > simulated[0]
    assert modeled[-1] > modeled[0]

    # Pointwise agreement within a small factor (boundary clipping makes
    # the model an over-estimate for huge monitoring regions).
    for sim, mod in zip(simulated, modeled):
        assert mod / 3.0 <= sim <= mod * 3.0
