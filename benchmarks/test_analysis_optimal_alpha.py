"""Analysis bench: the reconstructed analytical alpha model vs simulation."""


def test_analysis_optimal_alpha(run_figure):
    result = run_figure("analysis-alpha")
    alphas = result.column("alpha")
    simulated = result.column("simulated")
    modeled = result.column("model-total")

    # Both curves agree on the qualitative story: the smallest alpha is
    # never the cheapest point (left side of the U).
    assert simulated[0] > min(simulated)
    assert modeled[0] > min(modeled)

    # The model's argmin lands within one sweep step of the simulated one.
    sim_best = alphas[simulated.index(min(simulated))]
    model_best = alphas[modeled.index(min(modeled))]
    idx_sim = alphas.index(sim_best)
    idx_model = alphas.index(model_best)
    assert abs(idx_sim - idx_model) <= 1

    # Absolute agreement within a small constant factor across the sweep
    # (the model omits result-churn reports).
    for sim, mod in zip(simulated, modeled):
        assert mod / 4.0 <= sim <= mod * 4.0
