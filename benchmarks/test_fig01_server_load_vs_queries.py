"""Reproduces Figure 1: server load vs number of queries (log scale)."""


def test_fig01_server_load_vs_queries(run_figure):
    result = run_figure("fig01")
    object_index = result.column("object-index")
    query_index = result.column("query-index")
    eqp = result.column("mobieyes-eqp")
    lqp = result.column("mobieyes-lqp")

    # MobiEyes sits far below both centralized approaches at every sweep
    # point (the paper reports up to two orders of magnitude).
    for row in range(len(eqp)):
        assert eqp[row] < object_index[row]
        assert eqp[row] < query_index[row]
        assert lqp[row] < object_index[row]
        assert lqp[row] < query_index[row]

    # The object index is insensitive to the query count (its cost is the
    # per-object index update); the query index grows with it.
    assert max(object_index) < 3.0 * min(object_index)
    assert query_index[-1] > query_index[0]

    # Lazy propagation is no more expensive than eager on the server.
    assert sum(lqp) <= sum(eqp) * 1.25
