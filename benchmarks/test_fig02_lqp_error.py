"""Reproduces Figure 2: result error of lazy query propagation."""


def test_fig02_lqp_error(run_figure):
    result = run_figure("fig02")
    alpha_headers = [h for h in result.headers if h.startswith("error")]
    columns = {h: result.column(h) for h in alpha_headers}

    # All errors are valid fractions.
    for column in columns.values():
        assert all(v is None or 0.0 <= v <= 1.0 for v in column)

    # Error increases as alpha shrinks (more cell crossings are missed):
    # the smallest-alpha column dominates the largest-alpha column.
    smallest = [v or 0.0 for v in columns[alpha_headers[0]]]
    largest = [v or 0.0 for v in columns[alpha_headers[-1]]]
    assert sum(smallest) >= sum(largest)
