"""Reproduces Figure 3: effect of alpha on server load."""


def test_fig03_server_load_vs_alpha(run_figure):
    result = run_figure("fig03")
    alphas = result.column("alpha")
    eqp = result.column("mobieyes-eqp")
    object_index = result.column("object-index")
    query_index = result.column("query-index")

    # MobiEyes stays below both centralized baselines across the sweep.
    for row in range(len(alphas)):
        assert eqp[row] < object_index[row]
        assert eqp[row] < query_index[row]

    # Too-small alpha hurts: frequent cell crossings dominate.  The paper's
    # U-shape means the smallest alpha is never the cheapest point.
    assert eqp[0] > min(eqp)
