"""Reproduces Figure 4: effect of alpha on messaging cost."""


def test_fig04_messaging_vs_alpha(run_figure):
    result = run_figure("fig04")
    count_headers = [h for h in result.headers if h.startswith("msgs")]

    for header in count_headers:
        column = result.column(header)
        # Small alpha is penalized by frequent cell-change traffic: the
        # smallest alpha is never the sweep's minimum (left side of the U).
        assert column[0] > min(column)

    # More queries cost more messages at every alpha.
    lightest = result.column(count_headers[0])
    heaviest = result.column(count_headers[-1])
    assert all(h >= l for h, l in zip(heaviest, lightest))
