"""Reproduces Figure 5: effect of the number of objects on messaging."""


def test_fig05_messaging_vs_objects(run_figure):
    result = run_figure("fig05")
    naive = result.column("naive")
    optimal = result.column("central-optimal")
    eqp = result.column("mobieyes-eqp")
    lqp = result.column("mobieyes-lqp")

    for row in range(len(naive)):
        # Naive reporting is the worst approach everywhere.
        assert naive[row] >= optimal[row]
        assert naive[row] >= eqp[row]
        # Lazy propagation never sends more than eager.
        assert lqp[row] <= eqp[row]

    # Naive grows with the population: within the first query-count block
    # the largest population costs measurably more than the smallest.
    assert naive[2] > naive[0]
