"""Reproduces Figure 6: uplink messaging cost vs number of objects."""


def test_fig06_uplink_vs_objects(run_figure):
    result = run_figure("fig06")
    naive = result.column("naive")
    optimal = result.column("central-optimal")
    eqp = result.column("mobieyes-eqp")
    lqp = result.column("mobieyes-lqp")

    for row in range(len(naive)):
        # LQP slashes uplink traffic: only focal objects talk to the
        # server.  It must beat every other approach on every row.
        assert lqp[row] < naive[row]
        assert lqp[row] < optimal[row]
        assert lqp[row] < eqp[row]
        # Naive uplink is the heaviest.
        assert naive[row] >= optimal[row]
        assert naive[row] >= eqp[row]
