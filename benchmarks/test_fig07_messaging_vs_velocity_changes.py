"""Reproduces Figure 7: effect of velocity-change frequency on messaging."""


def test_fig07_messaging_vs_velocity_changes(run_figure):
    result = run_figure("fig07")
    naive = result.column("naive")
    optimal = result.column("central-optimal")
    eqp = result.column("mobieyes-eqp")
    lqp = result.column("mobieyes-lqp")

    for row in range(len(naive)):
        assert naive[row] >= optimal[row]
        assert lqp[row] <= eqp[row]

    # Central-optimal grows with nmo (each change is a report), so the
    # ratio of EQP to central-optimal shrinks as nmo rises (the paper's
    # "gap tends to decrease").
    first_ratio = eqp[0] / max(optimal[0], 1e-12)
    last_ratio = eqp[-1] / max(optimal[-1], 1e-12)
    assert last_ratio <= first_ratio * 1.1
