"""Reproduces Figure 8: effect of base-station coverage on messaging."""


def test_fig08_messaging_vs_bs_coverage(run_figure):
    result = run_figure("fig08")
    count_headers = [h for h in result.headers if h.startswith("msgs")]

    for header in count_headers:
        column = result.column(header)
        # Bigger coverage areas need fewer broadcasts per monitoring
        # region: the largest deployment never costs more than the
        # smallest, and the effect saturates (tail is nearly flat).
        assert column[-1] <= column[0]
        assert column[-1] <= column[-2] * 1.05
