"""Reproduces Figure 9: per-object communication power vs query count."""


def test_fig09_power_vs_queries(run_figure):
    result = run_figure("fig09")
    naive = result.column("naive")
    optimal = result.column("central-optimal")
    mobieyes = result.column("mobieyes")

    for row in range(len(naive)):
        # Naive burns the most energy: every object transmits every step
        # and transmitting costs ~20x receiving.
        assert naive[row] > optimal[row]
        assert naive[row] > mobieyes[row]

    # MobiEyes' power grows with the query count (more broadcasts are
    # over-heard); the paper shows central-optimal overtaking it for
    # larger numbers of queries.
    assert mobieyes[-1] > mobieyes[0]
    gap_first = mobieyes[0] - optimal[0]
    gap_last = mobieyes[-1] - optimal[-1]
    assert gap_last >= gap_first
