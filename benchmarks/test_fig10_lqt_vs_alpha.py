"""Reproduces Figure 10: average LQT size vs alpha."""


def test_fig10_lqt_vs_alpha(run_figure):
    result = run_figure("fig10")
    lqt_headers = [h for h in result.headers if h.startswith("lqt")]

    for header in lqt_headers:
        column = result.column(header)
        # LQT size grows with alpha (monitoring regions inflate).
        assert column[-1] > column[0]
        # Super-linear growth: the last doubling of alpha gains more than
        # the first one in absolute terms.
        assert (column[-1] - column[-2]) >= (column[1] - column[0]) * 0.5

    # More queries => larger LQTs at every alpha.
    lightest = result.column(lqt_headers[0])
    heaviest = result.column(lqt_headers[-1])
    assert all(h >= l for h, l in zip(heaviest, lightest))
