"""Reproduces Figure 11: average LQT size vs number of queries."""


def test_fig11_lqt_vs_queries(run_figure):
    result = run_figure("fig11")
    lqt_headers = [h for h in result.headers if h.startswith("lqt")]

    for header in lqt_headers:
        column = result.column(header)
        # Linear growth in the query count: strictly more queries never
        # shrink the average LQT, and the largest sweep point clearly
        # exceeds the smallest.
        assert column[-1] > column[0]

    # Larger alpha gives larger LQTs at every query count.
    small_alpha = result.column(lqt_headers[0])
    large_alpha = result.column(lqt_headers[-1])
    assert all(lg >= sm for lg, sm in zip(large_alpha, small_alpha))
