"""Reproduces Figure 12: average LQT size vs query-radius factor."""


def test_fig12_lqt_vs_radius(run_figure):
    result = run_figure("fig12")
    sizes = result.column("mean-lqt-size")

    # Monotone non-decreasing in the radius factor...
    assert all(b >= a * 0.98 for a, b in zip(sizes, sizes[1:]))
    # ...with clear growth across the whole sweep.
    assert sizes[-1] > sizes[0]

    # The paper's step behaviour: radius changes smaller than the cell
    # size are invisible -- factors 0.5 and 1.0 keep radii within one cell
    # quantum at the default alpha, giving (near-)identical LQT sizes.
    assert abs(sizes[1] - sizes[0]) <= 0.25 * sizes[1]
