"""Reproduces Figure 13: effect of the safe-period optimization."""


def test_fig13_safe_period(run_figure):
    result = run_figure("fig13")
    evals_off = result.column("evals(off)")
    evals_on = result.column("evals(on)")
    skipped = result.column("skipped(on)")

    # The optimization never evaluates more than the baseline.
    assert all(on <= off for on, off in zip(evals_on, evals_off))

    # At the largest alpha (wide monitoring regions, long distances) the
    # safe period skips a substantial share of evaluations.
    assert skipped[-1] > 0
    assert evals_on[-1] < evals_off[-1]

    # Relative savings grow with alpha (the paper's headline effect).
    saved_small = 1.0 - evals_on[0] / max(evals_off[0], 1)
    saved_large = 1.0 - evals_on[-1] / max(evals_off[-1], 1)
    assert saved_large >= saved_small
