"""Airport geofence alerts: static queries and result subscriptions.

A control tower keeps *static* continuous queries (fixed circular fences
around two runways and a rectangular restricted zone) over a fleet of
ground vehicles, and receives push alerts the moment a vehicle enters or
leaves a fence -- the observer API over MobiEyes' differential result
reports.  Static queries run through the same monitoring-region machinery
as moving queries but need no focal-object bookkeeping at all.

Run:  python examples/airport_geofence_alerts.py
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro import (
    Circle,
    MobiEyesConfig,
    MobiEyesSystem,
    MovingObject,
    Point,
    QuerySpec,
    Rect,
    SimulationRng,
    Vector,
)

AIRPORT = Rect(0, 0, 20, 20)
NUM_VEHICLES = 40


@dataclass(frozen=True)
class GroundVehicleFilter:
    """Alert only on vehicles without an airside clearance."""

    def matches(self, props: Mapping[str, Any]) -> bool:
        return not props.get("cleared", False)


def build_fleet(rng: SimulationRng) -> list[MovingObject]:
    fleet = []
    for oid in range(NUM_VEHICLES):
        fleet.append(
            MovingObject(
                oid=oid,
                pos=Point(rng.uniform(0, 20), rng.uniform(0, 20)),
                vel=Vector.from_polar(rng.direction(), rng.uniform(5, 25)),
                max_speed=30.0,
                props={"cleared": rng.random() < 0.5},
            )
        )
    return fleet


def main() -> None:
    rng = SimulationRng(77)
    config = MobiEyesConfig(uod=AIRPORT, alpha=2.0, base_station_side=5.0, step_seconds=30.0)
    system = MobiEyesSystem(
        config, build_fleet(rng), rng.fork(1), velocity_changes_per_step=6
    )

    fences = {
        "runway-09L": QuerySpec.static(Circle(6.0, 14.0, 2.0), GroundVehicleFilter()),
        "runway-27R": QuerySpec.static(Circle(14.0, 6.0, 2.0), GroundVehicleFilter()),
        "restricted": QuerySpec.static(Rect(9.0, 9.0, 3.0, 3.0), GroundVehicleFilter()),
    }
    alerts: list[str] = []
    for name, spec in fences.items():
        qid = system.install_query(spec)

        def on_change(q, oid, entered, fence=name):
            verb = "ENTERED" if entered else "left"
            alerts.append(f"step {system.clock.step:3d}: vehicle {oid:2d} {verb} {fence}")

        system.subscribe(qid, on_change)

    system.run(120)  # one simulated hour at a 30 s step

    print(f"{NUM_VEHICLES} ground vehicles, {len(fences)} static fences, 1 hour\n")
    for line in alerts[:25]:
        print(line)
    if len(alerts) > 25:
        print(f"... and {len(alerts) - 25} more alerts")
    print()
    print(f"total alerts      : {len(alerts)}")
    print(f"messages/second   : {system.metrics.messages_per_second():.2f}")
    print(f"focal objects used: {len(system.server.fot)} (static queries need none)")


if __name__ == "__main__":
    main()
