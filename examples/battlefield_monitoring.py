"""Battlefield monitoring: the paper's motivating query MQ1.

    "Give me the number of friendly units within 5 miles radius around me
     during the next 2 hours"

posted by marching units.  Demonstrates eager vs lazy query propagation on
the same scenario: LQP sends far fewer uplink messages (radio silence
matters in the field) at the price of a small, measured result error.

Run:  python examples/battlefield_monitoring.py
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro import (
    Circle,
    MobiEyesConfig,
    MobiEyesSystem,
    MovingObject,
    Point,
    PropagationMode,
    QuerySpec,
    Rect,
    SimulationRng,
    Vector,
)

FIELD = Rect(0, 0, 60, 60)
NUM_FRIENDLY = 150
NUM_NEUTRAL = 100
NUM_SCOUTS = 10  # scouts post the MQ1-style queries
TWO_HOURS_STEPS = 240  # 2 h of 30 s steps


@dataclass(frozen=True)
class FriendlyFilter:
    """Matches friendly units only."""

    def matches(self, props: Mapping[str, Any]) -> bool:
        return props.get("allegiance") == "friendly"


def build_field(rng: SimulationRng) -> list[MovingObject]:
    objects: list[MovingObject] = []
    oid = 0
    for allegiance, count, speed in (
        ("friendly", NUM_FRIENDLY, (5, 25)),
        ("neutral", NUM_NEUTRAL, (2, 15)),
    ):
        for _ in range(count):
            objects.append(
                MovingObject(
                    oid=oid,
                    pos=Point(rng.uniform(FIELD.lx, FIELD.ux), rng.uniform(FIELD.ly, FIELD.uy)),
                    vel=Vector.from_polar(rng.direction(), rng.uniform(*speed)),
                    max_speed=30.0,
                    props={"allegiance": allegiance},
                )
            )
            oid += 1
    return objects


def run_campaign(propagation: PropagationMode) -> tuple[float, float, float | None]:
    rng = SimulationRng(42)
    objects = build_field(rng)
    config = MobiEyesConfig(
        uod=FIELD, alpha=6.0, base_station_side=12.0, propagation=propagation
    )
    system = MobiEyesSystem(
        config, objects, rng.fork(1), velocity_changes_per_step=25, track_accuracy=True
    )
    for oid in range(NUM_SCOUTS):  # the first NUM_SCOUTS units are scouts
        system.install_query(QuerySpec(oid=oid, region=Circle(0, 0, 5.0), filter=FriendlyFilter()))
    system.run(TWO_HOURS_STEPS // 4)  # 30 simulated minutes keeps the demo snappy
    metrics = system.metrics
    return (
        metrics.messages_per_second(),
        metrics.uplink_messages_per_second(),
        metrics.mean_result_error(),
    )


def main() -> None:
    print(f"{NUM_SCOUTS} scouts tracking friendly units within 5 miles")
    print(f"{NUM_FRIENDLY} friendly + {NUM_NEUTRAL} neutral units on a 60x60 mi field\n")
    print("propagation  msgs/s  uplink/s  mean-error")
    for mode in (PropagationMode.EAGER, PropagationMode.LAZY):
        total, uplink, error = run_campaign(mode)
        err = "0" if not error else f"{error:.4f}"
        print(f"{mode.value:>11}  {total:6.2f}  {uplink:8.2f}  {err:>10}")
    print("\nLazy propagation keeps non-focal units radio-silent on cell")
    print("crossings; they pick up new queries from the next broadcast.")


if __name__ == "__main__":
    main()
