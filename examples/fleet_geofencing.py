"""Fleet geofencing: moving geofences around convoy leaders.

A logistics operator runs several convoys; every truck must stay within an
escort radius of its convoy leader, and dispatch wants a live list of the
trucks *outside* the fence (= leader's query result complement).  Multiple
fence radii per leader (warning at 3 mi, violation at 6 mi) make the
queries *groupable MQs* (same focal object), so this example also shows
the effect of the query-grouping and safe-period optimizations on
object-side work and message counts.

Run:  python examples/fleet_geofencing.py
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro import (
    Circle,
    MobiEyesConfig,
    MobiEyesSystem,
    MovingObject,
    Point,
    QuerySpec,
    Rect,
    SimulationRng,
    Vector,
)

REGION = Rect(0, 0, 80, 80)
NUM_CONVOYS = 5
TRUCKS_PER_CONVOY = 12
WARNING_RADIUS = 3.0
VIOLATION_RADIUS = 6.0


@dataclass(frozen=True)
class ConvoyFilter:
    """Matches trucks of one convoy."""

    convoy: int

    def matches(self, props: Mapping[str, Any]) -> bool:
        return props.get("convoy") == self.convoy


def build_fleet(rng: SimulationRng) -> tuple[list[MovingObject], list[int]]:
    objects: list[MovingObject] = []
    leaders: list[int] = []
    oid = 0
    for convoy in range(NUM_CONVOYS):
        anchor = Point(rng.uniform(10, 70), rng.uniform(10, 70))
        heading = rng.direction()
        leaders.append(oid)
        for rank in range(TRUCKS_PER_CONVOY):
            jitter = Vector.from_polar(rng.direction(), rng.uniform(0.0, 4.0))
            objects.append(
                MovingObject(
                    oid=oid,
                    pos=Point(anchor.x + jitter.x, anchor.y + jitter.y),
                    vel=Vector.from_polar(heading, rng.uniform(35, 55)),
                    max_speed=60.0,
                    props={"convoy": convoy, "rank": rank},
                )
            )
            oid += 1
    return objects, leaders


def run_fleet(grouping: bool, safe_period: bool) -> dict[str, float]:
    rng = SimulationRng(99)
    objects, leaders = build_fleet(rng)
    config = MobiEyesConfig(
        uod=REGION,
        alpha=8.0,
        base_station_side=16.0,
        grouping=grouping,
        safe_period=safe_period,
    )
    system = MobiEyesSystem(
        config, objects, rng.fork(1), velocity_changes_per_step=8, track_accuracy=True
    )
    fences: dict[int, tuple[int, int]] = {}
    for convoy, leader in enumerate(leaders):
        keep = ConvoyFilter(convoy)
        warning = system.install_query(
            QuerySpec(oid=leader, region=Circle(0, 0, WARNING_RADIUS), filter=keep)
        )
        violation = system.install_query(
            QuerySpec(oid=leader, region=Circle(0, 0, VIOLATION_RADIUS), filter=keep)
        )
        fences[leader] = (warning, violation)
    system.run(60)

    # Report the stragglers of each convoy at the end of the run.
    stragglers = {}
    for convoy, leader in enumerate(leaders):
        _warning, violation = fences[leader]
        inside = system.result(violation)
        members = {o.oid for o in objects if o.props["convoy"] == convoy and o.oid != leader}
        stragglers[convoy] = sorted(members - inside)

    metrics = system.metrics
    return {
        "stragglers": stragglers,
        "msgs_per_s": metrics.messages_per_second(),
        "evaluations": metrics.total_evaluated_queries(),
        "skipped": metrics.total_skipped_by_safe_period(),
        "error": metrics.mean_result_error(),
    }


def main() -> None:
    print(f"{NUM_CONVOYS} convoys x {TRUCKS_PER_CONVOY} trucks, fences at "
          f"{WARNING_RADIUS} and {VIOLATION_RADIUS} miles\n")
    print("grouping  safe-period  msgs/s  evaluations  skipped  error")
    baseline = None
    for grouping in (False, True):
        for safe_period in (False, True):
            out = run_fleet(grouping, safe_period)
            if baseline is None:
                baseline = out
            print(
                f"{'on' if grouping else 'off':>8}  {'on' if safe_period else 'off':>11}  "
                f"{out['msgs_per_s']:6.2f}  {out['evaluations']:11d}  "
                f"{out['skipped']:7d}  {out['error']}"
            )
    print("\nstragglers outside the violation fence (last configuration):")
    out = run_fleet(True, True)
    for convoy, ids in out["stragglers"].items():
        print(f"  convoy {convoy}: {ids if ids else 'none'}")


if __name__ == "__main__":
    main()
