"""Quickstart: a minimal MobiEyes deployment.

Builds a small world of moving objects, installs one moving query bound to
a focal object, steps the simulation, and prints the continuously
maintained result next to the ground truth.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    Circle,
    MobiEyesConfig,
    MobiEyesSystem,
    MovingObject,
    Point,
    QuerySpec,
    Rect,
    SimulationRng,
    Vector,
)


def build_world() -> list[MovingObject]:
    """Sixty objects on a 50 x 50 mile area, deterministic placement."""
    rng = SimulationRng(seed=2004)  # EDBT 2004
    objects = []
    for oid in range(60):
        objects.append(
            MovingObject(
                oid=oid,
                pos=Point(rng.uniform(0, 50), rng.uniform(0, 50)),
                vel=Vector.from_polar(rng.direction(), rng.uniform(10, 60)),
                max_speed=60.0,
            )
        )
    return objects


def main() -> None:
    objects = build_world()
    config = MobiEyesConfig(
        uod=Rect(0, 0, 50, 50),
        alpha=5.0,  # grid cell side (miles)
        base_station_side=10.0,
    )
    system = MobiEyesSystem(
        config,
        objects,
        SimulationRng(7),
        velocity_changes_per_step=6,
        track_accuracy=True,
    )

    # "Give me the objects within 4 miles around object 0" -- the query
    # region travels with object 0 (its focal object).
    qid = system.install_query(QuerySpec(oid=0, region=Circle(0, 0, 4.0)))

    print("step  focal-position      result (object ids)        exact?")
    for _ in range(10):
        system.step()
        focal = system.client(0).obj
        reported = sorted(system.result(qid))
        exact = sorted(system.oracle_results()[qid])
        ok = "yes" if reported == exact else "NO"
        print(
            f"{system.clock.step:4d}  ({focal.pos.x:5.1f},{focal.pos.y:5.1f})   "
            f"{reported!s:<26} {ok}"
        )

    metrics = system.metrics
    print()
    print(f"wireless messages/second : {metrics.messages_per_second():.2f}")
    print(f"  uplink                 : {metrics.uplink_messages_per_second():.2f}")
    print(f"  downlink               : {metrics.downlink_messages_per_second():.2f}")
    print(f"mean LQT size            : {metrics.mean_lqt_size():.2f}")
    print(f"mean result error        : {metrics.mean_result_error()}")


if __name__ == "__main__":
    main()
