"""Taxi dispatch: the paper's motivating query MQ2.

    "Give me the positions of those customers who are looking for a taxi
     and are within 5 miles, during the next 20 minutes"

posted by taxi drivers.  Each taxi is the focal object of a moving query
whose filter keeps only customers currently hailing.  The example shows
how application-defined property filters plug into the protocol and how
differential result maintenance reacts as customers start/stop hailing
(property changes take effect on re-installation; here hailing status is
static per run, so churn comes from movement).

Run:  python examples/taxi_dispatch.py
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro import (
    Circle,
    MobiEyesConfig,
    MobiEyesSystem,
    MovingObject,
    Point,
    QuerySpec,
    Rect,
    SimulationRng,
    Vector,
)

CITY = Rect(0, 0, 40, 40)
NUM_TAXIS = 8
NUM_CUSTOMERS = 120
HAIL_PROBABILITY = 0.3


@dataclass(frozen=True)
class HailingCustomerFilter:
    """Matches customers that are currently looking for a taxi."""

    def matches(self, props: Mapping[str, Any]) -> bool:
        return props.get("role") == "customer" and bool(props.get("hailing"))


def build_city(rng: SimulationRng) -> list[MovingObject]:
    objects: list[MovingObject] = []
    for oid in range(NUM_TAXIS):
        objects.append(
            MovingObject(
                oid=oid,
                pos=Point(rng.uniform(CITY.lx, CITY.ux), rng.uniform(CITY.ly, CITY.uy)),
                vel=Vector.from_polar(rng.direction(), rng.uniform(15, 35)),
                max_speed=40.0,
                props={"role": "taxi"},
            )
        )
    for oid in range(NUM_TAXIS, NUM_TAXIS + NUM_CUSTOMERS):
        objects.append(
            MovingObject(
                oid=oid,
                pos=Point(rng.uniform(CITY.lx, CITY.ux), rng.uniform(CITY.ly, CITY.uy)),
                vel=Vector.from_polar(rng.direction(), rng.uniform(1, 4)),  # walking
                max_speed=5.0,
                props={"role": "customer", "hailing": rng.random() < HAIL_PROBABILITY},
            )
        )
    return objects


def main() -> None:
    rng = SimulationRng(1234)
    objects = build_city(rng)
    config = MobiEyesConfig(uod=CITY, alpha=4.0, base_station_side=8.0, step_seconds=30.0)
    system = MobiEyesSystem(
        config, objects, rng.fork(1), velocity_changes_per_step=12, track_accuracy=True
    )

    taxi_queries = {
        oid: system.install_query(
            QuerySpec(oid=oid, region=Circle(0, 0, 5.0), filter=HailingCustomerFilter())
        )
        for oid in range(NUM_TAXIS)
    }

    # 20 minutes = 40 steps of 30 s.
    for _ in range(40):
        system.step()

    hailing_total = sum(
        1 for o in objects if o.props.get("role") == "customer" and o.props.get("hailing")
    )
    print(f"{NUM_TAXIS} taxis, {NUM_CUSTOMERS} customers ({hailing_total} hailing)\n")
    print("taxi  customers-in-range  (sample positions)")
    for oid, qid in taxi_queries.items():
        members = sorted(system.result(qid))
        sample = ", ".join(
            f"#{m}@({system.client(m).obj.pos.x:.1f},{system.client(m).obj.pos.y:.1f})"
            for m in members[:3]
        )
        print(f"{oid:4d}  {len(members):18d}  {sample}")

    metrics = system.metrics
    print()
    print(f"20 simulated minutes, mean result error: {metrics.mean_result_error()}")
    print(
        f"messages/second: {metrics.messages_per_second():.2f} "
        f"(uplink {metrics.uplink_messages_per_second():.2f})"
    )


if __name__ == "__main__":
    main()
