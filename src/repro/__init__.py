"""MobiEyes reproduction: distributed processing of continuously moving
queries on moving objects (Gedik & Liu, EDBT 2004).

Public entry points:

- :class:`repro.core.MobiEyesSystem` -- the distributed system (the paper's
  contribution), driven as a time-stepped simulation.
- :class:`repro.baselines.CentralizedSystem` -- the centralized baselines
  (object index / query index; naive / central-optimal reporting).
- :mod:`repro.workload` -- the paper's Table 1 workload generator.
- :mod:`repro.experiments` -- one registered experiment per paper figure.
"""

from repro.core import MobiEyesConfig, MobiEyesSystem, PropagationMode, QuerySpec
from repro.geometry import Circle, Point, Rect, Vector
from repro.mobility import MovingObject
from repro.sim import SimulationRng

__version__ = "1.0.0"

__all__ = [
    "Circle",
    "MobiEyesConfig",
    "MobiEyesSystem",
    "MovingObject",
    "Point",
    "PropagationMode",
    "QuerySpec",
    "Rect",
    "SimulationRng",
    "Vector",
    "__version__",
]
