"""Analytical models: optimal-alpha messaging cost and expected LQT size."""

from repro.analysis.alpha_model import AlphaCostModel
from repro.analysis.lqt_model import LqtSizeModel

__all__ = ["AlphaCostModel", "LqtSizeModel"]
