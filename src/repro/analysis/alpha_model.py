"""Analytical model of the messaging cost as a function of alpha.

Section 5.3 of the paper: "The optimal value of the alpha parameter can be
derived analytically using a simple model.  In this paper we omit the
analytical model for space restrictions."  This module reconstructs that
simple model.

Per simulated second the wireless messages break down into four terms:

1. **Cell-change uplinks.**  An object with speed ``v`` and a uniformly
   random heading crosses the vertical lines of an ``alpha`` grid at rate
   ``|v cos(theta)| / alpha`` and the horizontal lines at
   ``|v sin(theta)| / alpha``; with ``E|cos| = E|sin| = 2/pi`` the expected
   crossing rate is ``(4 / pi) * E[v] / alpha`` per hour.  Under eager
   propagation every object reports crossings; under lazy propagation only
   focal objects do.

2. **Velocity-change uplinks.**  ``nmo`` objects change velocity per step;
   a fraction ``nmq / no`` of them are focal objects, and only those
   report.

3. **Velocity-change broadcasts.**  Every reported focal velocity change is
   re-broadcast to the query's monitoring region, costing roughly
   ``ceil((alpha + 2 r + alen) / alen) ** 2`` station messages (the number
   of ``alen`` tiles the monitoring-region footprint straddles).

4. **Focal cell-change broadcasts.**  Focal-object cell crossings trigger a
   broadcast to the union of the old and new monitoring regions (one cell
   wider along the crossing axis).

Result-change reports are excluded: their rate depends on result churn, not
alpha, so they shift every curve by a constant without moving the optimum.
The model reproduces the U-shape of Figure 4 (uplinks fall as ``1/alpha``,
broadcast fan-out grows as ``alpha**2``) and its argmin locates the paper's
"ideal alpha" range.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.sim.rng import zipf_weights
from repro.workload.params import SimulationParameters

MEAN_ABS_HEADING_COMPONENT = 2.0 / math.pi  # E|cos(theta)| for uniform theta


@dataclass(frozen=True, slots=True)
class AlphaCostModel:
    """Closed-form expected messages/second as a function of alpha.

    Attributes mirror the Table 1 parameters that matter for messaging:
    population, query count, velocity changes per step, mean object speed
    (miles/hour), mean query radius (miles), base-station side (miles), and
    the time step (seconds).
    """

    num_objects: int
    num_queries: int
    velocity_changes_per_step: int
    mean_speed: float
    mean_radius: float
    base_station_side: float
    step_seconds: float
    lazy: bool = False

    @staticmethod
    def from_params(params: SimulationParameters, lazy: bool = False) -> "AlphaCostModel":
        """Derive the model inputs from a Table 1 parameter set.

        The mean speed is ``E[max_speed] / 2`` (speeds are re-drawn
        uniformly in ``[0, max]``); the mean radius and mean max-speed are
        zipf-weighted over the paper's candidate lists.
        """
        speed_weights = zipf_weights(len(params.max_speeds), params.speed_zipf_exponent)
        mean_max_speed = sum(w * s for w, s in zip(speed_weights, params.max_speeds))
        radius_weights = zipf_weights(len(params.radius_means), params.radius_zipf_exponent)
        mean_radius = sum(w * r for w, r in zip(radius_weights, params.radius_means))
        return AlphaCostModel(
            num_objects=params.num_objects,
            num_queries=params.num_queries,
            velocity_changes_per_step=params.velocity_changes_per_step,
            mean_speed=mean_max_speed / 2.0,
            mean_radius=mean_radius * params.radius_factor,
            base_station_side=params.base_station_side,
            step_seconds=params.time_step_seconds,
            lazy=lazy,
        )

    # ------------------------------------------------------------- pieces

    def cell_crossing_rate(self, alpha: float) -> float:
        """Expected grid-cell crossings per object per second."""
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        per_hour = 2.0 * MEAN_ABS_HEADING_COMPONENT * self.mean_speed / alpha
        return per_hour / 3600.0

    def focal_velocity_reports_per_second(self) -> float:
        """Focal objects reporting a velocity change, per second."""
        focal_fraction = self.num_queries / max(1, self.num_objects)
        per_step = self.velocity_changes_per_step * focal_fraction
        return per_step / self.step_seconds

    def stations_per_monitoring_region(self, alpha: float, widened: float = 0.0) -> float:
        """Broadcast messages needed to cover one monitoring region.

        The footprint is ``alpha + 2 r`` wide (+ ``widened`` for the
        old-new union after a focal cell crossing); a region of side ``s``
        placed uniformly at random straddles ``s / alen + 1`` station tiles
        per axis.
        """
        side = alpha + 2.0 * self.mean_radius + widened
        per_axis = side / self.base_station_side + 1.0
        return per_axis * per_axis

    # -------------------------------------------------------------- rates

    def uplink_rate(self, alpha: float) -> float:
        """Expected uplink messages/second."""
        reporters = self.num_queries if self.lazy else self.num_objects
        cell_uplinks = reporters * self.cell_crossing_rate(alpha)
        return cell_uplinks + self.focal_velocity_reports_per_second()

    def downlink_rate(self, alpha: float) -> float:
        """Expected downlink (broadcast) messages/second."""
        velocity_broadcasts = (
            self.focal_velocity_reports_per_second()
            * self.stations_per_monitoring_region(alpha)
        )
        focal_crossings = self.num_queries * self.cell_crossing_rate(alpha)
        update_broadcasts = focal_crossings * self.stations_per_monitoring_region(
            alpha, widened=alpha
        )
        return velocity_broadcasts + update_broadcasts

    def total_rate(self, alpha: float) -> float:
        """Expected total messages/second (excluding result churn)."""
        return self.uplink_rate(alpha) + self.downlink_rate(alpha)

    # ------------------------------------------------------------ optimum

    def optimal_alpha(
        self, candidates: Sequence[float] | None = None
    ) -> tuple[float, float]:
        """``(alpha*, rate*)`` minimizing the modeled total message rate.

        Scans a geometric candidate grid by default; the model is smooth
        and unimodal, so a scan is plenty.
        """
        if candidates is None:
            candidates = [0.25 * 1.25**k for k in range(30)]  # 0.25 .. ~200
        best_alpha = None
        best_rate = math.inf
        for alpha in candidates:
            rate = self.total_rate(alpha)
            if rate < best_rate:
                best_alpha, best_rate = alpha, rate
        assert best_alpha is not None
        return best_alpha, best_rate
