"""Analytical model of the expected LQT size (Figs. 10-12 in closed form).

An object holds query ``q`` in its LQT exactly when (a) its current grid
cell lies inside ``q``'s monitoring region and (b) it passes ``q``'s
filter.  For a circle of radius ``r`` the monitoring region is the block of
cells intersecting the bounding box of side ``alpha + 2 r``; averaged over
focal positions within a cell, its geometric footprint is a square of side
``2 (alpha + r)`` (one extra cell per axis beyond the bounding box, since
closed cells touching the box boundary are included).  With objects uniform
over the universe of discourse of area ``A``,

.. math::

    E[|LQT|] \\approx nmq \\cdot selectivity \\cdot \\frac{(2 (alpha + r))^2}{A}

which is linear in the query count (Fig. 11), grows quadratically -- the
paper says "exponentially" -- in alpha (Fig. 10), and steps with the radius
only through the cell quantization the closed form smooths over (Fig. 12).
Boundary clipping makes the model an over-estimate when monitoring regions
are large relative to the universe.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.rng import zipf_weights
from repro.workload.params import SimulationParameters


@dataclass(frozen=True, slots=True)
class LqtSizeModel:
    """Closed-form expected LQT size for the Table 1 workload."""

    num_queries: int
    mean_radius: float
    selectivity: float
    area_sq_miles: float

    @staticmethod
    def from_params(params: SimulationParameters) -> "LqtSizeModel":
        """Derive the model inputs from a Table 1 parameter set."""
        weights = zipf_weights(len(params.radius_means), params.radius_zipf_exponent)
        mean_radius = sum(w * r for w, r in zip(weights, params.radius_means))
        return LqtSizeModel(
            num_queries=params.num_queries,
            mean_radius=mean_radius * params.radius_factor,
            selectivity=params.query_selectivity,
            area_sq_miles=params.area_sq_miles,
        )

    def monitoring_footprint_area(self, alpha: float) -> float:
        """Expected geometric footprint (mi^2) of one monitoring region,
        ignoring boundary clipping."""
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        side = 2.0 * (alpha + self.mean_radius)
        return side * side

    def expected_lqt_size(self, alpha: float, num_queries: int | None = None) -> float:
        """Expected number of queries in a uniformly placed object's LQT."""
        nmq = self.num_queries if num_queries is None else num_queries
        fraction = min(1.0, self.monitoring_footprint_area(alpha) / self.area_sq_miles)
        return nmq * self.selectivity * fraction
