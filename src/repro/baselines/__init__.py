"""Centralized baselines: object/query indexing, naive/optimal reporting."""

from repro.baselines.centralized import (
    CentralizedConfig,
    CentralizedSystem,
    IndexingMode,
    ReportingMode,
)
from repro.baselines.object_index import ObjectIndexEngine
from repro.baselines.query_index import QueryIndexEngine
from repro.baselines.reporting import (
    BITS_POSITION_REPORT,
    BITS_STATE_REPORT,
    CentralOptimalReporting,
    NaiveReporting,
    ReportingPolicy,
)

__all__ = [
    "BITS_POSITION_REPORT",
    "BITS_STATE_REPORT",
    "CentralOptimalReporting",
    "CentralizedConfig",
    "CentralizedSystem",
    "IndexingMode",
    "NaiveReporting",
    "ObjectIndexEngine",
    "QueryIndexEngine",
    "ReportingMode",
    "ReportingPolicy",
]
