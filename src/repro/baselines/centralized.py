"""The centralized moving-query processor used as the paper's baseline.

Everything happens at the server: objects uplink reports per a
:class:`~repro.baselines.reporting.ReportingPolicy` (naive or central
optimal), the server maintains a server-side position store (extrapolating
from velocity vectors under central-optimal reporting), keeps a spatial
index over objects or over queries, and evaluates all queries each step.

The system exposes the same driving surface as
:class:`~repro.core.system.MobiEyesSystem` (``install_query`` / ``run`` /
``result`` / ``metrics``) so experiments can swap engines.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.baselines.object_index import ObjectIndexEngine
from repro.baselines.query_index import QueryIndexEngine
from repro.baselines.reporting import CentralOptimalReporting, NaiveReporting
from repro.core.query import MovingQuery, QueryId, QuerySpec
from repro.geometry import Point, Rect
from repro.metrics.accuracy import exact_results, mean_result_error
from repro.metrics.collectors import MetricsLog, StepStats
from repro.mobility.model import MotionState, MovingObject, ObjectId
from repro.network.messaging import MessageLedger
from repro.network.radio import RadioModel
from repro.sim.clock import SimulationClock
from repro.sim.engine import SimulationEngine
from repro.sim.rng import SimulationRng
from repro.grid import Grid
from repro.mobility.motion import MotionModel


class ReportingMode(enum.Enum):
    """How objects report to the central server."""

    NAIVE = "naive"
    CENTRAL_OPTIMAL = "central-optimal"


class IndexingMode(enum.Enum):
    """Which side the central server indexes."""

    OBJECTS = "objects"
    QUERIES = "queries"


@dataclass(frozen=True, slots=True)
class CentralizedConfig:
    """Configuration of the centralized baseline."""

    uod: Rect
    step_seconds: float = 30.0
    reporting: ReportingMode = ReportingMode.NAIVE
    indexing: IndexingMode = IndexingMode.OBJECTS
    dead_reckoning_threshold: float = 0.0
    radio: RadioModel = field(default_factory=RadioModel)
    #: grid cell size used only by the oracle's bucketing (not the protocol)
    oracle_alpha: float = 5.0


class CentralizedSystem:
    """A central server evaluating all moving queries itself."""

    def __init__(
        self,
        config: CentralizedConfig,
        objects: Sequence[MovingObject],
        rng: SimulationRng | None = None,
        velocity_changes_per_step: int = 0,
        track_accuracy: bool = False,
        warmup_steps: int = 0,
        motion: MotionModel | None = None,
    ) -> None:
        self.config = config
        self.rng = rng if rng is not None else SimulationRng()
        self.ledger = MessageLedger(radio=config.radio)
        if motion is not None:
            if list(motion.objects) != list(objects):
                raise ValueError("motion model must wrap the same object population")
            self.motion = motion
        else:
            self.motion = MotionModel(
                objects, config.uod, self.rng, velocity_changes_per_step=velocity_changes_per_step
            )
        self._objects: dict[ObjectId, MovingObject] = {o.oid: o for o in self.motion.objects}
        self._object_order = sorted(self._objects)
        self.track_accuracy = track_accuracy
        self._oracle_grid = Grid(config.uod, config.oracle_alpha)

        if config.reporting is ReportingMode.NAIVE:
            self.policy = NaiveReporting()
        else:
            self.policy = CentralOptimalReporting(threshold=config.dead_reckoning_threshold)

        if config.indexing is IndexingMode.OBJECTS:
            self.index = ObjectIndexEngine()
        else:
            self.index = QueryIndexEngine()

        # Server-side knowledge: last reported motion state per object.
        # Initial states are known at registration time.
        self._server_states: dict[ObjectId, MotionState] = {
            oid: self._objects[oid].snapshot() for oid in self._object_order
        }
        self._server_positions: dict[ObjectId, Point] = {
            oid: state.pos for oid, state in self._server_states.items()
        }
        self._queries: dict[QueryId, MovingQuery] = {}
        self._results: dict[QueryId, set[ObjectId]] = {}
        self._next_qid: QueryId = 1
        self._pending_reports: list[tuple[ObjectId, MotionState]] = []

        self.server_seconds = 0.0
        self.server_ops = 0
        self.metrics = MetricsLog(
            step_seconds=config.step_seconds,
            population=len(self.motion),
            warmup_steps=warmup_steps,
        )
        self._ledger_mark = self.ledger.snapshot()

        self.engine = SimulationEngine(SimulationClock(config.step_seconds))
        self.engine.register("movement", self._movement_phase)
        self.engine.register("reporting", self._reporting_phase)
        self.engine.register("server", self._server_phase)
        self.engine.register("measurement", self._measurement_phase)

        # Seed the index with the initial positions (server work, untimed
        # setup -- the paper measures steady-state load).
        for oid in self._object_order:
            self._apply_position(oid, self._server_positions[oid])

    # --------------------------------------------------------------- API

    @property
    def clock(self) -> SimulationClock:
        """The simulation clock driving this system."""
        return self.engine.clock

    def install_query(self, spec: QuerySpec) -> QueryId:
        """Register a query at the server (no wireless traffic involved)."""
        if spec.oid is not None and spec.oid not in self._objects:
            raise KeyError(f"unknown focal object {spec.oid}")
        qid = self._next_qid
        self._next_qid += 1
        query = spec.with_qid(qid)
        self._queries[qid] = query
        self._results[qid] = set()
        if isinstance(self.index, QueryIndexEngine):
            focal_pos = self._server_positions[spec.oid] if spec.oid is not None else None
            self.index.add_query(query, focal_pos)
        return qid

    def install_queries(self, specs: Iterable[QuerySpec]) -> list[QueryId]:
        """Install several query specs; returns their qids in order."""
        return [self.install_query(spec) for spec in specs]

    def remove_query(self, qid: QueryId) -> None:
        """Uninstall a query everywhere it is known."""
        del self._queries[qid]
        self._results.pop(qid, None)
        if isinstance(self.index, QueryIndexEngine):
            self.index.remove_query(qid)

    def step(self) -> int:
        """Advance the simulation by one time step."""
        return self.engine.step()

    def run(self, steps: int) -> int:
        """Run ``steps`` consecutive steps; returns the final step index."""
        return self.engine.run(steps)

    def result(self, qid: QueryId) -> frozenset[ObjectId]:
        """The current result set of a query."""
        return frozenset(self._results[qid])

    def results(self) -> dict[QueryId, frozenset[ObjectId]]:
        """All current query results, keyed by query id."""
        return {qid: frozenset(members) for qid, members in self._results.items()}

    def oracle_results(self) -> dict[QueryId, frozenset[ObjectId]]:
        """Exact results computed from true positions (ground truth)."""
        return exact_results(self.motion.objects, self._queries.values(), self._oracle_grid)

    # ------------------------------------------------------------- phases

    def _movement_phase(self, clock: SimulationClock) -> None:
        self.motion.advance(clock.step_hours, clock.now_hours)

    def _reporting_phase(self, clock: SimulationClock) -> None:
        self._pending_reports.clear()
        for oid in self._object_order:
            report = self.policy.report(self._objects[oid], clock.now_hours)
            if report is None:
                continue
            state, bits = report
            self.ledger.record_uplink(type(self.policy).__name__, bits, sender=oid)
            self._pending_reports.append((oid, state))

    def _server_phase(self, clock: SimulationClock) -> None:
        started = time.perf_counter()
        # 1. Ingest reports into the server-side store.
        for oid, state in self._pending_reports:
            self._server_states[oid] = state
        # 2. Refresh server-side positions (extrapolating under
        #    central-optimal reporting) and update the index.  With the
        #    query index, all focal rects move before any object is probed
        #    so probes see a consistent snapshot of the query regions.
        now = clock.now_hours
        extrapolate = self.config.reporting is ReportingMode.CENTRAL_OPTIMAL
        changed: list[ObjectId] = []
        for oid in self._object_order:
            state = self._server_states[oid]
            pos = state.predict(now) if extrapolate else state.pos
            if pos != self._server_positions[oid]:
                self._server_positions[oid] = pos
                changed.append(oid)
                self.server_ops += 1
        if isinstance(self.index, QueryIndexEngine):
            for oid in changed:
                self.index.update_focal(oid, self._server_positions[oid])
            for oid in changed:
                self.index.probe(oid, self._server_positions[oid], self._objects[oid])
        else:
            for oid in changed:
                self.index.apply_position(oid, self._server_positions[oid])
        # 3. Evaluate all queries.
        evaluated = self.index.evaluate(self._queries, self._server_positions, self._objects)
        for qid, members in evaluated.items():
            self._results[qid] = members
        self.server_ops += len(self._queries)
        self.server_seconds += time.perf_counter() - started

    def _apply_position(self, oid: ObjectId, pos: Point) -> None:
        if isinstance(self.index, QueryIndexEngine):
            self.index.update_focal(oid, pos)
            self.index.probe(oid, pos, self._objects[oid])
        else:
            self.index.apply_position(oid, pos)

    def _measurement_phase(self, clock: SimulationClock) -> None:
        mark = self.ledger.snapshot()
        delta = self._ledger_mark.delta(mark)
        self._ledger_mark = mark
        error = None
        if self.track_accuracy:
            error = mean_result_error(self.results(), self.oracle_results())
        self.metrics.append(
            StepStats(
                step=clock.step,
                server_seconds=self.server_seconds,
                server_ops=self.server_ops,
                uplink_messages=delta.uplink_count,
                downlink_messages=delta.downlink_count,
                uplink_bits=delta.uplink_bits,
                downlink_bits=delta.downlink_bits,
                energy_joules=delta.total_energy,
                result_error=error,
            )
        )
        self.server_seconds = 0.0
        self.server_ops = 0
