"""Centralized baseline 1: indexing objects (paper Section 5.2).

A spatial index (R*-tree) is built over object positions.  As new object
positions arrive, the index is updated; periodically *all* queries are
evaluated against the object index.  The dominant cost is the per-object
index update, which is why the paper observes an almost constant server
load that only slightly increases with the number of queries.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.query import MovingQuery, QueryId
from repro.geometry import Point, Rect
from repro.mobility.model import MovingObject, ObjectId
from repro.spatial import RStarTree


class ObjectIndexEngine:
    """R*-tree over object positions with full periodic query evaluation."""

    name = "object-index"

    def __init__(self) -> None:
        self._tree = RStarTree()
        self._indexed_pos: dict[ObjectId, Point] = {}

    def apply_position(self, oid: ObjectId, pos: Point) -> None:
        """Ingest a (new) position for an object, updating the index."""
        old = self._indexed_pos.get(oid)
        if old is not None:
            if old == pos:
                return
            self._tree.update(_point_rect(old), _point_rect(pos), oid)
        else:
            self._tree.insert(_point_rect(pos), oid)
        self._indexed_pos[oid] = pos

    def evaluate(
        self,
        queries: Mapping[QueryId, MovingQuery],
        positions: Mapping[ObjectId, Point],
        objects: Mapping[ObjectId, MovingObject],
    ) -> dict[QueryId, set[ObjectId]]:
        """Evaluate every query against the object index."""
        results: dict[QueryId, set[ObjectId]] = {}
        for qid, query in queries.items():
            if query.oid is None:
                region = query.region  # static query
            else:
                focal_pos = positions.get(query.oid)
                if focal_pos is None:
                    results[qid] = set()
                    continue
                region = query.region_at(focal_pos)
            members: set[ObjectId] = set()
            for oid in self._tree.search(region.bounding_rect()):
                if oid == query.oid:
                    continue
                if region.contains(self._indexed_pos[oid]) and query.filter.matches(
                    objects[oid].props
                ):
                    members.add(oid)
            results[qid] = members
        return results

    def __len__(self) -> int:
        return len(self._tree)


def _point_rect(pos: Point) -> Rect:
    return Rect(pos.x, pos.y, 0.0, 0.0)
