"""Centralized baseline 2: indexing queries (paper Section 5.2).

A spatial index (R*-tree) is built over the queries' spatial regions
(bounding rectangles of the circles centered at the focal objects' current
positions).  When a focal object's position changes, the query index is
updated.  When an object position arrives, it is *probed* through the query
index to find the queries it now contributes to, enabling differential
result maintenance.  The dominant cost is the query-index update on focal
movement, which grows with the number of queries.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.query import MovingQuery, QueryId
from repro.geometry import Point, Rect
from repro.mobility.model import MovingObject, ObjectId
from repro.spatial import RStarTree


class QueryIndexEngine:
    """R*-tree over query regions with differential result maintenance."""

    name = "query-index"

    def __init__(self) -> None:
        self._tree = RStarTree()
        self._query_rects: dict[QueryId, Rect] = {}
        self._queries: dict[QueryId, MovingQuery] = {}
        self._focal_pos: dict[ObjectId, Point] = {}
        self._queries_of_focal: dict[ObjectId, set[QueryId]] = {}
        # Differential state: which queries currently include each object.
        self._memberships: dict[ObjectId, set[QueryId]] = {}
        self._results: dict[QueryId, set[ObjectId]] = {}

    # ---------------------------------------------------------- queries

    def add_query(self, query: MovingQuery, focal_pos: Point | None) -> None:
        """Register a query in the index."""
        rect = query.region_at(focal_pos).bounding_rect()
        self._tree.insert(rect, query.qid)
        self._query_rects[query.qid] = rect
        self._queries[query.qid] = query
        if query.oid is not None:
            if focal_pos is None:
                raise ValueError("a moving query needs a focal position")
            self._focal_pos[query.oid] = focal_pos
            self._queries_of_focal.setdefault(query.oid, set()).add(query.qid)
        self._results[query.qid] = set()

    def remove_query(self, qid: QueryId) -> None:
        """Uninstall a query everywhere it is known."""
        query = self._queries.pop(qid)
        self._tree.delete(self._query_rects.pop(qid), qid)
        if query.oid is not None:
            group = self._queries_of_focal[query.oid]
            group.discard(qid)
            if not group:
                del self._queries_of_focal[query.oid]
                self._focal_pos.pop(query.oid, None)
        self._results.pop(qid, None)
        for membership in self._memberships.values():
            membership.discard(qid)

    # --------------------------------------------------------- positions

    def update_focal(self, oid: ObjectId, pos: Point) -> None:
        """Move the rects of the queries bound to a focal object.

        Call this for every focal position change *before* probing object
        positions for the step, so probes see consistent query regions.
        """
        qids = self._queries_of_focal.get(oid)
        if not qids:
            return
        self._focal_pos[oid] = pos
        for qid in qids:
            new_rect = self._queries[qid].region_at(pos).bounding_rect()
            self._tree.update(self._query_rects[qid], new_rect, qid)
            self._query_rects[qid] = new_rect

    def is_focal(self, oid: ObjectId) -> bool:
        """Whether this object is the focal object of some query."""
        return oid in self._queries_of_focal

    def probe(self, oid: ObjectId, pos: Point, obj: MovingObject) -> None:
        """Run an object position through the query index, differentially
        updating the results of the queries it enters or leaves."""
        self._probe(oid, pos, obj)

    def _probe(self, oid: ObjectId, pos: Point, obj: MovingObject) -> None:
        hits: set[QueryId] = set()
        for qid in self._tree.search_point(pos):
            query = self._queries[qid]
            if query.oid == oid:
                continue
            if query.oid is None:
                region = query.region  # static query
            else:
                region = query.region_at(self._focal_pos[query.oid])
            if region.contains(pos) and query.filter.matches(obj.props):
                hits.add(qid)
        previous = self._memberships.get(oid, set())
        for qid in previous - hits:
            self._results[qid].discard(oid)
        for qid in hits - previous:
            self._results[qid].add(oid)
        self._memberships[oid] = hits

    # ------------------------------------------------------------ results

    def evaluate(
        self,
        queries: Mapping[QueryId, MovingQuery],
        positions: Mapping[ObjectId, Point],
        objects: Mapping[ObjectId, MovingObject],
    ) -> dict[QueryId, set[ObjectId]]:
        """Return the differentially maintained results.

        The signature matches :class:`ObjectIndexEngine.evaluate`, but no
        work happens here: results were maintained during the probes.
        """
        return {qid: set(self._results.get(qid, set())) for qid in queries}

    def __len__(self) -> int:
        return len(self._tree)
