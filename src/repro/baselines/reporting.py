"""Object-to-server reporting policies of the centralized baselines.

The paper's messaging-cost experiments compare MobiEyes against two
centralized reporting scenarios (Section 5.3):

- **naive**: every object reports its position to the server at every time
  step in which the position changed;
- **central optimal**: every object reports its velocity vector (full
  motion state) only when it changed significantly since the last report --
  "the minimum amount of information required for a centralized approach to
  evaluate queries unless there is an assumption about object trajectories".
  Significance uses the same dead-reckoning threshold as MobiEyes.
"""

from __future__ import annotations

from typing import Protocol

from repro.core.messages import BITS_COORD, BITS_HEADER, BITS_MOTION_STATE, BITS_OID, BITS_TIME
from repro.mobility.dead_reckoning import DeadReckoner
from repro.mobility.model import MotionState, MovingObject, ObjectId

#: bits of a bare position report (no velocity): header + oid + (x, y) + time
BITS_POSITION_REPORT = BITS_HEADER + BITS_OID + 2 * BITS_COORD + BITS_TIME
#: bits of a full motion-state report
BITS_STATE_REPORT = BITS_HEADER + BITS_OID + BITS_MOTION_STATE


class ReportingPolicy(Protocol):
    """Decides, per object and step, whether (and what) to uplink."""

    def report(self, obj: MovingObject, now_hours: float) -> tuple[MotionState, int] | None:
        """Returns ``(state, message_bits)`` to uplink, or ``None``."""
        ...


class NaiveReporting:
    """Report the position every step in which it changed."""

    def __init__(self) -> None:
        self._last_pos: dict[ObjectId, tuple[float, float]] = {}

    def report(self, obj: MovingObject, now_hours: float) -> tuple[MotionState, int] | None:
        """Return (state, message_bits) to uplink, or None to stay silent."""
        pos = (obj.pos.x, obj.pos.y)
        if self._last_pos.get(obj.oid) == pos:
            return None
        self._last_pos[obj.oid] = pos
        # A naive report carries position only; the state's velocity is
        # still included in the tuple for the server's position store, but
        # the *message* is sized as a bare position report.
        return obj.snapshot(), BITS_POSITION_REPORT


class CentralOptimalReporting:
    """Report the motion state only on significant (dead-reckoned) change."""

    def __init__(self, threshold: float = 0.0) -> None:
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = threshold
        self._reckoners: dict[ObjectId, DeadReckoner] = {}

    def report(self, obj: MovingObject, now_hours: float) -> tuple[MotionState, int] | None:
        """Return (state, message_bits) to uplink, or None to stay silent."""
        reckoner = self._reckoners.get(obj.oid)
        if reckoner is None:
            state = obj.snapshot()
            self._reckoners[obj.oid] = DeadReckoner(relayed=state, threshold=self.threshold)
            return state, BITS_STATE_REPORT
        if reckoner.needs_relay(obj.pos, now_hours):
            state = obj.snapshot()
            reckoner.relay(state)
            return state, BITS_STATE_REPORT
        return None
