"""Command-line interface for the MobiEyes reproduction.

Usage::

    python -m repro list                         # list experiments
    python -m repro run fig04                    # reproduce one figure
    python -m repro run all --scale 0.05         # everything, custom scale
    python -m repro params [--scale 0.06]        # show Table 1 (scaled)
    python -m repro simulate --objects 400 --queries 40 --steps 30
    python -m repro bench --smoke                # engine benchmark artifact
    python -m repro chaos --smoke                # fault-injection harness
    python -m repro serve --steps 60             # twin-graded service soak

``run`` prints each experiment's table (the same output the benchmark
harness produces); ``simulate`` runs a single ad-hoc MobiEyes simulation
and prints a metrics summary.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Sequence

from repro.core import PropagationMode
from repro.experiments import EXPERIMENTS, TITLES, run_experiment
from repro.experiments.runner import run_mobieyes
from repro.metrics.report import format_table
from repro.workload import bench_defaults, paper_defaults


def _cmd_list(_args: argparse.Namespace) -> int:
    rows = [(exp_id, TITLES[exp_id]) for exp_id in EXPERIMENTS]
    print(format_table(("experiment", "title"), rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    exp_ids = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [e for e in exp_ids if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for exp_id in exp_ids:
        started = time.perf_counter()
        kwargs = {}
        if args.scale is not None:
            kwargs["scale"] = args.scale
        if args.steps is not None:
            from repro.experiments.runner import DEFAULT_WARMUP

            kwargs["steps"] = args.steps
            kwargs["warmup"] = min(DEFAULT_WARMUP, args.steps // 4)
        result = run_experiment(exp_id, **kwargs)
        print(result.table())
        if args.save:
            from repro.experiments.io import save_result

            target = Path(args.save)
            if target.suffix:  # a file: only valid for a single experiment
                if len(exp_ids) > 1:
                    print("--save must be a directory when running 'all'", file=sys.stderr)
                    return 2
                written = save_result(result, target)
            else:
                target.mkdir(parents=True, exist_ok=True)
                written = save_result(result, target / f"{exp_id}.csv")
            print(f"  saved {written}")
        if args.chart:
            numeric = {}
            for header in result.headers[1:]:
                values = result.column(header)
                if all(isinstance(v, (int, float)) for v in values):
                    numeric[header] = values
            if numeric:
                from repro.viz import line_chart

                print()
                print(line_chart(numeric))
        print(f"  ({time.perf_counter() - started:.1f}s)")
        print()
    return 0


def _cmd_params(args: argparse.Namespace) -> int:
    params = paper_defaults() if args.scale is None else paper_defaults().scaled(args.scale)
    rows = [
        ("ts (s)", params.time_step_seconds),
        ("alpha (mi)", params.alpha),
        ("no", params.num_objects),
        ("nmq", params.num_queries),
        ("nmo", params.velocity_changes_per_step),
        ("area (mi^2)", params.area_sq_miles),
        ("uod side (mi)", round(params.side_miles, 2)),
        ("alen (mi)", params.base_station_side),
        ("qradius (mi)", str(params.radius_means)),
        ("qselect", params.query_selectivity),
        ("mospeed (mph)", str(params.max_speeds)),
    ]
    print(format_table(("parameter", "value"), rows, title="Table 1 simulation parameters"))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    scale = args.objects / paper_defaults().num_objects
    params = paper_defaults().scaled(scale)
    if args.queries is not None:
        from repro.experiments.runner import with_queries

        params = with_queries(params, args.queries)
    propagation = PropagationMode.LAZY if args.lazy else PropagationMode.EAGER
    started = time.perf_counter()
    system = run_mobieyes(
        params,
        steps=args.steps,
        warmup=min(args.steps // 4, 5),
        propagation=propagation,
        track_accuracy=args.accuracy,
    )
    elapsed = time.perf_counter() - started
    metrics = system.metrics
    rows = [
        ("objects", params.num_objects),
        ("queries", params.num_queries),
        ("steps", args.steps),
        ("propagation", propagation.value),
        ("messages/s", metrics.messages_per_second()),
        ("uplink/s", metrics.uplink_messages_per_second()),
        ("downlink/s", metrics.downlink_messages_per_second()),
        ("mean LQT size", metrics.mean_lqt_size()),
        ("server s/step", metrics.mean_server_seconds()),
        ("power/object (W)", metrics.mean_power_watts_per_object()),
        ("result error", metrics.mean_result_error() if args.accuracy else "-"),
        ("wall time (s)", round(elapsed, 2)),
    ]
    print(format_table(("metric", "value"), rows, title="MobiEyes simulation"))
    if args.render:
        from repro.viz import render_world

        print()
        print(render_world(system))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.fastpath.bench import BenchRegression, run_bench

    try:
        run_bench(
            tag=args.tag,
            smoke=args.smoke,
            out_dir=args.output,
            shards=args.shards,
            latency=args.latency,
            jitter=args.latency_jitter,
            compare=args.compare,
            workers=args.workers,
            executor=args.executor,
            scale=args.scale,
            checkpoint_every=args.checkpoint_every,
            rebalance_every=args.rebalance_every,
            rebalance_metric=args.rebalance_metric,
        )
    except BenchRegression as regression:
        print(str(regression), file=sys.stderr)
        return 1
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.faults.chaos import run_chaos

    if args.engine == "both":
        engines = ["reference", "vectorized"]
    else:
        engines = [args.engine]
    if "vectorized" in engines:
        try:
            import numpy  # noqa: F401
        except ImportError:
            if args.engine == "both":
                print("numpy unavailable: skipping the vectorized engine", file=sys.stderr)
                engines.remove("vectorized")
            else:
                print("numpy is required for --engine vectorized", file=sys.stderr)
                return 2
    steps = 30 if args.smoke and args.steps is None else (args.steps or 40)
    scale = 0.015 if args.smoke and args.scale is None else (args.scale or 0.02)

    reports = {}
    for engine in engines:
        reports[engine] = run_chaos(
            engine=engine,
            steps=steps,
            scale=scale,
            seed=args.seed,
            uplink_loss=args.uplink_loss,
            downlink_loss=args.downlink_loss,
            burst=args.burst,
            shards=args.shards,
            uplink_latency=args.latency,
            downlink_latency=args.latency,
            latency_jitter=args.latency_jitter,
            workers=args.workers,
            executor=args.executor,
            crash=args.crash,
            checkpoint_every=args.checkpoint_every,
            rebalance=args.rebalance,
        )

    failed = False
    if len(reports) == 2:
        ref, fast = reports["reference"], reports["vectorized"]
        mismatched = [
            key
            for key in ("result_hash", "drops", "message_counts", "per_step")
            if ref[key] != fast[key]
        ]
        if mismatched:
            print(f"ENGINE MISMATCH on: {', '.join(mismatched)}", file=sys.stderr)
            failed = True
    for engine, report in reports.items():
        if not report["converged"]:
            basis = report.get("recovery_basis", "oracle")
            print(
                f"NON-CONVERGENCE: {engine} engine never recovered "
                f"(basis: {basis})",
                file=sys.stderr,
            )
            failed = True

    artifact = reports[engines[0]] if len(reports) == 1 else {"engines": reports}
    text = json.dumps(artifact, sort_keys=True, indent=2)
    print(text)
    tag = args.tag or ("smoke" if args.smoke else "local")
    out_dir = Path(args.output) if args.output else Path(".")
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"CHAOS_{tag}.json"
    path.write_text(text + "\n")
    print(f"wrote {path}", file=sys.stderr)
    return 1 if failed else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.soak import run_soak

    if args.engine == "vectorized":
        try:
            import numpy  # noqa: F401
        except ImportError:
            print("numpy is required for --engine vectorized", file=sys.stderr)
            return 2
    if args.forever and args.steps is not None:
        print("--forever and --steps are mutually exclusive", file=sys.stderr)
        return 2
    steps = None if args.forever else (args.steps if args.steps is not None else 60)
    tag = args.tag or ("forever" if args.forever else "local")
    report = run_soak(
        steps=steps,
        engine=args.engine,
        shards=args.shards,
        scenario=args.scenario,
        scale=args.scale,
        seed=args.seed,
        elastic=args.elastic,
        max_shards=args.max_shards,
        rebalance_every=args.rebalance_every,
        ingest_rate=args.ingest_rate,
        ingest_budget=args.ingest_budget,
        queue_limit=args.queue_limit,
        query_churn_every=args.query_churn,
        latency=args.latency,
        jitter=args.latency_jitter,
        twin=not args.no_twin,
        report_every=args.report_every,
        tag=tag,
        out_dir=args.output,
    )
    failed = False
    twin_block = report.get("twin")
    if twin_block is not None and not twin_block["results_match"]:
        print(
            "ELASTIC DIVERGENCE: results differ from the static-fleet twin "
            f"(first at step {twin_block['first_divergence_step']})",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import write_report
    from repro.experiments.runner import DEFAULT_STEPS

    kwargs = {"scale": args.scale, "steps": args.steps or DEFAULT_STEPS}
    if args.output == "-":
        write_report(sys.stdout, **kwargs)
        return 0
    with open(args.output, "w") as handle:
        write_report(handle, **kwargs)
    print(f"wrote {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse command-line parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MobiEyes (EDBT 2004) reproduction: experiments and simulations",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments").set_defaults(func=_cmd_list)

    run = sub.add_parser("run", help="run an experiment (or 'all')")
    run.add_argument("experiment", help="experiment id, e.g. fig04, or 'all'")
    run.add_argument("--scale", type=float, default=None, help="workload scale (1.0 = paper)")
    run.add_argument("--steps", type=int, default=None, help="simulated steps per run")
    run.add_argument("--chart", action="store_true", help="draw an ASCII chart of the table")
    run.add_argument(
        "--save",
        default=None,
        help="save the table: a .csv/.json file, or a directory (one csv per experiment)",
    )
    run.set_defaults(func=_cmd_run)

    params = sub.add_parser("params", help="print the Table 1 parameters")
    params.add_argument("--scale", type=float, default=None)
    params.set_defaults(func=_cmd_params)

    simulate = sub.add_parser("simulate", help="run one ad-hoc MobiEyes simulation")
    simulate.add_argument("--objects", type=int, default=bench_defaults().num_objects)
    simulate.add_argument("--queries", type=int, default=None)
    simulate.add_argument("--steps", type=int, default=30)
    simulate.add_argument("--lazy", action="store_true", help="use lazy query propagation")
    simulate.add_argument(
        "--accuracy", action="store_true", help="track result error against the oracle"
    )
    simulate.add_argument(
        "--render", action="store_true", help="draw an ASCII map of the final world state"
    )
    simulate.set_defaults(func=_cmd_simulate)

    bench = sub.add_parser(
        "bench", help="benchmark reference vs. vectorized engine, write BENCH_<tag>.json"
    )
    bench.add_argument(
        "--smoke", action="store_true", help="small REPRO_SCALE-aware matrix for CI"
    )
    bench.add_argument(
        "--tag", default=None, help="artifact tag (default: 'local', or 'smoke' with --smoke)"
    )
    bench.add_argument(
        "--output", default=None, help="directory for the artifact (default: current directory)"
    )
    bench.add_argument(
        "--shards",
        type=int,
        default=1,
        help="server shards behind the coordinator (default 1 = monolithic server); "
        "the report gains per-shard load-balance figures when > 1",
    )
    bench.add_argument(
        "--workers",
        type=int,
        default=0,
        help="shard worker-pool size (default 0 = serial coordinator); with "
        "--shards > 1 each scenario also runs a serial twin and reports a "
        "parallel_speedup column plus a bit-identity check against it",
    )
    bench.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help="worker-pool flavor for --workers (default thread)",
    )
    bench.add_argument(
        "--scale",
        choices=("default", "xl", "skewed"),
        default="default",
        help="scenario preset: 'default' = the usual matrix, 'xl' = one "
        "100k-object / 5k-query vectorized-only scenario, 'skewed' = one "
        "flash-crowd scenario (half the objects in the left 20%% x-strip)",
    )
    bench.add_argument(
        "--latency",
        type=int,
        default=0,
        help="per-link delivery delay in steps applied to both uplink and "
        "downlink (default 0 = inline delivery)",
    )
    bench.add_argument(
        "--latency-jitter",
        type=int,
        default=0,
        help="seeded random extra delay in [0, N] steps on top of --latency",
    )
    bench.add_argument(
        "--compare",
        default=None,
        help="previous BENCH_*.json to regression-gate against: exit 1 if any "
        "matched scenario/engine loses more than 20%% of its steps/sec, any "
        "phase regresses more than 25%%, or result hashes / message counts "
        "drift from the baseline",
    )
    bench.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        help="snapshot the full system every N steps during the measured "
        "window, then restore the last checkpoint and resume it to the end: "
        "the report gains the snapshot cost and a bit-identity verdict "
        "(exit 1 if the resumed run diverges)",
    )
    bench.add_argument(
        "--rebalance-every",
        type=int,
        default=0,
        help="evaluate the load-aware repartitioning policy every N steps "
        "(requires --shards > 1): each engine also runs a static-stripes "
        "twin and the report gains a rebalance block with the static vs "
        "rebalanced imbalance_seconds and a result-identity verdict",
    )
    bench.add_argument(
        "--rebalance-metric",
        choices=("seconds", "ops"),
        default="seconds",
        help="load signal driving --rebalance-every: wall-clock 'seconds' "
        "(the real thing) or deterministic 'ops' (reproducible triggers "
        "for CI)",
    )
    bench.set_defaults(func=_cmd_bench)

    chaos = sub.add_parser(
        "chaos",
        help="run the fault-injection harness, write CHAOS_<tag>.json, "
        "exit nonzero on non-convergence",
    )
    chaos.add_argument(
        "--smoke", action="store_true", help="small deterministic scenario for CI"
    )
    chaos.add_argument(
        "--engine",
        choices=("reference", "vectorized", "both"),
        default="both",
        help="engine(s) to run; 'both' also cross-checks their reports",
    )
    chaos.add_argument("--steps", type=int, default=None, help="simulated steps (default 40)")
    chaos.add_argument(
        "--scale", type=float, default=None, help="workload scale (default 0.02)"
    )
    chaos.add_argument("--seed", type=int, default=7, help="scenario seed")
    chaos.add_argument(
        "--uplink-loss", type=float, default=0.0, help="mean uplink channel loss rate"
    )
    chaos.add_argument(
        "--downlink-loss", type=float, default=0.0, help="mean downlink channel loss rate"
    )
    chaos.add_argument(
        "--burst",
        action="store_true",
        help="use Gilbert-Elliott burst channels instead of Bernoulli",
    )
    chaos.add_argument(
        "--shards",
        type=int,
        default=1,
        help="server shards behind the coordinator (default 1 = monolithic server)",
    )
    chaos.add_argument(
        "--workers",
        type=int,
        default=0,
        help="shard worker-pool size (default 0 = serial coordinator); the "
        "report is bit-identical to the serial one at any worker count",
    )
    chaos.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help="worker-pool flavor for --workers (default thread)",
    )
    chaos.add_argument(
        "--latency",
        type=int,
        default=0,
        help="per-link delivery delay in steps applied to both uplink and "
        "downlink; recovery is then graded against a fault-free twin run",
    )
    chaos.add_argument(
        "--latency-jitter",
        type=int,
        default=0,
        help="seeded random extra delay in [0, N] steps on top of --latency",
    )
    chaos.add_argument(
        "--crash",
        action="store_true",
        help="add a mid-run shard crash window (requires --shards >= 2): the "
        "shard's soft state is erased, rebuilt from the last periodic "
        "checkpoint at the window end, and recovery is graded against the "
        "fault-free lockstep twin",
    )
    chaos.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        help="checkpoint cadence in steps for --crash recovery "
        "(default: steps // 8, at least 2)",
    )
    chaos.add_argument(
        "--rebalance",
        action="store_true",
        help="apply the canonical repartition triggers inside the fault "
        "windows (requires --shards >= 2): boundary migration races the "
        "outage, disconnections, and any --crash window, graded against "
        "the static-stripes fault-free twin",
    )
    chaos.add_argument("--tag", default=None, help="artifact tag (default: 'local'/'smoke')")
    chaos.add_argument(
        "--output", default=None, help="directory for the artifact (default: current directory)"
    )
    chaos.set_defaults(func=_cmd_chaos)

    serve = sub.add_parser(
        "serve",
        help="run the long-running service soak (queue-driven ingest, "
        "elastic scale-out, twin-graded), write SOAK_<tag>.json",
    )
    serve.add_argument(
        "--steps", type=int, default=None, help="bounded soak length (default 60)"
    )
    serve.add_argument(
        "--forever",
        action="store_true",
        help="run until interrupted; Ctrl-C finalizes and writes the report",
    )
    serve.add_argument(
        "--engine", choices=("reference", "vectorized"), default="reference"
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=2,
        help="initial server shards (elastic modes need >= 2)",
    )
    serve.add_argument(
        "--scenario",
        choices=("skewed", "dense", "paper"),
        default="skewed",
        help="workload preset (default skewed: the flash-crowd scenario "
        "elastic scale-out exists for)",
    )
    serve.add_argument(
        "--scale", type=float, default=0.02, help="workload scale (1.0 = paper)"
    )
    serve.add_argument("--seed", type=int, default=11, help="workload + script seed")
    serve.add_argument(
        "--elastic",
        choices=("policy", "schedule", "both", "off"),
        default="policy",
        help="scale-out mode: 'policy' arms the elastic thermostat "
        "(deterministic ops metric), 'schedule' applies one split and one "
        "merge at fixed steps, 'both' combines them, 'off' keeps the "
        "fleet fixed (no twin)",
    )
    serve.add_argument(
        "--max-shards",
        type=int,
        default=4,
        help="fleet ceiling for --elastic policy (default 4)",
    )
    serve.add_argument(
        "--rebalance-every",
        type=int,
        default=5,
        help="policy evaluation cadence in steps for --elastic policy",
    )
    serve.add_argument(
        "--ingest-rate",
        type=int,
        default=6,
        help="scripted external position reports submitted per step",
    )
    serve.add_argument(
        "--ingest-budget",
        type=int,
        default=4,
        help="admission budget per tick (0 = drain the whole queue); the "
        "queue bound derives from it, so rate > budget exercises "
        "backpressure rejects",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=0,
        help="explicit ingest queue bound (0 = derive from the budget and "
        "the latency pipeline depth)",
    )
    serve.add_argument(
        "--query-churn",
        type=int,
        default=10,
        help="install a runtime query every N steps and remove it half a "
        "period later (0 = no churn)",
    )
    serve.add_argument(
        "--latency",
        type=int,
        default=0,
        help="per-link delivery delay in steps (uplink and downlink)",
    )
    serve.add_argument(
        "--latency-jitter",
        type=int,
        default=0,
        help="seeded random extra delay in [0, N] steps on top of --latency",
    )
    serve.add_argument(
        "--no-twin",
        action="store_true",
        help="skip the static-fleet lockstep twin (faster, ungraded)",
    )
    serve.add_argument(
        "--report-every",
        type=int,
        default=0,
        help="rewrite SOAK_<tag>.json every N steps while running "
        "(progress for --forever soaks)",
    )
    serve.add_argument("--tag", default=None, help="artifact tag (default 'local')")
    serve.add_argument(
        "--output", default=None, help="directory for the artifact (default: cwd)"
    )
    serve.set_defaults(func=_cmd_serve)

    report = sub.add_parser(
        "report", help="run every experiment and write the EXPERIMENTS.md report"
    )
    report.add_argument("--output", default="EXPERIMENTS.md", help="output path ('-' = stdout)")
    report.add_argument("--scale", type=float, default=None)
    report.add_argument("--steps", type=int, default=None)
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
