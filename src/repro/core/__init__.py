"""The MobiEyes distributed moving-query protocol (the paper's contribution)."""

from repro.core.broadcast import BroadcastPlanner
from repro.core.client import ClientStats, MobiEyesClient
from repro.core.config import MobiEyesConfig
from repro.core.coordinator import Coordinator
from repro.core.focal import FocalTracker
from repro.core.load import LoadAccount
from repro.core.partition import GridPartitioner, PartitionMap
from repro.core.rebalance import ElasticPolicy, RebalancePolicy
from repro.core.propagation import PropagationMode
from repro.core.query import (
    AndFilter,
    MovingQuery,
    NotFilter,
    OrFilter,
    PropertyEqualsFilter,
    QueryFilter,
    QueryId,
    QuerySpec,
    TrueFilter,
)
from repro.core.registry import QueryRegistry
from repro.core.safe_period import safe_period_hours
from repro.core.server import MobiEyesServer
from repro.core.shard import ServerShard
from repro.core.service import MobiEyesService
from repro.core.system import MobiEyesSystem
from repro.core.tables import (
    FocalObjectTable,
    LocalQueryTable,
    LqtEntry,
    ReverseQueryIndex,
    ServerQueryTable,
    SqtEntry,
)
from repro.core.transport import SimulatedTransport

__all__ = [
    "AndFilter",
    "BroadcastPlanner",
    "ClientStats",
    "Coordinator",
    "FocalTracker",
    "GridPartitioner",
    "PartitionMap",
    "ElasticPolicy",
    "RebalancePolicy",
    "LoadAccount",
    "NotFilter",
    "OrFilter",
    "PropertyEqualsFilter",
    "FocalObjectTable",
    "LocalQueryTable",
    "LqtEntry",
    "MobiEyesClient",
    "MobiEyesConfig",
    "MobiEyesServer",
    "MobiEyesService",
    "MobiEyesSystem",
    "QueryRegistry",
    "ServerShard",
    "MovingQuery",
    "PropagationMode",
    "QueryFilter",
    "QueryId",
    "QuerySpec",
    "ReverseQueryIndex",
    "ServerQueryTable",
    "SimulatedTransport",
    "SqtEntry",
    "TrueFilter",
    "safe_period_hours",
]
