"""The MobiEyes distributed moving-query protocol (the paper's contribution)."""

from repro.core.client import ClientStats, MobiEyesClient
from repro.core.config import MobiEyesConfig
from repro.core.propagation import PropagationMode
from repro.core.query import (
    AndFilter,
    MovingQuery,
    NotFilter,
    OrFilter,
    PropertyEqualsFilter,
    QueryFilter,
    QueryId,
    QuerySpec,
    TrueFilter,
)
from repro.core.safe_period import safe_period_hours
from repro.core.server import MobiEyesServer
from repro.core.system import MobiEyesSystem
from repro.core.tables import (
    FocalObjectTable,
    LocalQueryTable,
    LqtEntry,
    ReverseQueryIndex,
    ServerQueryTable,
    SqtEntry,
)
from repro.core.transport import SimulatedTransport

__all__ = [
    "AndFilter",
    "ClientStats",
    "NotFilter",
    "OrFilter",
    "PropertyEqualsFilter",
    "FocalObjectTable",
    "LocalQueryTable",
    "LqtEntry",
    "MobiEyesClient",
    "MobiEyesConfig",
    "MobiEyesServer",
    "MobiEyesSystem",
    "MovingQuery",
    "PropagationMode",
    "QueryFilter",
    "QueryId",
    "QuerySpec",
    "ReverseQueryIndex",
    "ServerQueryTable",
    "SimulatedTransport",
    "SqtEntry",
    "TrueFilter",
    "safe_period_hours",
]
