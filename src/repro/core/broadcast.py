"""Broadcast planner: query grouping and monitoring-region broadcasts.

One of the three layered server components (registry / focal tracker /
broadcast planner).  The planner decides *how* server-to-region messages
go out: which queries ride together in one broadcast (the paper's
Section 4.1 query grouping), in what order groups are emitted, and how a
query descriptor is assembled from its SQT entry and its focal object's
state.

Group emission order is explicitly sorted by the group's smallest query
id.  For the monolithic server this matches the old first-occurrence
dict order (queries arrive qid-ascending), but behind the coordinator a
shard's table order depends on handoff history, so the explicit sort is
what keeps multi-shard broadcast schedules deterministic.
"""

from __future__ import annotations

from repro.core.messages import QueryDescriptor
from repro.core.tables import FotEntry, SqtEntry
from repro.core.transport import SimulatedTransport
from repro.grid import CellRange


class BroadcastPlanner:
    """Grouping and emission of monitoring-region broadcasts."""

    def __init__(self, transport: SimulatedTransport, grouping: bool) -> None:
        self.transport = transport
        self.grouping = grouping

    def groups(self, queries: list[SqtEntry]) -> list[tuple[CellRange, list[SqtEntry]]]:
        """Group queries for broadcasting.

        With grouping enabled (Section 4.1), queries sharing the focal
        object *and* the monitoring region ride in one broadcast; groups
        are keyed by monitoring region.  With grouping disabled every
        query is broadcast separately.  Groups come out sorted by their
        smallest query id.
        """
        if not self.grouping:
            return [(e.mon_region, [e]) for e in sorted(queries, key=lambda e: e.qid)]
        grouped: dict[CellRange, list[SqtEntry]] = {}
        for entry in sorted(queries, key=lambda e: e.qid):
            grouped.setdefault(entry.mon_region, []).append(entry)
        return sorted(grouped.items(), key=lambda item: item[1][0].qid)

    def send(self, region: CellRange | set, message: object) -> int:
        """Broadcast a message to every base station covering a region;
        returns the number of station broadcasts used."""
        return self.transport.broadcast(region, message)

    @staticmethod
    def descriptor(entry: SqtEntry, focal: FotEntry | None) -> QueryDescriptor:
        """Assemble the over-the-air descriptor of one query.  ``focal`` is
        the focal object's FOT entry (None for static queries)."""
        if entry.is_static:
            return QueryDescriptor(
                qid=entry.qid,
                oid=None,
                region=entry.region,
                filter=entry.filter,
                focal_state=None,
                focal_max_speed=0.0,
                mon_region=entry.mon_region,
            )
        assert focal is not None
        return QueryDescriptor(
            qid=entry.qid,
            oid=entry.oid,
            region=entry.region,
            filter=entry.filter,
            focal_state=focal.state,
            focal_max_speed=focal.max_speed,
            mon_region=entry.mon_region,
        )
