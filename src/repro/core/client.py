"""The moving-object side of MobiEyes (paper Sections 3.5, 3.6, 4).

Each moving object runs a :class:`MobiEyesClient` that:

- detects its own grid-cell crossings and reports them (always under eager
  propagation; only when it is a focal object under lazy propagation);
- when it is a focal object, runs dead reckoning each step and relays its
  motion state to the server when the deviation exceeds ``delta``;
- keeps a local query table (LQT) of the queries whose monitoring region
  covers its cell, installed from server broadcasts;
- periodically evaluates every LQT query by predicting the focal object's
  position, and differentially reports target-set changes (with the query
  bitmap when grouping is enabled);
- applies the safe-period optimization: after finding itself outside a
  query region it computes the worst-case earliest time it could possibly
  enter and skips evaluations until then.

Under fault injection (a :class:`~repro.faults.injector.FaultInjector`
on the transport) the client additionally runs the recovery protocol:
it heartbeats after ``heartbeat_steps`` steps without an acknowledged
uplink, marks itself *suspect* when a reliable uplink exhausts its
retries, watches the per-object downlink sequence stream for gaps, and
resyncs -- a full LQT rebuild from a server snapshot -- once it regains
contact after either signal.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from repro.core.config import MobiEyesConfig
from repro.geometry import Circle, Vector
from repro.core.messages import (
    CellChangeReport,
    FocalRoleNotification,
    Heartbeat,
    MotionStateRequest,
    MotionStateResponse,
    QueryDescriptor,
    QueryInstallBroadcast,
    QueryInstallList,
    QueryRemoveBroadcast,
    QueryUpdateBroadcast,
    ResultChangeReport,
    RebalanceDirective,
    ResyncDirective,
    ResyncRequest,
    ResyncResponse,
    VelocityChangeBroadcast,
    VelocityChangeReport,
)
from repro.core.query import QueryId
from repro.core.safe_period import safe_period_hours
from repro.core.tables import LocalQueryTable, LqtEntry
from repro.core.transport import SimulatedTransport
from repro.grid import Grid
from repro.mobility.model import MovingObject, ObjectId
from repro.sim.clock import SimulationClock


@dataclass
class ClientStats:
    """Per-object processing counters, sampled by the metric collectors."""

    evaluated_queries: int = 0  # containment checks actually performed
    skipped_by_safe_period: int = 0
    skipped_by_grouping: int = 0
    processing_seconds: float = 0.0
    uplinks_sent: int = 0

    def drain(self) -> tuple[int, int, int, float]:
        """Take ``(evaluated, skipped_by_safe_period, skipped_by_grouping,
        processing_seconds)`` and zero *every* counter.

        This is the one place the counters are zeroed, shared by the
        per-step measurement loop (hot path: one call, one tuple, no
        snapshot object) and :meth:`reset` -- so adding a field cannot
        silently drift between the two.
        """
        out = (
            self.evaluated_queries,
            self.skipped_by_safe_period,
            self.skipped_by_grouping,
            self.processing_seconds,
        )
        self.evaluated_queries = 0
        self.skipped_by_safe_period = 0
        self.skipped_by_grouping = 0
        self.processing_seconds = 0.0
        self.uplinks_sent = 0
        return out

    def reset(self) -> "ClientStats":
        """Reset the accumulated state; returns the pre-reset snapshot."""
        uplinks = self.uplinks_sent
        evaluated, skipped_sp, skipped_group, processing = self.drain()
        return ClientStats(
            evaluated_queries=evaluated,
            skipped_by_safe_period=skipped_sp,
            skipped_by_grouping=skipped_group,
            processing_seconds=processing,
            uplinks_sent=uplinks,
        )


class MobiEyesClient:
    """Object-side protocol state machine for one moving object."""

    def __init__(
        self,
        obj: MovingObject,
        grid: Grid,
        transport: SimulatedTransport,
        config: MobiEyesConfig,
    ) -> None:
        self.obj = obj
        self.grid = grid
        self.transport = transport
        self.config = config
        self.lqt = LocalQueryTable()
        self.has_mq = False
        self.last_cell = grid.cell_index(obj.pos)
        # The motion state other parties believe this object to have; only
        # meaningful while the object is focal.  The vectorized runtime may
        # register a watcher to mirror it into its dead-reckoning columns.
        self._relayed_watcher = None
        self._relayed_state = obj.snapshot()
        self.stats = ClientStats()
        # Fault-handling state; the system wires `focal_registry` (the
        # shared client-side view of who is focal) and `fault_policy`
        # (non-None only when a FaultInjector is attached).
        self.focal_registry: set[ObjectId] | None = None
        self.fault_policy = None
        self._steps_since_ack = 0
        self._last_downlink_seq: int | None = None
        self._needs_resync = False
        self._suspect = False
        # The newest partition epoch this client has heard of (via
        # RebalanceDirective); uplinks are stamped with it so the server
        # transport can count stale-epoch reroutes after a repartition.
        self.partition_epoch = 0
        # Report generation: bumped (by the server, via ResyncResponse)
        # every time a resync purges this object from the query results, so
        # reports that were in flight across the purge can be told apart.
        self._report_epoch = 0
        transport.attach_client(obj.oid, self)

    @property
    def oid(self) -> ObjectId:
        """This client's object identifier."""
        return self.obj.oid

    # ------------------------------------------------------ report phase

    def report_phase(self, clock: SimulationClock) -> None:
        """Detect and report cell changes and significant velocity changes."""
        now = clock.now_hours
        current_cell = self.grid.cell_index(self.obj.pos)
        if current_cell != self.last_cell:
            self._handle_own_cell_change(current_cell, now)
        if self.has_mq:
            deviation = self.obj.pos.distance_to(self._relayed_state.predict(now))
            if deviation > self.config.dead_reckoning_threshold:
                self._relay_motion_state(now)

    def _handle_own_cell_change(self, new_cell: tuple[int, int], now: float) -> None:
        prev_cell = self.last_cell
        self.last_cell = new_cell
        # Drop queries whose monitoring region no longer covers this cell;
        # leaving a monitoring region while being a target is reported so
        # the server-side result stays clean.  The LQT hull (intersection
        # of every region's bounds) makes the common case O(1): while the
        # new cell is inside the hull, no entry can have been left.
        if not self.lqt.hull_contains(new_cell):
            leave_changes: dict[QueryId, bool] = {}
            for entry in self.lqt.entries():
                if not entry.mon_region.contains(new_cell):
                    self.lqt.remove(entry.qid)
                    if entry.is_target:
                        leave_changes[entry.qid] = False
            self.lqt.recompute_hull()
            if leave_changes:
                self._send_result_changes(leave_changes)
        # Under lazy propagation only focal objects report cell changes.
        if self.config.propagation.is_lazy and not self.has_mq:
            return
        state = self.obj.snapshot() if self.has_mq else None
        if state is not None:
            self._set_relayed(state)
        buf = self.transport.report_buffer
        if buf is not None and buf.depth:
            self.stats.uplinks_sent += 1
            buf.add_cell(self.oid, prev_cell, new_cell, state)
            return
        self._uplink(
            CellChangeReport(oid=self.oid, prev_cell=prev_cell, new_cell=new_cell, state=state)
        )

    def _relay_motion_state(self, now: float) -> None:
        state = self.obj.snapshot()
        self._set_relayed(state)
        buf = self.transport.report_buffer
        if buf is not None and buf.depth:
            self.stats.uplinks_sent += 1
            buf.add_velocity(self.oid, state)
            return
        self._uplink(VelocityChangeReport(oid=self.oid, state=state))

    def _set_relayed(self, state) -> None:
        """Update the relayed motion state, mirroring it to any watcher."""
        self._relayed_state = state
        watcher = self._relayed_watcher
        if watcher is not None:
            watcher(self.oid, state)

    # -------------------------------------------------- evaluation phase

    def evaluation_phase(self, clock: SimulationClock) -> None:
        """Process the LQT (paper Section 3.6, with Section 4 optimizations)."""
        started = time.perf_counter()
        now = clock.now_hours
        changes_by_focal: dict[ObjectId, dict[QueryId, bool]] = {}
        if self.config.grouping:
            for focal_oid, group in self.lqt.by_focal().items():
                changed = self._process_group(group, now)
                if changed:
                    changes_by_focal[focal_oid] = changed
        else:
            for entry in self.lqt.entries():
                changed = self._process_group([entry], now)
                if changed:
                    changes_by_focal.setdefault(entry.oid, {}).update(changed)
        self.stats.processing_seconds += time.perf_counter() - started

        if self.config.grouping:
            for changed in changes_by_focal.values():
                self._send_result_changes(changed)
        else:
            for changed in changes_by_focal.values():
                for qid, flag in changed.items():
                    self._send_result_changes({qid: flag})

    def _process_group(self, group: list[LqtEntry], now: float) -> dict[QueryId, bool]:
        """Evaluate one focal group (reach-descending); returns changes.

        With grouping, the focal position is predicted once per group, and
        once the object's distance to the focal object exceeds a query's
        *reach* (the region's maximal extent from the binding point; the
        radius for circles) every remaining smaller query in the group is
        implied outside without a containment check -- the paper's
        "consider queries with smaller radiuses only if inside the larger".
        """
        if group and group[0].is_static:
            return self._process_static_entries(group, now)
        changes: dict[QueryId, bool] = {}
        predicted = None
        dist_sq = 0.0
        outside_reach = False
        eval_period = self.config.eval_period_hours
        for entry in group:
            if self.config.safe_period and entry.ptm > now:
                self.stats.skipped_by_safe_period += 1
                continue
            if predicted is None:
                predicted = entry.focal_state.predict(now)
                dist_sq = self.obj.pos.distance_squared_to(predicted)
            reach = entry.reach
            if outside_reach:
                # Implied by a larger region's miss; no containment check.
                inside = False
                self.stats.skipped_by_grouping += 1
            else:
                # Squared-space compare, identical arithmetic to the circle
                # containment check, so boundary cases agree with the oracle.
                beyond_reach = dist_sq > reach * reach
                inside = (not beyond_reach) and self._contains(entry, predicted)
                self.stats.evaluated_queries += 1
                if self.config.grouping and beyond_reach:
                    # Entries are sorted by reach descending: all smaller
                    # regions are outside too.
                    outside_reach = True
            if not inside and self.config.safe_period:
                sp = safe_period_hours(
                    math.sqrt(dist_sq), reach, self.obj.max_speed, entry.focal_max_speed
                )
                if sp > eval_period:
                    entry.ptm = now + sp
            if inside != entry.is_target:
                entry.is_target = inside
                changes[entry.qid] = inside
        return changes

    def _process_static_entries(self, group: list[LqtEntry], now: float) -> dict[QueryId, bool]:
        """Evaluate static (fixed-region) queries.

        No focal prediction and no reach short-circuit (the regions share
        no focal object); the safe period uses the distance to the region's
        bounding rectangle -- a lower bound on the distance to the region --
        and only this object's own maximum speed (the region cannot move).
        """
        changes: dict[QueryId, bool] = {}
        eval_period = self.config.eval_period_hours
        for entry in group:
            if self.config.safe_period and entry.ptm > now:
                self.stats.skipped_by_safe_period += 1
                continue
            inside = entry.region.contains(self.obj.pos)
            self.stats.evaluated_queries += 1
            if not inside and self.config.safe_period:
                gap = entry.region.bounding_rect().distance_to_point(self.obj.pos)
                if self.obj.max_speed > 0:
                    sp = gap / self.obj.max_speed
                elif gap > 0:
                    sp = math.inf
                else:
                    sp = 0.0
                if sp > eval_period:
                    entry.ptm = now + sp
            if inside != entry.is_target:
                entry.is_target = inside
                changes[entry.qid] = inside
        return changes

    def _contains(self, entry: LqtEntry, predicted_focal) -> bool:
        """Exact containment of this object in the query region centered at
        the predicted focal position (cheap radius test for circles)."""
        region = entry.region
        if isinstance(region, Circle):
            dx = self.obj.pos.x - predicted_focal.x
            dy = self.obj.pos.y - predicted_focal.y
            return dx * dx + dy * dy <= region.r * region.r
        moved = region.translated(Vector(predicted_focal.x, predicted_focal.y))
        return moved.contains(self.obj.pos)

    def _send_result_changes(self, changes: dict[QueryId, bool]) -> None:
        buf = self.transport.report_buffer
        if buf is not None and buf.depth:
            # Open report window: append to the columnar buffer (flushed by
            # the transport when the window closes) instead of allocating a
            # dataclass.  The buffer copies the flags out immediately.
            self.stats.uplinks_sent += 1
            buf.add_result(self.oid, changes, self._report_epoch)
            return
        self._uplink(
            ResultChangeReport(
                oid=self.oid, changes=dict(changes), epoch=self._report_epoch
            )
        )

    def _uplink(self, message: object) -> None:
        self.stats.uplinks_sent += 1
        acked = self.transport.uplink(message)
        if self.fault_policy is None or not getattr(message, "reliable", False):
            return
        if acked is None:
            # Deferred reliable exchange: the outcome arrives later through
            # _note_uplink_outcome when the ack lands or the retries drain.
            return
        self._note_uplink_outcome(acked)

    def _note_uplink_outcome(self, acked: bool) -> None:
        """Digest one reliable uplink's fate (immediate or deferred).

        A reliable uplink doubles as a connectivity probe: its ack (or
        the lack of one after the retry budget) is how the object learns
        whether it can still reach the server.
        """
        if acked:
            self._steps_since_ack = 0
            if self._suspect:
                # Contact regained after a suspected partition: whatever
                # was broadcast in between is gone; schedule a resync.
                self._suspect = False
                self._needs_resync = True
        else:
            self._suspect = True

    # -------------------------------------------------------- fault phase

    def fault_phase(self, clock: SimulationClock) -> None:
        """Heartbeat / resync housekeeping (runs only under fault injection).

        Runs after the reporting phase and before evaluation, so a resync
        triggered this step already feeds the step's own evaluation.
        """
        if self.fault_policy is None:
            return
        # Carrier sensing: a device can tell locally when it has no signal
        # (disconnection or a dead serving station).  Anything it sent in
        # the blackout may be gone, so it must resync once back online.
        loss = self.transport.loss
        if loss is not None and loss.carrier_lost(self.oid):
            self._suspect = True
        if self._needs_resync:
            self._send_resync()
            return
        self._steps_since_ack += 1
        if self._steps_since_ack >= self.fault_policy.heartbeat_steps:
            self._steps_since_ack = 0
            self._uplink(Heartbeat(oid=self.oid))

    def _send_resync(self) -> None:
        """Ask the server for a full state snapshot (reliable round trip).

        The response arrives through :meth:`on_downlink` -- within the
        same step on a zero-latency link, after the modeled round trip
        otherwise; ``_needs_resync`` is cleared only by
        :meth:`_apply_resync`, so a lost (or still in-flight) response
        retries next step.
        """
        self._suspect = False
        state = self.obj.snapshot()
        self._set_relayed(state)
        self._uplink(
            ResyncRequest(
                oid=self.oid, cell=self.last_cell, state=state, max_speed=self.obj.max_speed
            )
        )

    def observe_downlink_seq(self, seq: int) -> None:
        """Track the per-object downlink sequence; a gap means missed traffic."""
        last = self._last_downlink_seq
        self._last_downlink_seq = seq
        if (
            last is not None
            and seq > last + 1
            and self.fault_policy is not None
            and self.fault_policy.resync_on_gap
        ):
            self._needs_resync = True

    def _set_has_mq(self, flag: bool) -> None:
        self.has_mq = flag
        registry = self.focal_registry
        if registry is not None:
            if flag:
                registry.add(self.oid)
            else:
                registry.discard(self.oid)

    def _apply_resync(self, message: ResyncResponse) -> None:
        """Rebuild the LQT from the server's snapshot.

        Every entry is dropped and reinstalled fresh (``is_target`` False);
        the server purged this object from all query results when it
        answered the resync, so both sides restart from a blank membership
        and the next evaluation re-reports the true one.
        """
        for qid in self.lqt.ids():
            self.lqt.remove(qid)
        for desc in message.queries:
            if desc.oid is not None and desc.oid == self.oid:
                continue
            if desc.mon_region.contains(self.last_cell) and desc.filter.matches(self.obj.props):
                self.lqt.install(LqtEntry.from_descriptor(desc))
        self._set_has_mq(message.has_mq)
        self._report_epoch = message.epoch
        self._needs_resync = False

    # ----------------------------------------------------------- downlink

    def on_downlink(self, message: object) -> None:
        """Handle a server broadcast or one-to-one message."""
        if isinstance(message, (QueryInstallBroadcast, QueryUpdateBroadcast)):
            self._on_query_broadcast(message.queries)
        elif isinstance(message, VelocityChangeBroadcast):
            self._on_velocity_broadcast(message)
        elif isinstance(message, QueryRemoveBroadcast):
            for qid in message.qids:
                self.lqt.remove(qid)
        elif isinstance(message, QueryInstallList):
            if message.oid == self.oid:
                self._on_query_broadcast(message.queries)
        elif isinstance(message, FocalRoleNotification):
            if message.oid == self.oid:
                self._set_has_mq(message.has_mq)
        elif isinstance(message, MotionStateRequest):
            if message.oid == self.oid:
                state = self.obj.snapshot()
                self._set_relayed(state)
                self._uplink(
                    MotionStateResponse(oid=self.oid, state=state, max_speed=self.obj.max_speed)
                )
        elif isinstance(message, ResyncResponse):
            if message.oid == self.oid:
                self._apply_resync(message)
        elif isinstance(message, ResyncDirective):
            # Server-side state was lost (a shard crashed and was rebuilt
            # from a checkpoint); run the ordinary resync round trip.
            self._needs_resync = True
        elif isinstance(message, RebalanceDirective):
            # The partition map moved under us: adopt the advertised epoch
            # so subsequent uplinks are stamped with the current routing
            # generation.  No state to resync -- in-flight uplinks carrying
            # the old epoch are rerouted server-side at delivery.
            if message.epoch > self.partition_epoch:
                self.partition_epoch = message.epoch
        else:
            raise TypeError(f"unexpected downlink message {type(message).__name__}")

    def _on_query_broadcast(self, descriptors: tuple[QueryDescriptor, ...]) -> None:
        """Install / refresh / drop queries per the broadcast descriptors."""
        leave_changes: dict[QueryId, bool] = {}
        for desc in descriptors:
            if desc.oid is not None and desc.oid == self.oid:
                continue  # an object is never a target of its own query
            covered = desc.mon_region.contains(self.last_cell)
            if not covered:
                removed = self.lqt.remove(desc.qid)
                if removed is not None and removed.is_target:
                    leave_changes[desc.qid] = False
                continue
            existing = self.lqt.find(desc.qid)
            if existing is not None:
                existing.focal_state = desc.focal_state
                existing.focal_max_speed = desc.focal_max_speed
                existing.mon_region = desc.mon_region
                existing.ptm = 0.0  # focal moved: the safe period is void
                self.lqt.tighten_hull(desc.mon_region)
                self.lqt.notify_state(existing)
            elif desc.filter.matches(self.obj.props):
                self.lqt.install(LqtEntry.from_descriptor(desc))
        if leave_changes:
            self._send_result_changes(leave_changes)

    def _on_velocity_broadcast(self, message: VelocityChangeBroadcast) -> None:
        for qid in message.qids:
            entry = self.lqt.find(qid)
            if entry is not None:
                entry.focal_state = message.state
                entry.ptm = 0.0  # prediction basis changed: re-evaluate
                self.lqt.notify_state(entry)
        # Lazy propagation: the expanded broadcast lets objects that changed
        # cells install the queries they missed.
        if message.descriptors:
            self._on_query_broadcast(message.descriptors)
