"""Configuration of a MobiEyes deployment."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry import Rect
from repro.core.propagation import PropagationMode
from repro.network.radio import RadioModel


@dataclass(frozen=True, slots=True)
class MobiEyesConfig:
    """All knobs of the distributed MobiEyes system.

    Attributes:
        uod: the universe of discourse rectangle.
        alpha: grid cell side length (miles); the paper's key tuning knob.
        step_seconds: simulation time step (paper: 30 s).
        base_station_side: lattice pitch of the base-station deployment
            (the paper's ``alen``; miles).
        propagation: eager or lazy query propagation.
        dead_reckoning_threshold: the paper's ``delta`` (miles) -- focal
            objects relay their motion state when the true position deviates
            from the broadcast prediction by more than this.  ``0`` relays
            on any deviation (exact predictions under linear motion).
        grouping: enable query grouping (server-side bundling of queries
            sharing a focal object and monitoring region; object-side shared
            evaluation with the query bitmap in result reports).
        safe_period: enable the safe-period optimization (Section 4.2).
        eval_period_steps: object-side query evaluation period, in steps.
        static_beacon_steps: under *lazy* propagation, static queries have
            no focal-object broadcasts to heal missed installs, so the
            server re-broadcasts their descriptors every this many steps
            (0 disables beaconing).  Ignored under eager propagation.
        radio: energy model for message-size accounting.
        engine: hot-path implementation.  ``"reference"`` is the pure-Python
            per-object protocol (no third-party imports); ``"vectorized"``
            runs movement, coverage indexing, cell-crossing detection, and
            LQT evaluation through the numpy-backed
            :mod:`repro.fastpath` engine, producing bit-identical results
            and message traffic.  Requires numpy.
        shards: number of grid-partitioned server shards.  ``1`` runs the
            monolithic server; larger values split the grid into contiguous
            column stripes, each served by a
            :class:`~repro.core.shard.ServerShard` behind a
            :class:`~repro.core.coordinator.Coordinator` that routes
            uplinks by cell and hands focal ownership across shard
            boundaries.  Counts exceeding the number of grid columns are
            clamped.
        uplink_latency_steps: delivery delay of an object -> server
            message, in whole simulation steps.  ``0`` (the default)
            delivers inline at send time -- the paper's synchrony
            assumption and the bit-identical legacy behavior.
        downlink_latency_steps: delivery delay of one server -> object
            hop (each broadcast receiver is an independent hop).
        latency_jitter_steps: extra seeded uniform delay in
            ``[0, latency_jitter_steps]`` added to every hop.
        latency_seed: seed of the jitter stream (ignored while the jitter
            span is zero).
        batch_reports: run the high-volume uplink reports (result, cell,
            velocity changes) through the columnar batched pipeline
            (:mod:`repro.core.reporting`): clients append records to a
            shared struct-of-arrays buffer flushed once per window instead
            of allocating one dataclass and one envelope per report.
            Result hashes, message counts, sizes, and energy accounting
            are bit-identical either way; ``False`` forces the historical
            per-message path.
        shard_workers: size of the worker pool driving per-step shard work
            (columnar result ingestion, lease-expiry scans, static-beacon
            planning) under a sharded server.  ``0`` (the default) selects
            the serial executor -- the coordinator drives every shard in
            the calling thread, today's exact behavior.  Positive values
            run each step as fork -> per-shard parallel region ->
            deterministic barrier; cross-shard effects are merged at the
            barrier in canonical order, so results, message counts, and
            energy ledgers are bit-identical to the serial executor at any
            worker count.  Ignored while ``shards == 1``.
        shard_executor: worker-pool flavor when ``shard_workers > 0``:
            ``"thread"`` (shared-memory thread pool) or ``"process"``
            (fork-spawned workers holding picklable per-shard result
            mirrors, synced through a cross-shard mailbox).
        checkpoint_every_steps: cadence (in steps) of the system's
            periodic full-state checkpoints (:mod:`repro.core.snapshot`).
            ``0`` (the default) disables periodic checkpointing; explicit
            :func:`~repro.core.snapshot.checkpoint` calls work either
            way.  A fault schedule containing shard crash windows
            requires a positive cadence -- recovery rebuilds the dead
            shard from the last periodic checkpoint.
        rebalance_every_steps: cadence (in steps) at which the load-aware
            :class:`~repro.core.rebalance.RebalancePolicy` inspects the
            per-shard critical-path seconds and may move a column span
            between adjacent shards.  ``0`` (the default) disables
            policy-driven rebalancing.  Policy triggers depend on wall
            clocks, so this mode makes no cross-engine bit-identity claim
            about *when* repartitions happen (the protocol results are
            unaffected either way -- only directive downlinks differ).
        rebalance_schedule: explicit, deterministic repartition triggers as
            ``(step, src, dst, cols)`` tuples: at the top of ``step``, move
            ``cols`` columns from shard ``src`` into the adjacent shard
            ``dst``.  A fixed schedule keeps runs bit-identical across
            engines, shard counts, and executors (out-of-range ops clamp to
            no-ops, but the rebalance directive still broadcasts so message
            counts and the energy ledger match everywhere).
        rebalance_hot_factor: policy hysteresis trigger -- a repartition
            fires when the hottest shard's window critical-path seconds
            exceed ``hot_factor`` times the mean.
        rebalance_cool_factor: policy hysteresis release -- once hot, the
            policy stays armed (refusing new moves) until the ratio falls
            below ``cool_factor``, preventing boundary thrash.
        rebalance_metric: which per-shard load figure drives the policy:
            ``"seconds"`` (wall-clock critical path, the default) or
            ``"ops"`` (deterministic operation counters).
        elastic_max_shards: ceiling of the *elastic* scale-out policy.
            ``0`` (the default) disables elasticity; a positive value lets
            the rebalance policy change the shard *count* at its cadence
            (``rebalance_every_steps``): a persistently hot stripe is
            split into a newly spawned shard (up to this many live
            shards) and a persistently cold stripe is merged away and its
            slot retired.  Requires ``shards >= 2``, a positive
            ``rebalance_every_steps``, and the serial executor
            (``shard_workers == 0`` -- the parallel executors pin the
            shard list at bind time).
        elastic_min_shards: floor of elastic scale-in (merges never drop
            the live count below this; minimum 2).
        elastic_split_after: consecutive hot policy windows a stripe must
            stay above ``rebalance_hot_factor`` before it is split into a
            new shard (transfers to neighbors are tried first).
        elastic_merge_factor: a stripe whose window load falls below this
            fraction of the mean is *cold*; cold streaks drive merges.
        elastic_merge_after: consecutive cold windows a stripe must stay
            below ``elastic_merge_factor`` before it is merged away.
        elastic_schedule: explicit, deterministic elastic triggers:
            ``(step, "split", donor)`` spawns a new shard from ``donor``'s
            stripe and ``(step, "merge", sid, into)`` drains shard ``sid``
            into its stripe-adjacent neighbor ``into`` and retires the
            slot, both at the top of ``step``.  The reproducible
            counterpart of the elastic policy (CI's soak smoke uses it);
            requires ``shards >= 2`` and the serial executor, and cannot
            be combined with ``rebalance_schedule`` (a fixed
            ``(src, dst)`` schedule is written against fixed shard ids).
        ingest_budget_per_step: service-mode admission budget -- how many
            queued ingest operations (position updates, query installs or
            removals) a :class:`~repro.core.service.MobiEyesService`
            admits into the system per tick.  ``0`` (the default) admits
            everything queued.
        ingest_queue_limit: bound of the service ingest queue.  ``0``
            derives the bound from the admission budget and the latency
            model's pipeline depth (budget x (1 + uplink + downlink +
            jitter steps)), or leaves the queue unbounded when the budget
            is also 0.  A submission that would overflow the bound is
            rejected -- counted in ``backpressure_rejects``, never
            silently dropped.
        ingest_inflight_limit: service-mode backpressure on the transport:
            while more than this many envelopes are pending delivery, the
            service defers the whole tick's admissions (counted as
            deferrals).  ``0`` (the default) disables the inflight gate.
    """

    uod: Rect
    alpha: float = 5.0
    step_seconds: float = 30.0
    base_station_side: float = 10.0
    propagation: PropagationMode = PropagationMode.EAGER
    dead_reckoning_threshold: float = 0.0
    grouping: bool = True
    safe_period: bool = False
    eval_period_steps: int = 1
    static_beacon_steps: int = 10
    radio: RadioModel = field(default_factory=RadioModel)
    engine: str = "reference"
    shards: int = 1
    uplink_latency_steps: int = 0
    downlink_latency_steps: int = 0
    latency_jitter_steps: int = 0
    latency_seed: int = 0
    batch_reports: bool = True
    shard_workers: int = 0
    shard_executor: str = "thread"
    checkpoint_every_steps: int = 0
    rebalance_every_steps: int = 0
    rebalance_schedule: tuple[tuple[int, int, int, int], ...] = ()
    rebalance_hot_factor: float = 1.5
    rebalance_cool_factor: float = 1.2
    rebalance_metric: str = "seconds"
    elastic_max_shards: int = 0
    elastic_min_shards: int = 2
    elastic_split_after: int = 2
    elastic_merge_factor: float = 0.5
    elastic_merge_after: int = 3
    elastic_schedule: tuple[tuple, ...] = ()
    ingest_budget_per_step: int = 0
    ingest_queue_limit: int = 0
    ingest_inflight_limit: int = 0
    eval_period_hours: float = field(init=False, repr=False, compare=False, default=0.0)

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        if self.step_seconds <= 0:
            raise ValueError("step_seconds must be positive")
        if self.base_station_side <= 0:
            raise ValueError("base_station_side must be positive")
        if self.dead_reckoning_threshold < 0:
            raise ValueError("dead_reckoning_threshold must be non-negative")
        if self.eval_period_steps < 1:
            raise ValueError("eval_period_steps must be at least 1")
        if self.static_beacon_steps < 0:
            raise ValueError("static_beacon_steps must be non-negative")
        if self.engine not in ("reference", "vectorized"):
            raise ValueError(f"engine must be 'reference' or 'vectorized', got {self.engine!r}")
        if self.shards < 1:
            raise ValueError("shards must be at least 1")
        for knob in ("uplink_latency_steps", "downlink_latency_steps", "latency_jitter_steps"):
            if getattr(self, knob) < 0:
                raise ValueError(f"{knob} must be non-negative")
        if self.shard_workers < 0:
            raise ValueError("shard_workers must be non-negative")
        if self.shard_executor not in ("thread", "process"):
            raise ValueError(
                f"shard_executor must be 'thread' or 'process', got {self.shard_executor!r}"
            )
        if self.checkpoint_every_steps < 0:
            raise ValueError("checkpoint_every_steps must be non-negative")
        if self.rebalance_every_steps < 0:
            raise ValueError("rebalance_every_steps must be non-negative")
        for op in self.rebalance_schedule:
            if len(op) != 4 or any(not isinstance(v, int) for v in op):
                raise ValueError(
                    f"rebalance_schedule entries must be (step, src, dst, cols) ints, got {op!r}"
                )
            step, src, dst, cols = op
            if step < 1 or src < 0 or dst < 0 or cols < 1 or abs(src - dst) != 1:
                raise ValueError(f"invalid rebalance op {op!r}")
        if self.rebalance_hot_factor < 1.0:
            raise ValueError("rebalance_hot_factor must be at least 1.0")
        if not 1.0 <= self.rebalance_cool_factor <= self.rebalance_hot_factor:
            raise ValueError(
                "rebalance_cool_factor must lie between 1.0 and rebalance_hot_factor"
            )
        if self.rebalance_metric not in ("seconds", "ops"):
            raise ValueError(
                f"rebalance_metric must be 'seconds' or 'ops', got {self.rebalance_metric!r}"
            )
        if self.elastic_max_shards < 0:
            raise ValueError("elastic_max_shards must be non-negative")
        if self.elastic_min_shards < 2:
            raise ValueError("elastic_min_shards must be at least 2")
        if self.elastic_split_after < 1 or self.elastic_merge_after < 1:
            raise ValueError("elastic streak lengths must be at least 1")
        if not 0.0 < self.elastic_merge_factor < 1.0:
            raise ValueError("elastic_merge_factor must lie strictly between 0 and 1")
        for op in self.elastic_schedule:
            if (
                len(op) < 3
                or not isinstance(op[0], int)
                or op[0] < 1
                or op[1] not in ("split", "merge")
            ):
                raise ValueError(
                    f"elastic_schedule entries must be (step, 'split', donor) or "
                    f"(step, 'merge', sid, into), got {op!r}"
                )
            if op[1] == "split" and (len(op) != 3 or not isinstance(op[2], int) or op[2] < 0):
                raise ValueError(f"invalid elastic split op {op!r}")
            if op[1] == "merge" and (
                len(op) != 4
                or any(not isinstance(v, int) or v < 0 for v in op[2:])
                or op[2] == op[3]
            ):
                raise ValueError(f"invalid elastic merge op {op!r}")
        elastic = self.elastic_max_shards > 0 or bool(self.elastic_schedule)
        if elastic:
            if self.shards < 2:
                raise ValueError("elastic scale-out requires a sharded server (shards >= 2)")
            if self.shard_workers > 0:
                raise ValueError(
                    "elastic scale-out requires the serial executor (shard_workers == 0): "
                    "parallel executors pin the shard list at bind time"
                )
            if self.rebalance_schedule:
                raise ValueError(
                    "elastic_schedule / elastic_max_shards cannot be combined with "
                    "rebalance_schedule (fixed (src, dst) schedules assume fixed ids)"
                )
        if self.elastic_max_shards > 0:
            if self.rebalance_every_steps < 1:
                raise ValueError(
                    "elastic_max_shards requires a positive rebalance_every_steps cadence"
                )
            if self.elastic_max_shards < self.elastic_min_shards:
                raise ValueError("elastic_max_shards must be >= elastic_min_shards")
        for knob in ("ingest_budget_per_step", "ingest_queue_limit", "ingest_inflight_limit"):
            if getattr(self, knob) < 0:
                raise ValueError(f"{knob} must be non-negative")
        # Cached once: the object-side evaluation period in hours, used by
        # every safe-period comparison (the config is frozen, so the inputs
        # cannot change after construction).
        object.__setattr__(
            self, "eval_period_hours", self.eval_period_steps * self.step_seconds / 3600.0
        )
