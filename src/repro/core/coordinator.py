"""Coordinator: routes the MobiEyes protocol across grid-partitioned shards.

The coordinator is the transport's uplink sink and the system's
server-compatible facade when ``config.shards > 1``.  It owns no protocol
tables itself; it builds one :class:`~repro.core.shard.ServerShard` per
contiguous column stripe of the grid (see
:class:`~repro.core.partition.GridPartitioner`) plus three directories
that stay in sync through component callbacks:

- ``owner_of``: query id -> owning shard (registry ``on_added`` /
  ``on_removed``),
- ``_focal_home``: focal object -> shard owning its queries (same
  callbacks, keyed by the entry's focal),
- ``_fot_home``: object -> shard holding its FOT entry (focal tracker
  ``on_change``).

Routing: cell-change reports go to the shard owning the *new* cell
(triggering a focal handoff when the sender's queries live elsewhere);
result-change reports go to the shard owning the sender's current cell;
everything else follows the sender's home directory, falling back to the
sender's cell.  Under soft-state leases the coordinator also guarantees
the lease touch: if a message routed away from the sender's home shard,
the home is touched too, so a focal object that only ever talks to
foreign shards (e.g. result reports for queries it monitors) can never
be suspended by silence that is an artifact of partitioning.

Query installation, removal, lease expiry, static beacons, load
aggregation, and the read-only ``fot`` / ``sqt`` / ``rqi`` views fan out
across shards in deterministic (shard id, then key-sorted) order.  With
one shard every route resolves to shard 0 and the coordinated system is
bit-identical to the monolithic server.
"""

from __future__ import annotations

from copy import deepcopy as _deepcopy
from itertools import chain
from typing import Callable, Iterator

from repro.core.config import MobiEyesConfig
from repro.core.focal import FocalTracker
from repro.core.messages import (
    REC_CELL,
    REC_RESULT,
    CellChangeReport,
    MotionStateRequest,
    QueryInstallBroadcast,
    ResultChangeReport,
)
from repro.core.partition import GridPartitioner
from repro.core.query import MovingQuery, QueryId, QuerySpec
from repro.core.registry import QueryRegistry, ResultCallback
from repro.core.shard import ServerShard
from repro.core.tables import FotEntry, SqtEntry
from repro.core.transport import SimulatedTransport
from repro.grid import CellIndex, CellRange, Grid
from repro.mobility.model import ObjectId


class Coordinator:
    """Server facade dispatching the protocol across grid shards."""

    def __init__(
        self,
        grid: Grid,
        transport: SimulatedTransport,
        config: MobiEyesConfig,
        num_shards: int | None = None,
    ) -> None:
        self.grid = grid
        self.transport = transport
        self.config = config
        requested = num_shards if num_shards is not None else config.shards
        self.partitioner = GridPartitioner(grid, requested)
        self.owner_of: dict[QueryId, int] = {}
        self._focal_home: dict[ObjectId, int] = {}
        self._fot_home: dict[ObjectId, int] = {}
        self._subscribers: dict[QueryId, list[ResultCallback]] = {}
        self._next_qid: QueryId = 1
        # One report-epoch map for the whole fleet: an object's epoch must
        # survive focal/cell handoffs between shards (see
        # MobiEyesServer._report_epoch).
        self._report_epochs: dict[ObjectId, int] = {}
        self._leases_on = False
        self._lease_steps = 0
        # Optional parallel shard executor (attach_executor); None keeps
        # the historical serial loops.
        self._executor = None
        # Critical-path seconds (see reset_load): the aggregate with each
        # parallel region's concurrency credited back, i.e. the modeled
        # wall time of the step on enough idle cores.
        self.last_critical_seconds = 0.0
        self.total_critical_seconds = 0.0
        # Elastic lifecycle: ``shards`` indices are *stable slot ids* --
        # a retired shard's slot stays in place (empty) so directories,
        # reliability endpoints, and checkpoints never renumber; a later
        # spawn recycles the lowest retired slot before growing the list.
        self._retired: set[int] = set()
        self.shards: list[ServerShard] = [
            self._make_shard(sid) for sid in range(self.partitioner.num_shards)
        ]
        self._sqt_view = _SqtView(self)
        self._fot_view = _FotView(self)
        self._rqi_view = _RqiView(self)
        transport.enable_cell_routing()
        transport.attach_server(self)

    @property
    def num_shards(self) -> int:
        """The effective *live* shard count (requests beyond the grid's
        columns are clamped by the partitioner; retired slots excluded)."""
        return self.partitioner.num_shards

    def _make_shard(self, sid: int) -> ServerShard:
        """Build one shard slot wired into the shared directories.

        Used by the constructor, by :meth:`spawn_shard` when the fleet
        grows past every previously built slot, and by
        :meth:`ensure_shard_slots` when a checkpoint restores a larger
        fleet than the config's initial count."""
        registry = QueryRegistry(
            on_added=self._added_callback(sid),
            on_removed=self._removed_callback(sid),
            subscribers=self._subscribers,
        )
        tracker = FocalTracker(on_change=self._fot_callback(sid))
        shard = ServerShard(
            self.grid,
            self.transport,
            self.config,
            coordinator=self,
            shard_id=sid,
            partitioner=self.partitioner,
            registry=registry,
            tracker=tracker,
        )
        if self._leases_on:
            shard.enable_leases(self._lease_steps)
        return shard

    # ------------------------------------------------ directory callbacks

    def _added_callback(self, sid: int) -> Callable[[SqtEntry], None]:
        def on_added(entry: SqtEntry) -> None:
            self.owner_of[entry.qid] = sid
            if entry.oid is not None:
                self._focal_home[entry.oid] = sid
            ex = self._executor
            if ex is not None:
                ex.note_added(sid, entry)

        return on_added

    def _removed_callback(self, sid: int) -> Callable[[SqtEntry, bool], None]:
        def on_removed(entry: SqtEntry, focal_left: bool) -> None:
            self.owner_of.pop(entry.qid, None)
            if entry.oid is not None and not focal_left:
                if self._focal_home.get(entry.oid) == sid:
                    del self._focal_home[entry.oid]
            ex = self._executor
            if ex is not None:
                ex.note_removed(sid, entry.qid)

        return on_removed

    def _fot_callback(self, sid: int) -> Callable[[ObjectId, bool], None]:
        def on_change(oid: ObjectId, present: bool) -> None:
            if present:
                self._fot_home[oid] = sid
            elif self._fot_home.get(oid) == sid:
                del self._fot_home[oid]

        return on_change

    # ------------------------------------------------------------ routing

    def _home_of(self, oid: ObjectId) -> int | None:
        home = self._focal_home.get(oid)
        if home is None:
            home = self._fot_home.get(oid)
        return home

    @property
    def partition_epoch(self) -> int:
        """The partition map's current version (bumped by every effective
        repartition; stamped onto deferred uplink envelopes so the
        transport can count stale-epoch reroutes)."""
        return self.partitioner.epoch

    def shard_for_uplink(self, message: object) -> int:
        """The shard an uplink message is dispatched to (also the ack
        endpoint the reliability layer keys its sequence streams by)."""
        if isinstance(message, CellChangeReport):
            return self.partitioner.shard_of_cell(message.new_cell)
        if isinstance(message, ResultChangeReport):
            return self.partitioner.shard_of_cell(self.transport.sender_cell(message.oid))
        oid = getattr(message, "oid", None)
        if oid is None:
            return 0
        home = self._home_of(oid)
        if home is not None:
            return home
        return self.partitioner.shard_of_cell(self.transport.sender_cell(oid))

    def on_uplink(self, message: object) -> None:
        """Dispatch an object -> server message to the responsible shard."""
        endpoint = self.shard_for_uplink(message)
        if self._leases_on:
            # Lease-touch guarantee: a sender whose traffic all routes to
            # foreign shards must still refresh its lease at home.
            oid = getattr(message, "oid", None)
            if oid is not None:
                home = self._home_of(oid)
                if home is not None and home != endpoint:
                    self.shards[home]._touch_lease(message)
        self.shards[endpoint].on_uplink(message)

    def apply_report_record(self, cols: object, i: int) -> None:
        """Route record ``i`` of a columnar report batch to its shard.

        Mirrors :meth:`shard_for_uplink` kind by kind -- cell changes go
        to the new cell's owner, result changes to the sender's current
        cell, velocity changes to the sender's home directory -- and keeps
        the lease-touch-home guarantee for records routed away from the
        sender's home shard.
        """
        kind = cols.kind[i]  # type: ignore[attr-defined]
        oid = cols.oid[i]  # type: ignore[attr-defined]
        if kind == REC_CELL:
            endpoint = self.partitioner.shard_of_cell(
                (cols.new_i[i], cols.new_j[i])  # type: ignore[attr-defined]
            )
        elif kind == REC_RESULT:
            endpoint = self.partitioner.shard_of_cell(self.transport.sender_cell(oid))
        else:
            home = self._home_of(oid)
            if home is not None:
                endpoint = home
            else:
                endpoint = self.partitioner.shard_of_cell(self.transport.sender_cell(oid))
        if self._leases_on:
            home = self._home_of(oid)
            if home is not None and home != endpoint:
                self.shards[home]._touch_lease_rec(
                    oid, cols.state[i], None  # type: ignore[attr-defined]
                )
        self.shards[endpoint].apply_report_record(cols, i)

    # ---------------------------------------------------- focal handoff

    def migrate_focal(self, oid: ObjectId, to: int) -> None:
        """Move an object's queries and focal state to shard ``to``.

        Called by the target shard when a grid-cell crossing lands the
        object in its territory.  The SQT entries and tracker state
        (including lease freshness and any suspension record) migrate;
        RQI registrations stay put -- they are cell-owned, not
        focal-owned.  No-op when the object is already home or unknown.
        """
        src = self._home_of(oid)
        if src is None or src == to:
            return
        source = self.shards[src]
        target = self.shards[to]
        with target.load.timed():
            for entry in list(source.registry.queries_of_focal(oid)):
                source.registry.release(entry.qid)
                target.registry.adopt(entry)
                target.load.ops += 1
            packed = source.tracker.export_state(oid)
            source.tracker.evict(oid)
            target.tracker.import_state(oid, packed)
            target.load.ops += 1

    # ----------------------------------------------------- rebalancing

    def apply_rebalance(self, src: int, dst: int, cols: int) -> dict:
        """Move a column span from shard ``src`` into the adjacent shard
        ``dst``, migrating the span's state online.

        The migration runs in four deterministic strokes, all inside one
        housekeeping slot at the top of a step (never concurrent with a
        parallel shard region, so the executors' frozen routing tables are
        safe):

        1. *freeze the span*: compute the moving columns under the old map;
        2. *epoch bump*: mutate the partition map (``transfer``), making
           every layer that routes by cell -- uplink routing, RQI
           registration, broadcast splits -- see the new ownership at once;
        3. *handoff*: move the span's RQI buckets wholesale from ``src`` to
           ``dst`` (cell-owned soft state follows the cells) and migrate
           every focal homed on ``src`` whose last-known cell lies in the
           span, reusing the ordinary cross-shard focal handoff;
        4. the caller broadcasts a :class:`RebalanceDirective` so clients
           adopt the new epoch (in-flight uplinks stamped with the old
           epoch are rerouted at delivery, not dropped).

        Ops out of range for this map (a schedule written for more shards)
        clamp to a no-op; the returned summary says what actually moved.
        """
        part = self.partitioner
        summary = {
            "src": src,
            "dst": dst,
            "cols_moved": 0,
            "rqi_cells_moved": 0,
            "focals_migrated": 0,
            "epoch": part.epoch,
        }
        if not (part.is_live(src) and part.is_live(dst)):
            return summary
        moved = min(cols, part.width_of(src))
        if moved == 0:
            return summary
        # Freeze the moving span under the old boundaries.  Direction is a
        # *stripe-position* question, not an id comparison: after elastic
        # inserts the id order and the left-to-right order can differ.
        lo, hi = part.columns_of(src)
        if part.position_of(dst) > part.position_of(src):
            span_lo, span_hi = hi - moved + 1, hi
        else:
            span_lo, span_hi = lo, lo + moved - 1
        span = CellRange(span_lo, span_hi, 0, part.grid.n_rows - 1)
        part.transfer(src, dst, moved)
        summary["cols_moved"] = moved
        summary["epoch"] = part.epoch
        source, target = self.shards[src], self.shards[dst]
        with target.load.timed():
            # Cell-owned RQI registrations follow their cells wholesale.
            buckets = source.registry.rqi.extract_region(span)
            target.registry.rqi.absorb(buckets)
            target.load.ops += len(buckets)
            summary["rqi_cells_moved"] = len(buckets)
        # Focals homed on the donor whose last-known cell sits inside the
        # moved span follow it (the ordinary handoff keeps the ownership
        # directories and any executor mirrors in sync).  Objects that
        # miss the cut -- no position on record yet, or currently outside
        # the span -- reconverge through their next cell-change report.
        homed = sorted(
            oid
            for oid, home in {**self._fot_home, **self._focal_home}.items()
            if home == src
        )
        cell_of = self.transport.coverage.cell_of
        for oid in homed:
            try:
                cell = cell_of(oid)
            except KeyError:
                continue
            if span.contains(cell):
                self.migrate_focal(oid, dst)
                summary["focals_migrated"] += 1
        return summary

    # ------------------------------------------------- elastic lifecycle

    def is_live(self, sid: int) -> bool:
        """Whether a shard slot currently owns a stripe (not retired)."""
        return self.partitioner.is_live(sid)

    def spawn_shard(self, donor: int) -> dict:
        """Scale out: bring a new shard online and split the donor's
        stripe into it.

        The new shard takes the lowest retired slot if one exists (its
        empty tables and reliability endpoint are simply reused),
        otherwise a fresh slot is appended.  A zero-width stripe is
        inserted immediately to the donor's right and the donor's right
        half migrates into it through the ordinary
        :meth:`apply_rebalance` path -- one epoch bump, RQI buckets and
        in-span focals handed off online.  Returns the migration summary
        extended with the new shard id.
        """
        part = self.partitioner
        if not part.is_live(donor):
            raise ValueError(f"split donor {donor} is not a live shard")
        if part.width_of(donor) < 2:
            raise ValueError(f"shard {donor} is too narrow to split")
        if self._retired:
            sid = min(self._retired)
            self._retired.discard(sid)
        else:
            sid = len(self.shards)
            self.shards.append(self._make_shard(sid))
        part.insert_stripe(donor, sid)
        summary = self.apply_rebalance(donor, sid, part.width_of(donor) // 2)
        summary["spawned"] = sid
        return summary

    def retire_shard(self, sid: int, into: int) -> dict:
        """Scale in: drain shard ``sid`` into its stripe-adjacent neighbor
        ``into`` and retire the slot.

        The whole stripe migrates through :meth:`apply_rebalance` (one
        epoch bump; RQI buckets and in-span focals follow their cells),
        then the state that column draining cannot see is handed off
        explicitly: focals homed on ``sid`` whose last-known cell already
        sat outside the stripe, and static SQT entries (their descriptors
        live at the install-time owner regardless of cell).  Only then is
        the emptied stripe removed from the map and the slot marked
        retired -- the :class:`ServerShard` object stays in ``shards`` so
        every index and reliability endpoint remains valid, ready for a
        later :meth:`spawn_shard` to recycle.
        """
        part = self.partitioner
        if not (part.is_live(sid) and part.is_live(into)):
            raise ValueError(f"retire_shard({sid}, {into}) names a dead shard")
        if part.num_shards < 2:
            raise ValueError("cannot retire the last shard")
        summary = self.apply_rebalance(sid, into, part.width_of(sid))
        summary["retired"] = sid
        shard, target = self.shards[sid], self.shards[into]
        # Focals still homed here (last-known cell outside the drained
        # span, or no position on record): the ordinary handoff.
        homed = sorted(
            oid
            for oid, home in {**self._fot_home, **self._focal_home}.items()
            if home == sid
        )
        for oid in homed:
            self.migrate_focal(oid, into)
            summary["focals_migrated"] += 1
        # Static queries stay at their install-time owner; re-home their
        # descriptors (RQI registrations already moved with the cells).
        for entry in sorted(shard.registry.entries(), key=lambda e: e.qid):
            shard.registry.release(entry.qid)
            target.registry.adopt(entry)
        part.remove_stripe(sid)
        self._retired.add(sid)
        return summary

    def ensure_shard_slots(self, count: int) -> None:
        """Grow ``shards`` to at least ``count`` slots (checkpoint restore
        of a fleet that scaled out past the config's initial count)."""
        while len(self.shards) < count:
            self.shards.append(self._make_shard(len(self.shards)))

    def restore_retired(self, retired: set[int]) -> None:
        """Adopt a checkpointed retired-slot set wholesale."""
        self._retired = set(retired)

    @property
    def retired_shards(self) -> tuple[int, ...]:
        """Retired slot ids, ascending (for checkpoints and reports)."""
        return tuple(sorted(self._retired))

    # --------------------------------------------------- crash / recovery

    def crash_shard(self, sid: int) -> dict:
        """Kill shard ``sid``: all of its soft state vanishes.

        Models a server process crash.  The shard's SQT entries, FOT /
        lease / suspension records, and RQI buckets are erased; queued
        uplink envelopes addressed to it die with it (reliable exchanges
        stay pending client-side and retry through the normal budget).
        The ownership directories shed the dead queries through the usual
        registry callbacks, so surviving shards route around the hole:
        results for dead queries resolve to ``None`` and are skipped, and
        fresh uplinks into the dead stripe are dropped by the fault
        injector's crash window.  Returns drop/teardown counters for the
        chaos report.
        """
        shard = self.shards[sid]
        # Discard in-flight uplinks first: routing consults the ownership
        # directories this teardown is about to erase.
        def addressed_to_dead(env) -> bool:
            return env.kind in ("uplink", "rel-uplink") and (
                self.shard_for_uplink(env.message) == sid
            )

        dropped = self.transport.discard_queued(addressed_to_dead)
        entries = list(shard.registry.entries())
        for entry in entries:
            if not entry.suspended:
                shard._rqi_remove(entry.qid, entry.mon_region)
            shard.registry.release(entry.qid)
        tracker = shard.tracker
        tracked = sorted({*tracker.last_heard, *tracker.suspended, *tracker.fot.ids()})
        for oid in tracked:
            tracker.evict(oid)
        # Foreign queries replicated their RQI portions into this stripe;
        # those registrations are this shard's soft state and die too
        # (recover_shard rebuilds them from the survivors' live entries).
        shard.registry.rqi.clear()
        return {
            "shard": sid,
            "queries_lost": len(entries),
            "focals_lost": len(tracked),
            "envelopes_dropped": dropped,
        }

    def recover_shard(self, sid: int, checkpoint, step: int) -> dict:
        """Restart shard ``sid`` from the system's last checkpoint.

        Rebuilds the dead shard's tables in three strokes:

        1. every checkpointed SQT entry whose query id no longer exists
           anywhere (it died with the shard) is re-adopted by ``sid`` and
           its monitoring region re-registered across the partition;
        2. the stripe's RQI registrations for *surviving* queries are
           rebuilt from the live registries of the other shards (their
           entries are fresher than the checkpoint);
        3. FOT / suspension state of the recovered focals is re-imported
           from the checkpoint with ``last_heard = step``, granting a
           fresh lease so recovery itself cannot expire anyone.

        The caller (the system's crash orchestration) follows up with a
        grid-wide resync directive so clients re-pull descriptors and
        report epochs; entries recovered here may be stale until those
        resyncs and the objects' own reports re-converge the results --
        the chaos twin grades exactly that window.  Returns counters for
        the chaos report.
        """
        if checkpoint is None:
            raise ValueError(
                f"shard {sid} crash ended at step {step} with no checkpoint to "
                "recover from (the first cadence checkpoint had not been taken)"
            )
        shard = self.shards[sid]
        sections = _deepcopy(checkpoint.payload["server"])
        recovered_queries = 0
        recovered_focals = 0
        for section in sections:
            for entry in section["entries"]:
                if entry.qid in self.owner_of:
                    continue
                shard.registry.add(entry)
                if not entry.suspended:
                    shard._rqi_add(entry.qid, entry.mon_region)
                recovered_queries += 1
            for oid, packed in section["tracker"]:
                if oid in self._fot_home or oid in shard.tracker.suspended:
                    continue
                if not shard.registry.is_focal(oid):
                    continue
                entry, _heard, suspended_speed = packed
                shard.tracker.import_state(oid, (entry, step, suspended_speed))
                recovered_focals += 1
        # Surviving queries whose monitoring regions span the recovered
        # stripe: their registrations died with the shard's RQI, but the
        # owning registries are alive -- rebuild from live state.
        for other in self.shards:
            if other.shard_id == sid:
                continue
            for entry in other.registry.entries():
                if entry.suspended:
                    continue
                for owner, portion in self.partitioner.split(entry.mon_region):
                    if owner == sid:
                        shard.registry.register_cells(entry.qid, portion)
        return {
            "shard": sid,
            "queries_recovered": recovered_queries,
            "focals_recovered": recovered_focals,
        }

    # ---------------------------------------------- shard-facing lookups

    def allocate_qid(self) -> QueryId:
        """Claim the next globally unique query id."""
        qid = self._next_qid
        self._next_qid += 1
        return qid

    def focal_entry(self, oid: ObjectId) -> FotEntry:
        """The FOT entry of an object, wherever it lives."""
        home = self._fot_home[oid]
        return self.shards[home].tracker.get(oid)

    def queries_at(self, cell: CellIndex) -> frozenset[QueryId]:
        """Query ids registered at a cell, from the cell owner's RQI."""
        shard = self.partitioner.shard_of_cell(cell)
        return self.shards[shard].registry.queries_at(cell)

    def entry_of(self, qid: QueryId) -> SqtEntry:
        """The SQT entry of a query, from its owning shard."""
        return self.shards[self.owner_of[qid]].registry.get(qid)

    def result_entry(self, qid: QueryId) -> SqtEntry | None:
        """The entry a result change applies to, or None if the query no
        longer exists anywhere."""
        owner = self.owner_of.get(qid)
        if owner is None:
            return None
        return self.shards[owner].registry.get(qid)

    def purge_object(self, oid: ObjectId) -> list[QueryId]:
        """Drop an object from every result set on every shard; returns
        the affected query ids in ascending order."""
        purged: list[QueryId] = []
        for shard in self.shards:
            purged.extend(shard.registry.purge_object(oid))
        purged.sort()
        return purged

    def report_epoch(self, oid: ObjectId) -> int:
        """The report generation currently accepted from ``oid``."""
        return self._report_epochs.get(oid, 0)

    def bump_report_epoch(self, oid: ObjectId) -> int:
        """Start a new report generation for ``oid`` (fleet-wide)."""
        epoch = self._report_epochs.get(oid, 0) + 1
        self._report_epochs[oid] = epoch
        return epoch

    # ------------------------------------------------------- server API

    def install_query(self, spec: QuerySpec) -> QueryId:
        """Install a query on its owning shard.

        Static queries belong to the shard owning the monitoring region's
        lower-left cell.  Moving queries belong to the focal object's home
        shard; for a brand-new focal the coordinator first requests its
        motion state, and the response -- routed by the sender's current
        cell -- creates the FOT entry at the shard that becomes the owner.
        """
        if spec.is_static:
            mon_region = self.grid.cells_intersecting(spec.region.bounding_rect())
            owner = self.partitioner.shard_of_cell((mon_region.lo_i, mon_region.lo_j))
            return self.shards[owner].install_query(spec)
        home = self._home_of(spec.oid)
        if home is None:
            # Install-time round trip: forced inline (see the monolith's
            # install_query) so the directory is populated before we route.
            with self.transport.synchronous():
                self.transport.send(spec.oid, MotionStateRequest(oid=spec.oid))
            home = self._home_of(spec.oid)
            if home is None:
                raise KeyError(f"focal object {spec.oid} did not answer the state request")
        return self.shards[home].install_query(spec)

    def remove_query(self, qid: QueryId) -> None:
        """Uninstall a query everywhere (routed to its owning shard)."""
        owner = self.owner_of.get(qid)
        if owner is None:
            raise KeyError(qid)
        self.shards[owner].remove_query(qid)

    def enable_leases(self, lease_steps: int) -> None:
        """Arm soft-state leases on every shard (and every future spawn)."""
        self._leases_on = True
        self._lease_steps = lease_steps
        for shard in self.shards:
            shard.enable_leases(lease_steps)

    def expire_leases(self, step: int) -> None:
        """Expire leases shard by shard, each in ascending object order.

        With a parallel executor the per-shard expiry *scans* (pure
        tracker reads) run as one pooled region; the suspensions replay
        at the barrier in shard order, ascending object order -- the
        serial order, since a suspension cannot influence another
        shard's scan (its broadcasts trigger no uplinks).
        """
        ex = self._executor
        if ex is None or not ex.parallel:
            for shard in self.shards:
                shard.expire_leases(step)
            return
        for shard, expired in zip(self.shards, ex.scan_expired(step)):
            for oid in expired:
                shard._suspend(oid)

    def beacon_static_queries(self) -> int:
        """Re-broadcast static query descriptors from every shard.

        With a parallel executor the per-shard gathers (registry reads
        plus load charges) run as one pooled region; the broadcasts --
        the ledger-charged effects -- replay at the barrier in shard
        order, entry order, exactly as the serial loop sends them.
        """
        ex = self._executor
        if ex is None or not ex.parallel:
            return sum(shard.beacon_static_queries() for shard in self.shards)
        broadcasts = 0
        for shard, entries in zip(self.shards, ex.plan_static_beacons()):
            for entry in entries:
                broadcasts += shard.planner.send(
                    entry.mon_region,
                    QueryInstallBroadcast(queries=(shard._descriptor(entry),)),
                )
        return broadcasts

    def subscribe(self, qid: QueryId, callback: ResultCallback) -> None:
        """Register a result-change callback (fires once per change, from
        whichever shard applies it -- the subscriber book is shared)."""
        if qid not in self.owner_of:
            raise KeyError(f"unknown query {qid}")
        self._subscribers.setdefault(qid, []).append(callback)

    def unsubscribe(self, qid: QueryId, callback: ResultCallback) -> None:
        """Remove a previously registered callback (no-op if absent)."""
        callbacks = self._subscribers.get(qid)
        if callbacks and callback in callbacks:
            callbacks.remove(callback)

    def query_result(self, qid: QueryId) -> frozenset[ObjectId]:
        """The current (differentially maintained) result of a query."""
        return frozenset(self.entry_of(qid).result)

    def installed_queries(self) -> list[MovingQuery]:
        """All installed queries as MovingQuery values, qid-ascending."""
        return [
            MovingQuery(qid=e.qid, oid=e.oid, region=e.region, filter=e.filter)
            for e in self._sqt_view.entries()
        ]

    def nearby_queries(self, cell: CellIndex) -> frozenset[QueryId]:
        """Query ids whose monitoring region covers the cell."""
        return self.queries_at(cell)

    # ------------------------------------------------ parallel execution

    def attach_executor(self, executor) -> None:
        """Bind a shard executor (see :mod:`repro.core.executor`); the
        serial executor (or none at all) keeps the historical loops."""
        self._executor = executor
        executor.bind(self)

    def close_executor(self) -> None:
        """Release the executor's pool resources (idempotent)."""
        if self._executor is not None:
            self._executor.close()

    def result_batch_applier(self):
        """The transport's hook into the parallel result kernel.

        Returns a callable taking a *run* of contiguous buffered result
        records (``[(cols, i), ...]``) -- or None when runs must apply
        record by record: no executor, a serial executor, or soft-state
        leases armed (lease touches and reinstatement probes are
        per-record server reactions the kernel does not model; lease
        runs are fault-injection runs, whose loss/reliability layers
        already force the transport's per-message replay path anyway).
        """
        ex = self._executor
        if ex is None or not ex.parallel or self._leases_on:
            return None
        return ex.apply_result_run

    # ---------------------------------------------------------- load

    @property
    def load_seconds(self) -> float:
        """Wall seconds spent across all shards since the last reset."""
        return sum(shard.load.seconds for shard in self.shards)

    @property
    def op_count(self) -> int:
        """Abstract operations across all shards since the last reset."""
        return sum(shard.load.ops for shard in self.shards)

    def reset_load(self) -> tuple[float, int]:
        """Return and clear the aggregated (seconds, ops) load counters.

        The returned seconds are *aggregate shard-CPU seconds* -- the sum
        over shards, which double-counts work that ran concurrently under
        a parallel executor.  As a side effect this also computes the
        *critical-path* seconds of the window (``last_critical_seconds``
        / ``total_critical_seconds``): the aggregate with each parallel
        region's summed worker time replaced by its slowest worker, i.e.
        the modeled wall time on enough idle cores.  Without a parallel
        executor the two are equal.
        """
        seconds = 0.0
        ops = 0
        for shard in self.shards:
            shard_seconds, shard_ops = shard.reset_load()
            seconds += shard_seconds
            ops += shard_ops
        ex = self._executor
        if ex is not None and ex.parallel:
            par_total, span = ex.drain_span()
            critical = max(0.0, seconds - par_total) + span
        else:
            critical = seconds
        self.last_critical_seconds = critical
        self.total_critical_seconds += critical
        return seconds, ops

    def shard_loads(self) -> list[dict]:
        """Per-shard lifetime load totals (for the bench's balance report).

        Retired slots are excluded: they own no stripe and receive no
        routed traffic, so counting their (frozen) historical totals would
        skew the balance of the live fleet."""
        out = []
        for shard in self.shards:
            if not self.partitioner.is_live(shard.shard_id):
                continue
            lo, hi = self.partitioner.columns_of(shard.shard_id)
            out.append(
                {
                    "shard": shard.shard_id,
                    "columns": [lo, hi],
                    "ops": shard.load.total_ops + shard.load.ops,
                    "seconds": shard.load.total_seconds + shard.load.seconds,
                    "queries": len(shard.registry),
                    "focals": len(shard.tracker.fot),
                }
            )
        return out

    # ------------------------------------------------------ table views

    @property
    def sqt(self) -> "_SqtView":
        """Aggregate read view over every shard's server query table."""
        return self._sqt_view

    @property
    def fot(self) -> "_FotView":
        """Aggregate read view over every shard's focal object table."""
        return self._fot_view

    @property
    def rqi(self) -> "_RqiView":
        """Aggregate read view over every shard's reverse query index."""
        return self._rqi_view

    # --------------------------------------------------------- invariants

    def check_invariants(self) -> None:
        """Per-shard invariants plus the cross-shard partition and
        directory consistency rules.  Retired slots must be fully drained
        -- a retired shard holding state is a lost-migration bug."""
        for shard in self.shards:
            if not self.partitioner.is_live(shard.shard_id):
                assert len(shard.registry) == 0, (
                    f"retired shard {shard.shard_id} still owns queries"
                )
                assert not list(shard.tracker.ids()), (
                    f"retired shard {shard.shard_id} still tracks focals"
                )
                assert not list(shard.registry.rqi.nonempty_cells()), (
                    f"retired shard {shard.shard_id} still holds RQI cells"
                )
                continue
            shard.check_invariants()
        for shard in self.shards:
            sid = shard.shard_id
            for entry in shard.registry.entries():
                assert self.owner_of.get(entry.qid) == sid, (
                    f"query {entry.qid} owned by shard {sid} but directory says "
                    f"{self.owner_of.get(entry.qid)}"
                )
                if not entry.is_static:
                    assert self._focal_home.get(entry.oid) == sid, (
                        f"focal {entry.oid} owns queries on shard {sid} but its home is "
                        f"{self._focal_home.get(entry.oid)}"
                    )
            for oid in shard.tracker.ids():
                assert self._fot_home.get(oid) == sid, (
                    f"object {oid} tracked by shard {sid} but FOT directory says "
                    f"{self._fot_home.get(oid)}"
                )
        total = sum(len(shard.registry) for shard in self.shards)
        assert total == len(self.owner_of), (
            f"ownership directory has {len(self.owner_of)} queries, shards hold {total}"
        )


class _SqtView:
    """Qid-ordered read view over every shard's SQT."""

    def __init__(self, coordinator: Coordinator) -> None:
        self._coord = coordinator

    def __contains__(self, qid: QueryId) -> bool:
        return qid in self._coord.owner_of

    def __len__(self) -> int:
        return len(self._coord.owner_of)

    def get(self, qid: QueryId) -> SqtEntry:
        return self._coord.entry_of(qid)

    def ids(self) -> Iterator[QueryId]:
        return iter(sorted(self._coord.owner_of))

    def entries(self) -> Iterator[SqtEntry]:
        return iter([self._coord.entry_of(qid) for qid in sorted(self._coord.owner_of)])

    def is_focal(self, oid: ObjectId) -> bool:
        return oid in self._coord._focal_home

    def queries_of_focal(self, oid: ObjectId) -> list[SqtEntry]:
        home = self._coord._focal_home.get(oid)
        if home is None:
            return []
        return self._coord.shards[home].registry.queries_of_focal(oid)


class _FotView:
    """Read view over every shard's FOT, resolved by the home directory."""

    def __init__(self, coordinator: Coordinator) -> None:
        self._coord = coordinator

    def __contains__(self, oid: ObjectId) -> bool:
        return oid in self._coord._fot_home

    def __len__(self) -> int:
        return len(self._coord._fot_home)

    def get(self, oid: ObjectId) -> FotEntry:
        return self._coord.focal_entry(oid)

    def ids(self) -> Iterator[ObjectId]:
        return iter(sorted(self._coord._fot_home))


class _RqiView:
    """Read view over the partitioned RQI (each cell has one owner)."""

    def __init__(self, coordinator: Coordinator) -> None:
        self._coord = coordinator

    def queries_at(self, cell: CellIndex) -> frozenset[QueryId]:
        return self._coord.queries_at(cell)

    def nonempty_cells(self) -> Iterator[CellIndex]:
        return chain.from_iterable(
            shard.registry.rqi.nonempty_cells() for shard in self._coord.shards
        )
