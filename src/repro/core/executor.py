"""Parallel shard executors: fork / per-shard region / deterministic barrier.

With ``MobiEyesConfig(shard_workers=N)`` the coordinator hands the
per-step shard work -- columnar result-report ingestion, lease-expiry
scans, static-beacon planning -- to one of the executors in this module
instead of driving every shard in the calling thread.  Each parallel
region follows the same shape:

1. **fork**: the coordinator *splits* the step's work into independent
   per-shard units in the calling thread, using its directories
   (``owner_of``, the shared report-epoch map) while they are frozen --
   nothing inside a parallel region may mutate them.
2. **per-shard region**: one worker applies one shard's unit.  Workers
   touch only their own shard's tables, so no locks are needed; every
   externally visible effect (a result-set delta, a planned broadcast)
   is *recorded* into a per-shard outbox together with a global
   ``order`` stamp assigned during the split.
3. **deterministic barrier**: the coordinator joins all workers, then
   merges the outboxes by ``order`` (for result deltas: record-major,
   pair-minor append order -- exactly the serial apply order) and
   replays the merged effects (subscriber notifications, broadcasts)
   in the calling thread.

Because the split order is the serial processing order and every
cross-shard effect is deferred to the ordered merge, result hashes,
message counts, message sizes, and energy ledgers are bit-identical to
the serial coordinator at any worker count, on both engines, under
modeled latency.  (Under an active loss model or the reliability layer
the transport replays reports per logical message and the batch kernel
never engages, so fault-injection runs are trivially identical too.)

Three executors:

- :class:`SerialShardExecutor` (``shard_workers == 0``): the do-nothing
  default; the coordinator keeps its historical serial loops.
- :class:`ThreadShardExecutor` (``shard_executor="thread"``): a shared
  -memory thread pool.  Workers mutate the authoritative shard tables
  directly (safe: one worker per shard, effects replayed at the
  barrier).
- :class:`ProcessShardExecutor` (``shard_executor="process"``): fork
  -spawned workers holding a picklable per-shard *result mirror*
  (``qid -> member set``), kept in sync through a cross-shard mailbox of
  directory deltas (``note_added`` / ``note_removed``, fired by the
  coordinator's registry callbacks on install, removal, and focal
  migration).  Workers compute the applied deltas against their
  mirrors; the parent replays them onto the authoritative tables at the
  barrier.  Falls back to the thread pool where ``fork`` is
  unavailable.

Executors also account the *critical path* of the parallel regions:
``drain_span()`` returns ``(par_total, span)`` -- the summed worker
seconds and the summed per-barrier maxima -- so the coordinator can
report ``critical = aggregate - par_total + span`` next to the
aggregate shard-CPU seconds (which double-count concurrent work).
Worker regions are timed with per-thread / per-process **CPU clocks**
(``time.thread_time`` / ``time.process_time``), not wall clocks: on a
GIL interpreter (or an oversubscribed host) a worker's wall time
includes the other workers' turns, which would inflate the span to
roughly the whole region and make the critical path meaningless.  CPU
time measures each shard's actual work, so the span is the heaviest
shard's work -- the floor a host with enough idle cores can reach.
"""

from __future__ import annotations

import heapq
import multiprocessing
import weakref
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter, process_time, thread_time
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.coordinator import Coordinator
    from repro.core.query import QueryId
    from repro.core.tables import SqtEntry
    from repro.mobility.model import ObjectId

# One work unit of the result kernel: record ``i`` of a columnar report
# batch (a ReportBuffer or an UplinkReportBatch -- both expose the same
# column layout).
ResultUnit = "tuple[object, int]"
# One routed result pair: (global order stamp, oid, qid, membership flag).
ResultPair = "tuple[int, ObjectId, QueryId, bool]"


class SerialShardExecutor:
    """The ``shard_workers == 0`` executor: no pool, no parallel regions.

    The coordinator checks :attr:`parallel` and keeps its serial loops,
    so binding this executor changes nothing observable.  It still hosts
    the shared *split* and *plan* helpers the pooled executors build on.
    """

    parallel = False

    def __init__(self, workers: int = 0) -> None:
        self.workers = workers
        self.coordinator: "Coordinator | None" = None
        self.shards: Sequence = ()
        # Critical-path accounting over the parallel regions since the
        # last drain: summed worker seconds, and summed per-barrier maxima.
        self._par_total = 0.0
        self._span = 0.0

    def bind(self, coordinator: "Coordinator") -> None:
        """Attach to a coordinator (called by ``attach_executor``)."""
        self.coordinator = coordinator
        self.shards = coordinator.shards

    # ------------------------------------------------------------ split

    def split_result_run(self, run: "list[ResultUnit]") -> "list[list[ResultPair]]":
        """Route a run of buffered result records into per-shard buckets.

        Runs in the calling thread against the coordinator's frozen
        directories.  Each (qid, flag) pair is stamped with a global
        ``order`` counter advancing in record-major, pair-minor append
        order -- the exact order the serial server would have applied
        (and notified) it -- and lands in the bucket of the shard owning
        the qid.  The split IS the cross-shard mailbox: a record arriving
        at shard A's endpoint with pairs owned by shard B simply
        contributes to B's bucket.  Pairs of removed queries (no owner)
        are dropped, as the serial path drops them; a record staler than
        its sender's report epoch is skipped whole.
        """
        coordinator = self.coordinator
        epochs = coordinator._report_epochs
        owner_of = coordinator.owner_of
        buckets: list[list] = [[] for _ in self.shards]
        order = 0
        for cols, i in run:
            oid = cols.oid[i]
            lo = cols.qid_lo[i]
            hi = cols.qid_hi[i]
            if cols.epoch[i] < epochs.get(oid, 0):
                order += hi - lo
                continue
            qid_flat = cols.qid_flat
            flag_flat = cols.flag_flat
            for k in range(lo, hi):
                owner = owner_of.get(qid_flat[k])
                if owner is not None:
                    buckets[owner].append((order, oid, qid_flat[k], flag_flat[k]))
                order += 1
        return buckets

    def merge_applied(self, applied_lists: "Iterable[list]") -> None:
        """Barrier half of the result kernel: fire subscriber callbacks
        in global ``order`` -- the serial notification order -- by
        merge-sorting the per-shard applied outboxes (each already
        order-ascending)."""
        coordinator = self.coordinator
        if not coordinator._subscribers:
            return
        notify = self.shards[0].registry.notify  # the subscriber book is shared
        for _order, qid, oid, entered in heapq.merge(*applied_lists):
            notify(qid, oid, entered)

    # --------------------------------------------------- per-phase hooks

    def apply_result_run(self, run: "list[ResultUnit]") -> None:  # pragma: no cover
        raise NotImplementedError("the serial executor never receives result runs")

    def scan_expired(self, step: int) -> "list[list[ObjectId]]":
        """Per-shard expired-lease scans (pure reads; serial fallback)."""
        return [list(shard.tracker.expired(step)) for shard in self.shards]

    def plan_static_beacons(self) -> "list[list[SqtEntry]]":
        """Per-shard static-query gathers, charged like the serial
        ``beacon_static_queries`` timed section (serial fallback)."""
        out = []
        for shard in self.shards:
            out.append(self._gather_static(shard))
        return out

    @staticmethod
    def _gather_static(shard) -> "list[SqtEntry]":
        t0 = perf_counter()
        entries = [e for e in shard.registry.entries() if e.is_static]
        shard.load.ops += len(entries)
        shard.load.seconds += perf_counter() - t0
        return entries

    @staticmethod
    def _gather_static_pooled(shard):
        """Worker-side gather: charged and spanned in thread CPU time."""
        t0 = thread_time()
        entries = [e for e in shard.registry.entries() if e.is_static]
        elapsed = thread_time() - t0
        shard.load.ops += len(entries)
        shard.load.seconds += elapsed
        return entries, elapsed

    # ------------------------------------------------- mailbox / lifecycle

    def note_added(self, sid: int, entry: "SqtEntry") -> None:
        """Directory hook: a shard took ownership of an SQT entry."""

    def note_removed(self, sid: int, qid: "QueryId") -> None:
        """Directory hook: a shard gave up ownership of an SQT entry."""

    def drain_span(self) -> tuple[float, float]:
        """``(summed worker seconds, summed per-barrier maxima)`` across
        the parallel regions since the last drain; zeroed for the next
        measurement window."""
        out = (self._par_total, self._span)
        self._par_total = 0.0
        self._span = 0.0
        return out

    def close(self) -> None:
        """Release pool resources (idempotent)."""


class ThreadShardExecutor(SerialShardExecutor):
    """Shared-memory worker pool over the authoritative shard tables."""

    parallel = True

    def __init__(self, workers: int) -> None:
        super().__init__(workers)
        self._pool: ThreadPoolExecutor | None = None

    def bind(self, coordinator: "Coordinator") -> None:
        super().bind(coordinator)
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, self.workers), thread_name_prefix="shard-worker"
        )

    # ------------------------------------------------------ result kernel

    def apply_result_run(self, run: "list[ResultUnit]") -> None:
        """Fork -> apply each shard's bucket on the pool -> barrier."""
        buckets = self.split_result_run(run)
        jobs = [(sid, bucket) for sid, bucket in enumerate(buckets) if bucket]
        if not jobs:
            return
        outcomes = list(
            self._pool.map(lambda job: self._apply_shard(job[0], job[1]), jobs)
        )
        elapsed = [e for _applied, e in outcomes]
        self._par_total += sum(elapsed)
        self._span += max(elapsed)
        self.merge_applied([applied for applied, _e in outcomes])

    def _apply_shard(self, sid: int, bucket: "list[ResultPair]"):
        """Per-shard parallel region: apply one bucket of routed pairs.

        Mirrors ``MobiEyesServer._apply_result_record`` pair by pair --
        same skip rules (removed queries were dropped at the split,
        suspended entries skipped here), same add/discard decisions
        (pairs of one qid are bucket-ordered, so the membership state
        each pair observes is the serial one), same ``ops`` count per
        live pair.  The applied deltas go to the outbox with their order
        stamps; the thread CPU time is charged to the shard that owns
        the qids (the serial path charges the endpoint shard -- the
        aggregate is the same, the per-shard attribution reflects where
        the work now runs).
        """
        shard = self.shards[sid]
        t0 = thread_time()
        entries = shard.registry.sqt._entries
        applied: list = []
        ops = 0
        for order, oid, qid, flag in bucket:
            entry = entries.get(qid)
            if entry is None or entry.suspended:
                continue
            result = entry.result
            if flag:
                if oid not in result:
                    result.add(oid)
                    applied.append((order, qid, oid, True))
            else:
                if oid in result:
                    result.discard(oid)
                    applied.append((order, qid, oid, False))
            ops += 1
        elapsed = thread_time() - t0
        shard.load.seconds += elapsed
        shard.load.ops += ops
        return applied, elapsed

    # -------------------------------------------------- pooled pure scans

    def scan_expired(self, step: int) -> "list[list[ObjectId]]":
        """Pooled expired-lease scans: pure reads over disjoint trackers,
        joined before any suspension runs (the serial loop's interleaved
        suspensions cannot influence a later shard's scan -- suspension
        broadcasts trigger no uplinks -- so scan-all-then-suspend is
        order-identical)."""
        return list(
            self._pool.map(
                lambda shard: list(shard.tracker.expired(step)), self.shards
            )
        )

    def plan_static_beacons(self) -> "list[list[SqtEntry]]":
        """Pooled static-query gathers (reads + local load charges)."""
        outcomes = list(self._pool.map(self._gather_static_pooled, self.shards))
        elapsed = [e for _entries, e in outcomes]
        self._par_total += sum(elapsed)
        self._span += max(elapsed)
        return [entries for entries, _e in outcomes]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def _process_worker(conn, shard_ids: "list[int]") -> None:
    """Worker-process main loop (fork target).

    Holds one result mirror (``qid -> member set``) per assigned shard,
    kept current through the sync ops shipped ahead of every bucket.
    Each task is ``[(sid, sync_ops, bucket), ...]``; the reply is
    ``[(sid, applied, ops, elapsed), ...]`` -- the deltas the parent
    replays onto the authoritative tables at the barrier.
    """
    mirrors: dict[int, dict] = {sid: {} for sid in shard_ids}
    try:
        while True:
            task = conn.recv()
            if task is None:
                break
            reply = []
            for sid, sync_ops, bucket in task:
                mirror = mirrors[sid]
                for op in sync_ops:
                    if op[0] == "add":
                        mirror[op[1]] = set(op[2])
                    else:
                        mirror.pop(op[1], None)
                t0 = process_time()
                applied = []
                ops = 0
                for order, oid, qid, flag in bucket:
                    result = mirror.get(qid)
                    if result is None:
                        continue
                    if flag:
                        if oid not in result:
                            result.add(oid)
                            applied.append((order, qid, oid, True))
                    else:
                        if oid in result:
                            result.discard(oid)
                            applied.append((order, qid, oid, False))
                    ops += 1
                reply.append((sid, applied, ops, process_time() - t0))
            conn.send(reply)
    except EOFError:  # parent died without a shutdown sentinel
        pass
    finally:
        conn.close()


class ProcessShardExecutor(SerialShardExecutor):
    """Fork-spawned worker pool over picklable per-shard result mirrors.

    Workers spawn lazily at the first result run, seeded with a full
    snapshot of every shard's result sets; from then on the coordinator's
    registry callbacks feed ownership deltas into per-shard mailboxes
    (:meth:`note_added` / :meth:`note_removed`) that ship with the next
    task, so a mirror always equals the authoritative tables when its
    bucket applies.  Lease-expiry scans and beacon planning stay in the
    parent (the trackers and registries live here); only the result
    kernel -- the per-step volume -- crosses the process boundary.
    """

    parallel = True

    def __init__(self, workers: int) -> None:
        super().__init__(workers)
        self._ctx = multiprocessing.get_context("fork")
        self._conns: list = []
        self._procs: list = []
        self._pending: list[list] = []
        self._spawned = False
        self._finalizer = None

    def bind(self, coordinator: "Coordinator") -> None:
        super().bind(coordinator)
        self._pending = [[] for _ in self.shards]

    # ----------------------------------------------------------- mailbox

    def note_added(self, sid: int, entry: "SqtEntry") -> None:
        if self._spawned:
            self._pending[sid].append(("add", entry.qid, tuple(entry.result)))

    def note_removed(self, sid: int, qid: "QueryId") -> None:
        if self._spawned:
            self._pending[sid].append(("drop", qid))

    # ------------------------------------------------------------- spawn

    def _ensure_spawned(self) -> None:
        if self._spawned:
            return
        workers = max(1, min(self.workers, len(self.shards)))
        assignments: list[list[int]] = [[] for _ in range(workers)]
        for sid in range(len(self.shards)):
            assignments[sid % workers].append(sid)
        for shard_ids in assignments:
            parent_conn, child_conn = self._ctx.Pipe()
            proc = self._ctx.Process(
                target=_process_worker, args=(child_conn, shard_ids), daemon=True
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        self._spawned = True
        self._finalizer = weakref.finalize(
            self, _shutdown_workers, self._conns, self._procs
        )
        # Seed the mirrors: a full ownership snapshot per shard, shipped
        # as ordinary sync ops ahead of the first buckets.
        for sid, shard in enumerate(self.shards):
            pending = self._pending[sid]
            for entry in shard.registry.entries():
                pending.append(("add", entry.qid, tuple(entry.result)))

    # ------------------------------------------------------ result kernel

    def apply_result_run(self, run: "list[ResultUnit]") -> None:
        """Fork -> mirrored per-shard regions -> replayed barrier."""
        buckets = self.split_result_run(run)
        self._ensure_spawned()
        workers = len(self._conns)
        tasks: list[list] = [[] for _ in range(workers)]
        for sid, bucket in enumerate(buckets):
            pending = self._pending[sid]
            if pending or bucket:
                tasks[sid % workers].append((sid, pending, bucket))
                if pending:
                    self._pending[sid] = []
        busy = [w for w, task in enumerate(tasks) if task]
        for w in busy:
            self._conns[w].send(tasks[w])
        applied_by_sid: dict[int, list] = {}
        worker_elapsed = []
        for w in busy:
            spent = 0.0
            for sid, applied, ops, elapsed in self._conns[w].recv():
                applied_by_sid[sid] = applied
                shard = self.shards[sid]
                shard.load.seconds += elapsed
                shard.load.ops += ops
                spent += elapsed
            worker_elapsed.append(spent)
        if worker_elapsed:
            self._par_total += sum(worker_elapsed)
            self._span += max(worker_elapsed)
        # Barrier: replay the applied deltas onto the authoritative
        # tables in shard order (deltas of distinct shards touch distinct
        # qids, so shard order is immaterial to the outcome), then notify
        # in merged global order.
        for sid in sorted(applied_by_sid):
            entries = self.shards[sid].registry.sqt._entries
            for _order, qid, oid, flag in applied_by_sid[sid]:
                entry = entries.get(qid)
                if entry is None:
                    continue
                if flag:
                    entry.result.add(oid)
                else:
                    entry.result.discard(oid)
        self.merge_applied(applied_by_sid.values())

    def close(self) -> None:
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
        self._conns = []
        self._procs = []
        self._spawned = False


def _shutdown_workers(conns, procs) -> None:
    """Tell every worker to exit and reap it (finalizer-safe)."""
    for conn in conns:
        try:
            conn.send(None)
        except (OSError, ValueError):
            pass
    for proc in procs:
        proc.join(timeout=5)
        if proc.is_alive():  # pragma: no cover - stuck worker backstop
            proc.terminate()
            proc.join(timeout=1)
    for conn in conns:
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


def make_executor(config) -> SerialShardExecutor:
    """Build the executor selected by ``shard_workers`` / ``shard_executor``."""
    if config.shard_workers <= 0:
        return SerialShardExecutor()
    if config.shard_executor == "process":
        if "fork" in multiprocessing.get_all_start_methods():
            return ProcessShardExecutor(config.shard_workers)
        # No fork on this platform: the mirror protocol needs
        # copy-on-write spawn semantics, so degrade to the thread pool
        # (identical results -- the executors are differentially tested).
        return ThreadShardExecutor(config.shard_workers)
    return ThreadShardExecutor(config.shard_workers)
