"""Focal tracker: the FOT plus soft-state lease bookkeeping.

One of the three layered server components (registry / focal tracker /
broadcast planner).  The tracker owns one server's focal object table --
the last reported kinematic state of every focal object it is responsible
for -- together with the lease machinery wired up under fault injection:
the last step each object was heard from, and the max-speed bounds of
focal objects whose queries are currently suspended.

The optional ``on_change`` callback fires on every FOT membership change
(``on_change(oid, present)``); the coordinator uses it to track which
shard currently holds each focal object's state.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.core.tables import FocalObjectTable, FotEntry
from repro.mobility.model import MotionState, ObjectId


class FocalTracker:
    """FOT ownership, lease freshness, and suspension state."""

    def __init__(self, on_change: Callable[[ObjectId, bool], None] | None = None) -> None:
        self.fot = FocalObjectTable()
        # Soft-state leases (enabled under fault injection): last step each
        # object was heard from, and the max-speed bound of focal objects
        # whose queries are currently suspended.
        self.lease_steps: int | None = None
        self.last_heard: dict[ObjectId, int] = {}
        self.suspended: dict[ObjectId, float] = {}
        self._on_change = on_change

    # ---------------------------------------------------------------- FOT

    def __contains__(self, oid: ObjectId) -> bool:
        return oid in self.fot

    def get(self, oid: ObjectId) -> FotEntry:
        """The stored kinematic state of a focal object."""
        return self.fot.get(oid)

    def upsert(self, oid: ObjectId, state: MotionState, max_speed: float) -> FotEntry:
        """Insert or refresh a focal object's state."""
        fresh = oid not in self.fot
        entry = self.fot.upsert(oid, state, max_speed)
        if fresh and self._on_change is not None:
            self._on_change(oid, True)
        return entry

    def update_state(self, oid: ObjectId, state: MotionState) -> None:
        """Replace the stored motion state of a focal object."""
        self.fot.update_state(oid, state)

    def remove(self, oid: ObjectId) -> None:
        """Drop a focal object's state."""
        self.fot.remove(oid)
        if self._on_change is not None:
            self._on_change(oid, False)

    def ids(self) -> Iterator[ObjectId]:
        """Tracked focal object ids."""
        return self.fot.ids()

    # -------------------------------------------------------------- leases

    def enable_leases(self, lease_steps: int) -> None:
        """Arm the soft-state lease machinery."""
        self.lease_steps = lease_steps

    @property
    def leases_enabled(self) -> bool:
        """Whether lease expiry is armed (fault injection only)."""
        return self.lease_steps is not None

    def touch(self, oid: ObjectId, step: int) -> None:
        """Record a sign of life from an object."""
        self.last_heard[oid] = step

    def expired(self, step: int) -> list[ObjectId]:
        """Focal objects whose lease ran out, in ascending id order (the
        explicit sort keeps multi-shard expiry deterministic regardless of
        FOT insertion order)."""
        if self.lease_steps is None:
            return []
        return [
            oid
            for oid in sorted(self.fot.ids())
            if step - self.last_heard.get(oid, 0) > self.lease_steps
        ]

    def mark_suspended(self, oid: ObjectId, max_speed: float) -> None:
        """Remember a suspended focal object's max-speed bound."""
        self.suspended[oid] = max_speed

    def pop_suspended(self, oid: ObjectId) -> float | None:
        """Clear a suspension record; returns the stored max speed."""
        return self.suspended.pop(oid, None)

    def is_suspended(self, oid: ObjectId) -> bool:
        """Whether this focal object's queries are currently suspended."""
        return oid in self.suspended

    # ----------------------------------------------------------- handoff

    def export_state(self, oid: ObjectId) -> tuple:
        """Package one object's tracker state for a cross-shard handoff."""
        entry = self.fot.get(oid) if oid in self.fot else None
        return (entry, self.last_heard.get(oid), self.suspended.get(oid))

    def import_state(self, oid: ObjectId, packed: tuple) -> None:
        """Adopt tracker state exported by another shard's tracker."""
        entry, heard, suspended_speed = packed
        if entry is not None:
            self.upsert(oid, entry.state, entry.max_speed)
        if heard is not None:
            # Keep the fresher of the exported timestamp and any sign of
            # life already recorded here (the uplink that triggered the
            # handoff touches the acquiring shard before the migration).
            mine = self.last_heard.get(oid)
            self.last_heard[oid] = heard if mine is None else max(mine, heard)
        if suspended_speed is not None:
            self.suspended[oid] = suspended_speed

    def evict(self, oid: ObjectId) -> None:
        """Forget one object entirely (its state migrated to another shard)."""
        if oid in self.fot:
            self.remove(oid)
        self.last_heard.pop(oid, None)
        self.suspended.pop(oid, None)
