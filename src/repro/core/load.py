"""Shared load accounting for server-side components.

Server load is measured two ways, as in the paper's "time spent executing
the server side logic per time step":

- ``seconds``: wall-clock time spent inside timed sections, re-entrant
  (nested sections are counted once), with explicit *pauses* for the spans
  that are not server work (e.g. waiting on a client round trip).
- ``ops``: a deterministic abstract operation counter for
  hardware-independent comparisons (and for the differential tests, which
  cannot compare wall-clock values).

Every server component -- the monolithic server, and each shard behind the
coordinator -- charges one :class:`LoadAccount`; per-shard accounts
aggregate without re-implementing the timer-depth bookkeeping that used to
be copy-pasted ``_enter_timed``/``_exit_timed`` pairs.
"""

from __future__ import annotations

import time


class _TimedSection:
    """Context manager entering/leaving an account's timed section."""

    __slots__ = ("account",)

    def __init__(self, account: "LoadAccount") -> None:
        self.account = account

    def __enter__(self) -> "LoadAccount":
        self.account.enter()
        return self.account

    def __exit__(self, *exc_info: object) -> None:
        self.account.exit()


class _PausedSection:
    """Context manager suspending an account's running timed section."""

    __slots__ = ("account",)

    def __init__(self, account: "LoadAccount") -> None:
        self.account = account

    def __enter__(self) -> "LoadAccount":
        self.account.exit()
        return self.account

    def __exit__(self, *exc_info: object) -> None:
        self.account.enter()


class LoadAccount:
    """Re-entrant wall-clock + operation-count accounting for one server.

    ``seconds``/``ops`` accumulate since the last :meth:`reset` (one
    measurement step); ``total_seconds``/``total_ops`` accumulate over the
    account's lifetime and survive resets -- the per-shard load-balance
    report is built from the lifetime totals.
    """

    __slots__ = ("seconds", "ops", "total_seconds", "total_ops", "_depth", "_start")

    def __init__(self) -> None:
        self.seconds = 0.0
        self.ops = 0
        self.total_seconds = 0.0
        self.total_ops = 0
        self._depth = 0
        self._start = 0.0

    def enter(self) -> None:
        """Enter a timed section (re-entrant)."""
        if self._depth == 0:
            self._start = time.perf_counter()
        self._depth += 1

    def exit(self) -> None:
        """Leave a timed section; the outermost exit accumulates."""
        self._depth -= 1
        if self._depth == 0:
            self.seconds += time.perf_counter() - self._start

    def timed(self) -> _TimedSection:
        """``with account.timed(): ...`` -- a timed section."""
        return _TimedSection(self)

    def paused(self) -> _PausedSection:
        """``with account.paused(): ...`` inside a timed section -- a span
        that is *not* server work (e.g. a synchronous client round trip)."""
        return _PausedSection(self)

    def reset(self) -> tuple[float, int]:
        """Return and clear the per-step (seconds, ops) counters."""
        out = (self.seconds, self.ops)
        self.total_seconds += self.seconds
        self.total_ops += self.ops
        self.seconds = 0.0
        self.ops = 0
        return out
