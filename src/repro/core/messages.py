"""Protocol messages between moving objects and the MobiEyes server.

Every message knows its size in bits so the power-consumption experiments
(paper Fig. 9) can account message *sizes* rather than counts.  Field widths
are plain engineering choices (32-bit ids, 32-bit fixed-point coordinates,
compact cell indices); the paper does not publish its exact encoding, and
only the *relative* sizes matter for the reproduced trends.

Uplink messages (object -> server):
    :class:`VelocityChangeReport`, :class:`CellChangeReport`,
    :class:`ResultChangeReport`, :class:`MotionStateResponse`,
    :class:`Heartbeat`, :class:`ResyncRequest`.

Downlink messages (server -> objects, broadcast or one-to-one):
    :class:`QueryInstallBroadcast`, :class:`QueryUpdateBroadcast`,
    :class:`QueryRemoveBroadcast`, :class:`VelocityChangeBroadcast`,
    :class:`FocalRoleNotification`, :class:`QueryInstallList`,
    :class:`MotionStateRequest`, :class:`ResyncResponse`,
    :class:`ResyncDirective`.

:class:`Ack` flows both ways (the receiver of a reliable message
acknowledges it to the sender).

Every message class declares a ``reliable`` flag.  Reliable messages are
the control-plane exchanges that must not silently half-complete (query
installation round trips, role notifications, and the recovery protocol);
under the plain :class:`~repro.network.loss.LossModel` they are simply
exempt from loss, while the fault-injection stack
(:mod:`repro.faults`) delivers them through a real ack/retransmit loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

from repro.geometry import Shape
from repro.grid import CellIndex, CellRange
from repro.mobility.model import MotionState, ObjectId
from repro.core.query import QueryFilter, QueryId

# Field widths in bits.
BITS_HEADER = 64
BITS_OID = 32
BITS_QID = 32
BITS_COORD = 32
BITS_TIME = 32
BITS_CELL = 32  # packed (i, j)
BITS_RADIUS = 32
BITS_FILTER = 32
BITS_BOOL = 8  # byte-aligned flag
BITS_SEQ = 32  # per-receiver message sequence number
BITS_MOTION_STATE = 4 * BITS_COORD + BITS_TIME  # pos + vel + timestamp
BITS_CELL_RANGE = 2 * BITS_CELL  # (lo_i, lo_j) .. (hi_i, hi_j)


# Per-record wire sizes of the three high-volume report kinds.  The batched
# columnar path (``UplinkReportBatch``) charges the ledger record by record
# with these, so batching never changes a byte of the size accounting.


def velocity_change_bits() -> int:
    """Wire size of one velocity-change record in bits."""
    return BITS_HEADER + BITS_OID + BITS_MOTION_STATE


def cell_change_bits(has_state: bool) -> int:
    """Wire size of one cell-change record in bits."""
    bits = BITS_HEADER + BITS_OID + 2 * BITS_CELL
    if has_state:
        bits += BITS_MOTION_STATE
    return bits


def result_change_bits(n_changes: int) -> int:
    """Wire size of one result-change record carrying ``n_changes`` flags."""
    n = max(1, n_changes)
    bitmap_bits = ((n + 7) // 8) * 8
    return BITS_HEADER + BITS_OID + BITS_QID + bitmap_bits


# Record kinds of the columnar report pipeline (ReportBuffer /
# UplinkReportBatch column ``kind``).
REC_RESULT = 0
REC_CELL = 1
REC_VELOCITY = 2

# Ledger type names per record kind: a batched record is charged under the
# same name the equivalent dataclass message would have been.
REC_KIND_NAMES = ("ResultChangeReport", "CellChangeReport", "VelocityChangeReport")


@dataclass(frozen=True, slots=True)
class QueryDescriptor:
    """The per-query payload shipped inside install/update broadcasts.

    For *static* queries (fixed region, no focal object) ``oid`` and
    ``focal_state`` are ``None`` and the focal fields are not shipped.
    """

    qid: QueryId
    oid: ObjectId | None
    region: Shape
    filter: QueryFilter
    focal_state: MotionState | None
    focal_max_speed: float
    mon_region: CellRange

    @property
    def is_static(self) -> bool:
        """Whether this is a static (fixed-region) query."""
        return self.oid is None

    @property
    def bits(self) -> int:
        """Wire size of this message in bits."""
        bits = BITS_QID + BITS_RADIUS + BITS_FILTER + BITS_CELL_RANGE
        if not self.is_static:
            bits += BITS_OID + BITS_MOTION_STATE + BITS_COORD  # + focal max speed
        else:
            bits += 2 * BITS_COORD  # absolute region anchor
        return bits


# ------------------------------------------------------------------ uplink


@dataclass(frozen=True, slots=True)
class VelocityChangeReport:
    """Focal object -> server: significant velocity-vector change."""

    reliable: ClassVar[bool] = False

    oid: ObjectId
    state: MotionState

    @property
    def bits(self) -> int:
        """Wire size of this message in bits."""
        return velocity_change_bits()


@dataclass(frozen=True, slots=True)
class CellChangeReport:
    """Object -> server: it crossed into a new grid cell.

    Focal objects include their motion state so the server can refresh the
    FOT without a round trip.
    """

    reliable: ClassVar[bool] = False

    oid: ObjectId
    prev_cell: CellIndex
    new_cell: CellIndex
    state: MotionState | None = None

    @property
    def bits(self) -> int:
        """Wire size of this message in bits."""
        return cell_change_bits(self.state is not None)


@dataclass(frozen=True, slots=True)
class ResultChangeReport:
    """Object -> server: differential query-result update.

    ``changes`` maps query id -> whether the sender is now a target.  With
    query grouping enabled a single report carries the whole *query bitmap*
    of a group sharing one focal object; without grouping each report holds
    a single query's flag.

    ``epoch`` is the sender's report generation: the server bumps it when
    it purges the object during a resync, so a report that was still in
    flight when the purge happened (possible only under modeled delivery
    latency) arrives with a stale epoch and is discarded instead of
    resurrecting a purged membership.  It occupies the per-message
    sequence slot already budgeted inside ``BITS_HEADER``.
    """

    reliable: ClassVar[bool] = False

    oid: ObjectId
    changes: dict[QueryId, bool] = field(default_factory=dict)
    epoch: int = 0

    @property
    def bits(self) -> int:
        # One qid identifies the group (or the query); the remaining
        # queries of a group cost one bitmap bit each, rounded up to bytes.
        """Wire size of this message in bits."""
        return result_change_bits(len(self.changes))


@dataclass(frozen=True, slots=True)
class MotionStateResponse:
    """Object -> server: reply to a :class:`MotionStateRequest`."""

    reliable: ClassVar[bool] = True

    oid: ObjectId
    state: MotionState
    max_speed: float

    @property
    def bits(self) -> int:
        """Wire size of this message in bits."""
        return BITS_HEADER + BITS_OID + BITS_MOTION_STATE + BITS_COORD


@dataclass(frozen=True, slots=True)
class Heartbeat:
    """Object -> server: liveness probe and soft-state lease renewal.

    Sent (reliably) by every object after ``heartbeat_steps`` steps without
    an acknowledged uplink; a failed heartbeat is how an object learns it is
    partitioned from the server.
    """

    reliable: ClassVar[bool] = True

    oid: ObjectId

    @property
    def bits(self) -> int:
        """Wire size of this message in bits."""
        return BITS_HEADER + BITS_OID


@dataclass(frozen=True, slots=True)
class ResyncRequest:
    """Object -> server: I may have missed downlink traffic; resync me.

    Carries the object's current cell and motion state so the server can
    refresh (or reinstate) its focal-object record without a second round
    trip.
    """

    reliable: ClassVar[bool] = True

    oid: ObjectId
    cell: CellIndex
    state: MotionState
    max_speed: float

    @property
    def bits(self) -> int:
        """Wire size of this message in bits."""
        return BITS_HEADER + BITS_OID + BITS_CELL + BITS_MOTION_STATE + BITS_COORD


class UplinkReportBatch:
    """One envelope's worth of batched report records, struct-of-arrays.

    The columnar report pipeline groups the high-volume uplink reports
    (:class:`ResultChangeReport`, :class:`CellChangeReport`,
    :class:`VelocityChangeReport`) flushed in one step by (delivery step,
    sender cell) and ships each group as a single envelope carrying these
    parallel columns instead of N dataclasses.  Per-record semantics are
    unchanged: every record keeps its own sender oid (the ``oid`` column)
    and transport sequence number (``seq``), the ledger is charged record
    by record with the exact per-record sizes (:meth:`bits_of`), and the
    receiving server applies records through the same column layout the
    client-side :class:`~repro.core.reporting.ReportBuffer` accumulates.

    Result-change flags are flattened: record ``i`` owns the slice
    ``qid_flat[qid_lo[i]:qid_hi[i]]`` / ``flag_flat[...]``.
    """

    reliable: ClassVar[bool] = False

    __slots__ = (
        "kind",
        "oid",
        "epoch",
        "prev_i",
        "prev_j",
        "new_i",
        "new_j",
        "state",
        "qid_lo",
        "qid_hi",
        "qid_flat",
        "flag_flat",
        "seq",
    )

    def __init__(self) -> None:
        self.kind: list[int] = []
        self.oid: list[ObjectId] = []
        self.epoch: list[int] = []
        self.prev_i: list[int] = []
        self.prev_j: list[int] = []
        self.new_i: list[int] = []
        self.new_j: list[int] = []
        self.state: list[MotionState | None] = []
        self.qid_lo: list[int] = []
        self.qid_hi: list[int] = []
        self.qid_flat: list[QueryId] = []
        self.flag_flat: list[bool] = []
        self.seq: list[int] = []

    @property
    def count(self) -> int:
        """Number of report records carried by this batch."""
        return len(self.kind)

    def bits_of(self, i: int) -> int:
        """Wire size of record ``i`` -- identical to the bits the
        equivalent per-record dataclass message would report."""
        kind = self.kind[i]
        if kind == REC_RESULT:
            return result_change_bits(self.qid_hi[i] - self.qid_lo[i])
        if kind == REC_CELL:
            return cell_change_bits(self.state[i] is not None)
        return velocity_change_bits()

    @property
    def bits(self) -> int:
        """Wire size of the whole batch: the sum of its records' sizes."""
        return sum(self.bits_of(i) for i in range(len(self.kind)))


# ---------------------------------------------------------------- downlink


@dataclass(frozen=True, slots=True)
class QueryInstallBroadcast:
    """Server -> monitoring region: install these queries.

    Carries one or more query descriptors (more than one when server-side
    grouping bundles queries sharing a focal object and monitoring region).
    """

    reliable: ClassVar[bool] = False

    queries: tuple[QueryDescriptor, ...]

    @property
    def bits(self) -> int:
        """Wire size of this message in bits."""
        return BITS_HEADER + sum(q.bits for q in self.queries)


@dataclass(frozen=True, slots=True)
class QueryUpdateBroadcast:
    """Server -> old+new monitoring region: a focal object changed cells.

    Receivers inside the new monitoring region (re)install / refresh the
    queries; receivers outside drop them.
    """

    reliable: ClassVar[bool] = False

    queries: tuple[QueryDescriptor, ...]

    @property
    def bits(self) -> int:
        """Wire size of this message in bits."""
        return BITS_HEADER + sum(q.bits for q in self.queries)


@dataclass(frozen=True, slots=True)
class QueryRemoveBroadcast:
    """Server -> monitoring region: these queries were uninstalled."""

    reliable: ClassVar[bool] = False

    qids: tuple[QueryId, ...]

    @property
    def bits(self) -> int:
        """Wire size of this message in bits."""
        return BITS_HEADER + BITS_QID * len(self.qids)


@dataclass(frozen=True, slots=True)
class VelocityChangeBroadcast:
    """Server -> monitoring region: fresh focal motion state.

    Under *eager* propagation only ``(qids, oid, state)`` are needed --
    receivers already hold the query descriptors.  Under *lazy* propagation
    the broadcast is expanded with the full descriptors so objects that
    entered the monitoring region since the last broadcast can install the
    queries they missed.
    """

    reliable: ClassVar[bool] = False

    oid: ObjectId
    state: MotionState
    qids: tuple[QueryId, ...]
    descriptors: tuple[QueryDescriptor, ...] = ()

    @property
    def bits(self) -> int:
        """Wire size of this message in bits."""
        bits = BITS_HEADER + BITS_OID + BITS_MOTION_STATE + BITS_QID * len(self.qids)
        bits += sum(d.bits for d in self.descriptors)
        return bits


@dataclass(frozen=True, slots=True)
class FocalRoleNotification:
    """Server -> one object: you are (no longer) a focal object (hasMQ)."""

    reliable: ClassVar[bool] = True

    oid: ObjectId
    has_mq: bool

    @property
    def bits(self) -> int:
        """Wire size of this message in bits."""
        return BITS_HEADER + BITS_OID + BITS_BOOL


@dataclass(frozen=True, slots=True)
class QueryInstallList:
    """Server -> one object: queries to install after its cell change (EQP)."""

    reliable: ClassVar[bool] = False

    oid: ObjectId
    queries: tuple[QueryDescriptor, ...]

    @property
    def bits(self) -> int:
        """Wire size of this message in bits."""
        return BITS_HEADER + BITS_OID + sum(q.bits for q in self.queries)


@dataclass(frozen=True, slots=True)
class MotionStateRequest:
    """Server -> one object: send me your position and velocity."""

    reliable: ClassVar[bool] = True

    oid: ObjectId

    @property
    def bits(self) -> int:
        """Wire size of this message in bits."""
        return BITS_HEADER + BITS_OID


@dataclass(frozen=True, slots=True)
class ResyncResponse:
    """Server -> one object: full recovery state after a :class:`ResyncRequest`.

    Carries the descriptors of every query whose monitoring region covers
    the object's reported cell, plus the authoritative focal-role flag; the
    object rebuilds its LQT from scratch from this message.
    """

    reliable: ClassVar[bool] = True

    oid: ObjectId
    queries: tuple[QueryDescriptor, ...]
    has_mq: bool
    # The object's new report epoch (see ResultChangeReport.epoch); rides
    # the header's sequence slot, so it adds no wire bits.
    epoch: int = 0

    @property
    def bits(self) -> int:
        """Wire size of this message in bits."""
        return BITS_HEADER + BITS_OID + BITS_BOOL + sum(q.bits for q in self.queries)


@dataclass(frozen=True, slots=True)
class ResyncDirective:
    """Server -> monitoring region: state may have been lost; resync now.

    Broadcast after a crashed server shard is rebuilt from its checkpoint:
    any soft state the shard accumulated since that checkpoint (and every
    uplink in flight to it) is gone, and the affected objects cannot sense
    a *server*-side failure through carrier sensing.  Receivers simply set
    their resync flag and run the ordinary :class:`ResyncRequest` /
    :class:`ResyncResponse` recovery round trip.

    The directive is deliberately unreliable -- it is a hint, not state.
    An object that misses it recovers through the existing seq-gap and
    heartbeat paths.
    """

    reliable: ClassVar[bool] = False

    @property
    def bits(self) -> int:
        """Wire size of this message in bits."""
        return BITS_HEADER


@dataclass(frozen=True, slots=True)
class RebalanceDirective:
    """Server -> whole grid: the partition map changed; re-resolve routes.

    Broadcast after the coordinator moves a column span between shards
    (:meth:`~repro.core.coordinator.Coordinator.apply_rebalance`).  Clients
    record the advertised partition epoch; any uplink already in flight
    that was routed under an older epoch is re-resolved by the server-side
    transport at delivery time (stale-epoch reroute), so nothing is
    dropped and the directive stays a hint rather than state.

    Like :class:`ResyncDirective` the directive is unreliable -- a client
    that misses it keeps stamping the old epoch, and those uplinks are
    simply rerouted until the next directive lands.
    """

    reliable: ClassVar[bool] = False

    # The partition epoch after the repartition.  Rides the header's
    # sequence slot budget-wise, plus one explicit epoch field.
    epoch: int = 0

    @property
    def bits(self) -> int:
        """Wire size of this message in bits."""
        return BITS_HEADER + BITS_SEQ


# --------------------------------------------------------------- both ways


@dataclass(frozen=True, slots=True)
class Ack:
    """Acknowledgement of a reliable message, echoing its sequence number.

    Travels opposite to the message it acknowledges (uplink acks flow down,
    downlink acks flow up).  Acks themselves are *not* reliable: a lost ack
    simply triggers a retransmission of the original message.
    """

    reliable: ClassVar[bool] = False

    oid: ObjectId
    seq: int

    @property
    def bits(self) -> int:
        """Wire size of this message in bits."""
        return BITS_HEADER + BITS_OID + BITS_SEQ


UplinkMessage = (
    VelocityChangeReport
    | CellChangeReport
    | ResultChangeReport
    | MotionStateResponse
    | Heartbeat
    | ResyncRequest
    | Ack
)
DownlinkMessage = (
    QueryInstallBroadcast
    | QueryUpdateBroadcast
    | QueryRemoveBroadcast
    | VelocityChangeBroadcast
    | FocalRoleNotification
    | QueryInstallList
    | MotionStateRequest
    | ResyncResponse
    | ResyncDirective
    | RebalanceDirective
    | Ack
)
