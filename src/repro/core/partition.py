"""Deterministic grid-cell partitioning for the sharded server.

The coordinator splits the grid into ``num_shards`` contiguous column
stripes; :meth:`GridPartitioner.shard_of_cell` is the deterministic
"grid hash" mapping any cell index to the shard that owns it.  Contiguity
matters: a monitoring region (always a rectangular :class:`CellRange`)
intersects a contiguous span of shards, and each shard's portion of it is
itself a rectangular range, so RQI registrations and broadcast splits stay
range-shaped instead of exploding into per-cell sets.

A requested shard count larger than the number of grid columns is clamped
(an empty shard would never receive any routed traffic); the effective
count is what :attr:`num_shards` reports.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.grid import CellIndex, CellRange, Grid


class GridPartitioner:
    """Deterministic cell -> shard mapping over contiguous column stripes."""

    def __init__(self, grid: Grid, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be at least 1, got {num_shards}")
        self.grid = grid
        self.num_shards = min(num_shards, grid.n_cols)
        # Stripe boundaries: shard s owns columns [bounds[s], bounds[s+1]).
        self._bounds = [s * grid.n_cols // self.num_shards for s in range(self.num_shards)]
        self._bounds.append(grid.n_cols)

    def shard_of_cell(self, cell: CellIndex) -> int:
        """The shard owning a grid cell (pure function of the column)."""
        i = min(max(cell[0], 0), self.grid.n_cols - 1)
        return bisect_right(self._bounds, i) - 1

    def columns_of(self, shard: int) -> tuple[int, int]:
        """The inclusive column span ``(lo, hi)`` owned by a shard."""
        return (self._bounds[shard], self._bounds[shard + 1] - 1)

    def cells_of(self, shard: int) -> CellRange:
        """Every grid cell owned by a shard, as a rectangular range."""
        lo, hi = self.columns_of(shard)
        return CellRange(lo, hi, 0, self.grid.n_rows - 1)

    def owns(self, shard: int, cell: CellIndex) -> bool:
        """Whether ``shard`` owns ``cell``."""
        lo, hi = self.columns_of(shard)
        return lo <= cell[0] <= hi and 0 <= cell[1] <= self.grid.n_rows - 1

    def shards_of_region(self, region: CellRange) -> range:
        """The contiguous span of shard ids a cell range intersects."""
        first = self.shard_of_cell((region.lo_i, region.lo_j))
        last = self.shard_of_cell((region.hi_i, region.lo_j))
        return range(first, last + 1)

    def clip(self, region: CellRange, shard: int) -> CellRange | None:
        """A shard's rectangular portion of a cell range (None if disjoint)."""
        lo, hi = self.columns_of(shard)
        lo_i = max(region.lo_i, lo)
        hi_i = min(region.hi_i, hi)
        if lo_i > hi_i:
            return None
        return CellRange(lo_i, hi_i, region.lo_j, region.hi_j)

    def split(self, region: CellRange) -> list[tuple[int, CellRange]]:
        """``(shard, portion)`` pairs covering a range, in shard order."""
        out: list[tuple[int, CellRange]] = []
        for shard in self.shards_of_region(region):
            portion = self.clip(region, shard)
            if portion is not None:
                out.append((shard, portion))
        return out
