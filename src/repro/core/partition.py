"""Epoch-versioned grid-cell partitioning for the sharded server.

The coordinator splits the grid into ``num_shards`` contiguous column
stripes; :meth:`PartitionMap.shard_of_cell` is the deterministic
"grid hash" mapping any cell index to the shard that owns it.  Contiguity
matters: a monitoring region (always a rectangular :class:`CellRange`)
intersects a contiguous span of shards, and each shard's portion of it is
itself a rectangular range, so RQI registrations and broadcast splits stay
range-shaped instead of exploding into per-cell sets.

Unlike the original frozen ``GridPartitioner`` this map is *mutable*: the
stripe boundaries can shift at runtime (:meth:`transfer`,
:meth:`split_stripe`, :meth:`merge_stripes`) while the shard count stays
fixed for the life of the system -- rebalancing moves column spans between
existing shards rather than spawning new ones, so every layer holding a
``shards`` list (coordinator, executors, checkpoints) keeps stable indices.
A stripe may become *empty* (its two boundaries coincide); ``bisect_right``
then never maps a cell to it and ``clip``/``split`` skip it, so an emptied
shard simply stops receiving routed traffic until a later transfer refills
it.

Every mutation increments :attr:`epoch`, the version number threaded
through uplink envelopes and client directives: a message stamped with an
older epoch was routed under a boundary layout that may no longer hold, and
the transport re-resolves its destination at delivery time instead of
trusting the stale route.

A requested shard count larger than the number of grid columns is clamped
(an empty shard would never receive any routed traffic); the effective
count is what :attr:`num_shards` reports.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.grid import CellIndex, CellRange, Grid


class PartitionMap:
    """Mutable, epoch-versioned cell -> shard map over contiguous column
    stripes."""

    def __init__(self, grid: Grid, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be at least 1, got {num_shards}")
        self.grid = grid
        self.num_shards = min(num_shards, grid.n_cols)
        # Stripe boundaries: shard s owns columns [bounds[s], bounds[s+1]).
        self._bounds = [s * grid.n_cols // self.num_shards for s in range(self.num_shards)]
        self._bounds.append(grid.n_cols)
        self.epoch = 0

    # ------------------------------------------------------------------
    # Read API (unchanged from the frozen partitioner)
    # ------------------------------------------------------------------

    def shard_of_cell(self, cell: CellIndex) -> int:
        """The shard owning a grid cell (pure function of the column)."""
        i = min(max(cell[0], 0), self.grid.n_cols - 1)
        return bisect_right(self._bounds, i) - 1

    def columns_of(self, shard: int) -> tuple[int, int]:
        """The inclusive column span ``(lo, hi)`` owned by a shard.

        An empty stripe reports ``hi == lo - 1``.
        """
        return (self._bounds[shard], self._bounds[shard + 1] - 1)

    def width_of(self, shard: int) -> int:
        """How many columns a shard owns (0 for an emptied stripe)."""
        return self._bounds[shard + 1] - self._bounds[shard]

    def cells_of(self, shard: int) -> CellRange:
        """Every grid cell owned by a shard, as a rectangular range.

        Raises ``ValueError`` for an emptied stripe (there is no non-empty
        range to return); check :meth:`width_of` first when a stripe may
        have been drained by rebalancing.
        """
        lo, hi = self.columns_of(shard)
        return CellRange(lo, hi, 0, self.grid.n_rows - 1)

    def owns(self, shard: int, cell: CellIndex) -> bool:
        """Whether ``shard`` owns ``cell``."""
        lo, hi = self.columns_of(shard)
        return lo <= cell[0] <= hi and 0 <= cell[1] <= self.grid.n_rows - 1

    def shards_of_region(self, region: CellRange) -> range:
        """The contiguous span of shard ids a cell range intersects.

        The span may include emptied stripes sandwiched between the
        endpoints' owners; their :meth:`clip` is ``None`` and
        :meth:`split` skips them.
        """
        first = self.shard_of_cell((region.lo_i, region.lo_j))
        last = self.shard_of_cell((region.hi_i, region.lo_j))
        return range(first, last + 1)

    def clip(self, region: CellRange, shard: int) -> CellRange | None:
        """A shard's rectangular portion of a cell range (None if disjoint)."""
        lo, hi = self.columns_of(shard)
        lo_i = max(region.lo_i, lo)
        hi_i = min(region.hi_i, hi)
        if lo_i > hi_i:
            return None
        return CellRange(lo_i, hi_i, region.lo_j, region.hi_j)

    def split(self, region: CellRange) -> list[tuple[int, CellRange]]:
        """``(shard, portion)`` pairs covering a range, in shard order."""
        out: list[tuple[int, CellRange]] = []
        for shard in self.shards_of_region(region):
            portion = self.clip(region, shard)
            if portion is not None:
                out.append((shard, portion))
        return out

    # ------------------------------------------------------------------
    # Mutation API (each effective change bumps the epoch)
    # ------------------------------------------------------------------

    @property
    def bounds(self) -> tuple[int, ...]:
        """The boundary list as an immutable snapshot (for checkpoints)."""
        return tuple(self._bounds)

    def restore_state(self, bounds: tuple[int, ...], epoch: int) -> None:
        """Adopt a checkpointed boundary layout and epoch wholesale."""
        if len(bounds) != self.num_shards + 1:
            raise ValueError(
                f"bounds length {len(bounds)} does not fit {self.num_shards} shards"
            )
        if bounds[0] != 0 or bounds[-1] != self.grid.n_cols:
            raise ValueError(f"bounds {bounds} do not span the grid")
        if any(bounds[s] > bounds[s + 1] for s in range(self.num_shards)):
            raise ValueError(f"bounds {bounds} are not monotone")
        self._bounds = list(bounds)
        self.epoch = epoch

    def transfer(self, src: int, dst: int, cols: int) -> int:
        """Move up to ``cols`` columns from ``src``'s edge into the adjacent
        shard ``dst``; returns how many columns actually moved.

        The move clamps to ``src``'s current width (possibly emptying it)
        and is a no-op -- no epoch bump -- when ``src`` is already empty or
        ``cols`` is zero.  Only index-adjacent shards can trade columns:
        that is what keeps every stripe a contiguous column range.
        """
        if not 0 <= src < self.num_shards or not 0 <= dst < self.num_shards:
            raise ValueError(f"shard out of range: transfer({src}, {dst})")
        if abs(src - dst) != 1:
            raise ValueError(f"shards must be adjacent: transfer({src}, {dst})")
        if cols < 0:
            raise ValueError(f"cols must be non-negative, got {cols}")
        moved = min(cols, self.width_of(src))
        if moved == 0:
            return 0
        if dst == src + 1:
            # src donates its rightmost columns.
            self._bounds[src + 1] -= moved
        else:
            # src donates its leftmost columns.
            self._bounds[src] += moved
        self.epoch += 1
        return moved

    def split_stripe(self, shard: int, at: int | None = None) -> int:
        """Split a hot stripe: donate its right part to the right neighbor.

        Columns ``[at, hi]`` move to ``shard + 1``; the default split point
        is the midpoint (right half moves, the left majority stays for odd
        widths).  Returns the number of columns moved (0 when the stripe is
        too narrow to split).
        """
        if not 0 <= shard < self.num_shards - 1:
            raise ValueError(f"no right neighbor to receive a split of shard {shard}")
        lo, hi_excl = self._bounds[shard], self._bounds[shard + 1]
        if at is None:
            moved = (hi_excl - lo) // 2
        else:
            if not lo <= at <= hi_excl:
                raise ValueError(f"split point {at} outside stripe [{lo}, {hi_excl})")
            moved = hi_excl - at
        return self.transfer(shard, shard + 1, moved)

    def merge_stripes(self, shard: int, into: int) -> int:
        """Merge a cold stripe: drain every column of ``shard`` into the
        adjacent shard ``into``, leaving ``shard`` empty.  Returns the
        number of columns moved."""
        return self.transfer(shard, into, self.width_of(shard))


# The original frozen partitioner's name, kept as an alias: every layer that
# type-annotates or constructs a ``GridPartitioner`` keeps working, and the
# semantics are identical until someone calls a mutation method.
GridPartitioner = PartitionMap
