"""Epoch-versioned grid-cell partitioning for the sharded server.

The coordinator splits the grid into contiguous column stripes;
:meth:`PartitionMap.shard_of_cell` is the deterministic "grid hash"
mapping any cell index to the shard that owns it.  Contiguity matters: a
monitoring region (always a rectangular :class:`CellRange`) intersects a
contiguous span of stripes, and each shard's portion of it is itself a
rectangular range, so RQI registrations and broadcast splits stay
range-shaped instead of exploding into per-cell sets.

Unlike the original frozen ``GridPartitioner`` this map is *mutable*: the
stripe boundaries can shift at runtime (:meth:`transfer`,
:meth:`split_stripe`, :meth:`merge_stripes`), and -- new with the elastic
service runtime -- the stripe *count* can change too.  Shard ids are
**stable names**, not positions: the map keeps an explicit left-to-right
``order`` of shard ids alongside the boundary list, so every layer that
holds per-shard state keyed by id (coordinator directories, reliability
sequence streams, checkpoints) survives a stripe being inserted
(:meth:`insert_stripe`) or removed (:meth:`remove_stripe`) without any
renumbering.  While no stripe has ever been inserted or removed the order
is the identity permutation and ids coincide with positions exactly as
before.

A stripe may become *empty* (its two boundaries coincide);
``bisect_right`` then never maps a cell to it and ``clip``/``split`` skip
it, so an emptied shard simply stops receiving routed traffic until a
later transfer refills it -- or until :meth:`remove_stripe` retires it.

Every mutation that changes a cell's owner increments :attr:`epoch`, the
version number threaded through uplink envelopes and client directives: a
message stamped with an older epoch was routed under a boundary layout
that may no longer hold, and the transport re-resolves its destination at
delivery time instead of trusting the stale route.  Inserting or removing
a zero-width stripe moves no cells and therefore does *not* bump the
epoch; the transfer that fills (or drained) the stripe is the epoch
event.

A requested shard count larger than the number of grid columns is clamped
(an empty shard would never receive any routed traffic); the effective
count is what :attr:`num_shards` reports.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.grid import CellIndex, CellRange, Grid


class PartitionMap:
    """Mutable, epoch-versioned cell -> shard map over contiguous column
    stripes with stable shard ids."""

    def __init__(self, grid: Grid, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be at least 1, got {num_shards}")
        self.grid = grid
        count = min(num_shards, grid.n_cols)
        # Stripe boundaries by *position*: the stripe at position p owns
        # columns [bounds[p], bounds[p+1]), and order[p] names the shard id
        # that stripe belongs to.
        self._bounds = [p * grid.n_cols // count for p in range(count)]
        self._bounds.append(grid.n_cols)
        self._order = list(range(count))
        self._pos = {sid: p for p, sid in enumerate(self._order)}
        self.epoch = 0

    # ------------------------------------------------------------------
    # Identity: positions vs. stable shard ids
    # ------------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        """How many live stripes the map currently has."""
        return len(self._order)

    @property
    def order(self) -> tuple[int, ...]:
        """Shard ids in left-to-right stripe order (for checkpoints and
        position-based policies)."""
        return tuple(self._order)

    def is_live(self, shard: int) -> bool:
        """Whether a shard id currently owns a stripe in the map."""
        return shard in self._pos

    def position_of(self, shard: int) -> int:
        """The left-to-right stripe position of a live shard id."""
        try:
            return self._pos[shard]
        except KeyError:
            raise ValueError(f"shard {shard} has no stripe in the partition map")

    # ------------------------------------------------------------------
    # Read API (unchanged semantics; all shard arguments are stable ids)
    # ------------------------------------------------------------------

    def shard_of_cell(self, cell: CellIndex) -> int:
        """The shard owning a grid cell (pure function of the column)."""
        i = min(max(cell[0], 0), self.grid.n_cols - 1)
        return self._order[bisect_right(self._bounds, i) - 1]

    def columns_of(self, shard: int) -> tuple[int, int]:
        """The inclusive column span ``(lo, hi)`` owned by a shard.

        An empty stripe reports ``hi == lo - 1``.
        """
        p = self.position_of(shard)
        return (self._bounds[p], self._bounds[p + 1] - 1)

    def width_of(self, shard: int) -> int:
        """How many columns a shard owns (0 for an emptied stripe)."""
        p = self.position_of(shard)
        return self._bounds[p + 1] - self._bounds[p]

    def cells_of(self, shard: int) -> CellRange:
        """Every grid cell owned by a shard, as a rectangular range.

        Raises ``ValueError`` for an emptied stripe (there is no non-empty
        range to return); check :meth:`width_of` first when a stripe may
        have been drained by rebalancing.
        """
        lo, hi = self.columns_of(shard)
        return CellRange(lo, hi, 0, self.grid.n_rows - 1)

    def owns(self, shard: int, cell: CellIndex) -> bool:
        """Whether ``shard`` owns ``cell``."""
        lo, hi = self.columns_of(shard)
        return lo <= cell[0] <= hi and 0 <= cell[1] <= self.grid.n_rows - 1

    def shards_of_region(self, region: CellRange) -> list[int]:
        """The shard ids a cell range intersects, in stripe order.

        The span may include emptied stripes sandwiched between the
        endpoints' owners; their :meth:`clip` is ``None`` and
        :meth:`split` skips them.
        """
        first = self._pos[self.shard_of_cell((region.lo_i, region.lo_j))]
        last = self._pos[self.shard_of_cell((region.hi_i, region.lo_j))]
        return self._order[first : last + 1]

    def clip(self, region: CellRange, shard: int) -> CellRange | None:
        """A shard's rectangular portion of a cell range (None if disjoint)."""
        lo, hi = self.columns_of(shard)
        lo_i = max(region.lo_i, lo)
        hi_i = min(region.hi_i, hi)
        if lo_i > hi_i:
            return None
        return CellRange(lo_i, hi_i, region.lo_j, region.hi_j)

    def split(self, region: CellRange) -> list[tuple[int, CellRange]]:
        """``(shard, portion)`` pairs covering a range, in stripe order."""
        out: list[tuple[int, CellRange]] = []
        for shard in self.shards_of_region(region):
            portion = self.clip(region, shard)
            if portion is not None:
                out.append((shard, portion))
        return out

    # ------------------------------------------------------------------
    # Mutation API (each effective ownership change bumps the epoch)
    # ------------------------------------------------------------------

    @property
    def bounds(self) -> tuple[int, ...]:
        """The boundary list as an immutable snapshot (for checkpoints)."""
        return tuple(self._bounds)

    def restore_state(
        self,
        bounds: tuple[int, ...],
        epoch: int,
        order: tuple[int, ...] | None = None,
    ) -> None:
        """Adopt a checkpointed boundary layout, epoch, and stripe order
        wholesale.  ``order`` defaults to the identity permutation (every
        checkpoint written before stripes could be inserted or removed);
        omitting it also pins the stripe count to the map's current count,
        exactly as the pre-elastic restore validated."""
        if order is None:
            if len(bounds) != self.num_shards + 1:
                raise ValueError(
                    f"bounds length {len(bounds)} does not fit {self.num_shards} shards"
                )
            order = tuple(range(len(bounds) - 1))
        if len(bounds) != len(order) + 1:
            raise ValueError(
                f"bounds length {len(bounds)} does not fit {len(order)} stripes"
            )
        if len(bounds) < 2:
            raise ValueError("a partition map needs at least one stripe")
        if bounds[0] != 0 or bounds[-1] != self.grid.n_cols:
            raise ValueError(f"bounds {bounds} do not span the grid")
        if any(bounds[p] > bounds[p + 1] for p in range(len(order))):
            raise ValueError(f"bounds {bounds} are not monotone")
        if len(set(order)) != len(order) or any(sid < 0 for sid in order):
            raise ValueError(f"order {order} is not a set of distinct shard ids")
        self._bounds = list(bounds)
        self._order = list(order)
        self._pos = {sid: p for p, sid in enumerate(self._order)}
        self.epoch = epoch

    def transfer(self, src: int, dst: int, cols: int) -> int:
        """Move up to ``cols`` columns from ``src``'s edge into the adjacent
        shard ``dst``; returns how many columns actually moved.

        The move clamps to ``src``'s current width (possibly emptying it)
        and is a no-op -- no epoch bump -- when ``src`` is already empty or
        ``cols`` is zero.  Only stripe-adjacent shards can trade columns:
        that is what keeps every stripe a contiguous column range.
        """
        if not self.is_live(src) or not self.is_live(dst):
            raise ValueError(f"shard out of range: transfer({src}, {dst})")
        ps, pd = self._pos[src], self._pos[dst]
        if abs(ps - pd) != 1:
            raise ValueError(f"shards must be adjacent: transfer({src}, {dst})")
        if cols < 0:
            raise ValueError(f"cols must be non-negative, got {cols}")
        moved = min(cols, self._bounds[ps + 1] - self._bounds[ps])
        if moved == 0:
            return 0
        if pd == ps + 1:
            # src donates its rightmost columns.
            self._bounds[ps + 1] -= moved
        else:
            # src donates its leftmost columns.
            self._bounds[ps] += moved
        self.epoch += 1
        return moved

    def split_stripe(self, shard: int, at: int | None = None) -> int:
        """Split a hot stripe: donate its right part to the right neighbor.

        Columns ``[at, hi]`` move to the stripe immediately to the right;
        the default split point is the midpoint (right half moves, the left
        majority stays for odd widths).  Returns the number of columns
        moved (0 when the stripe is too narrow to split).
        """
        p = self.position_of(shard)
        if p >= len(self._order) - 1:
            raise ValueError(f"no right neighbor to receive a split of shard {shard}")
        lo, hi_excl = self._bounds[p], self._bounds[p + 1]
        if at is None:
            moved = (hi_excl - lo) // 2
        else:
            if not lo <= at <= hi_excl:
                raise ValueError(f"split point {at} outside stripe [{lo}, {hi_excl})")
            moved = hi_excl - at
        return self.transfer(shard, self._order[p + 1], moved)

    def merge_stripes(self, shard: int, into: int) -> int:
        """Merge a cold stripe: drain every column of ``shard`` into the
        adjacent shard ``into``, leaving ``shard`` empty.  Returns the
        number of columns moved."""
        return self.transfer(shard, into, self.width_of(shard))

    # ------------------------------------------------------------------
    # Elastic stripe lifecycle (no epoch bump: zero-width edits move no
    # cells; the transfers that fill or drain the stripe are the epoch
    # events)
    # ------------------------------------------------------------------

    def insert_stripe(self, after: int, new_id: int) -> None:
        """Insert a zero-width stripe owned by ``new_id`` immediately to
        the right of live shard ``after``.  The new stripe owns no columns
        until a subsequent :meth:`transfer` (or :meth:`split_stripe` of
        its neighbor) fills it."""
        if new_id < 0:
            raise ValueError(f"shard ids must be non-negative, got {new_id}")
        if self.is_live(new_id):
            raise ValueError(f"shard {new_id} already owns a stripe")
        p = self.position_of(after)
        self._bounds.insert(p + 1, self._bounds[p + 1])
        self._order.insert(p + 1, new_id)
        self._pos = {sid: q for q, sid in enumerate(self._order)}

    def remove_stripe(self, shard: int) -> None:
        """Retire an *empty* stripe from the map.  Drain it first with
        :meth:`merge_stripes`; removing a stripe that still owns columns
        is an error, never a silent data loss."""
        if self.num_shards == 1:
            raise ValueError("cannot remove the last stripe")
        p = self.position_of(shard)
        if self._bounds[p + 1] - self._bounds[p] != 0:
            raise ValueError(
                f"stripe of shard {shard} still owns columns; merge it away first"
            )
        del self._bounds[p + 1]
        del self._order[p]
        self._pos = {sid: q for q, sid in enumerate(self._order)}


# The original frozen partitioner's name, kept as an alias: every layer that
# type-annotates or constructs a ``GridPartitioner`` keeps working, and the
# semantics are identical until someone calls a mutation method.
GridPartitioner = PartitionMap
