"""Query propagation modes (paper Section 3.5).

- **Eager (EQP)**: every object uplinks a cell-change report when it crosses
  into a new grid cell; the server immediately sends back the queries newly
  covering the object's cell.
- **Lazy (LQP)**: non-focal objects do not report cell changes.  They pick
  up the queries of their new cell from the next velocity-change (or
  cell-change) broadcast of those queries' focal objects -- such broadcasts
  are expanded with the full query descriptors.  Lazy propagation trades
  query-result accuracy (objects may miss queries until the next broadcast)
  for a large reduction in uplink traffic.
"""

from __future__ import annotations

import enum


class PropagationMode(enum.Enum):
    """How non-focal objects learn about queries after a cell change."""

    EAGER = "eager"
    LAZY = "lazy"

    @property
    def is_lazy(self) -> bool:
        """Whether this is the lazy propagation mode."""
        return self is PropagationMode.LAZY
