"""Moving queries over moving objects (paper Section 2.3).

A moving query (MQ) is the quadruple ``<qid, oid, region, filter>``: a unique
query id, the id of the *focal* object the query is bound to, a closed
spatial region bound to the focal object through a binding point (a circle
bound through its center, without loss of generality), and a boolean
*filter* predicate over target-object properties.

The query result is the set of object ids inside the region (centered at the
focal object's position) whose properties satisfy the filter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Protocol, runtime_checkable

from repro.geometry import Circle, Point, Shape, Vector
from repro.grid.regions import region_reach
from repro.mobility.model import ObjectId

QueryId = int


@runtime_checkable
class QueryFilter(Protocol):
    """A boolean predicate over a target object's property set."""

    def matches(self, props: Mapping[str, Any]) -> bool:
        """Whether an object with these properties passes the filter."""
        ...


@dataclass(frozen=True, slots=True)
class TrueFilter:
    """The trivial filter: every object passes (selectivity 1.0)."""

    def matches(self, props: Mapping[str, Any]) -> bool:
        """Whether an object with these properties passes the filter."""
        return True


@dataclass(frozen=True, slots=True)
class AndFilter:
    """Conjunction: passes objects matching every sub-filter."""

    filters: tuple[QueryFilter, ...]

    def matches(self, props: Mapping[str, Any]) -> bool:
        """Whether an object with these properties passes the filter."""
        return all(f.matches(props) for f in self.filters)


@dataclass(frozen=True, slots=True)
class OrFilter:
    """Disjunction: passes objects matching any sub-filter."""

    filters: tuple[QueryFilter, ...]

    def matches(self, props: Mapping[str, Any]) -> bool:
        """Whether an object with these properties passes the filter."""
        return any(f.matches(props) for f in self.filters)


@dataclass(frozen=True, slots=True)
class NotFilter:
    """Negation of a sub-filter."""

    inner: QueryFilter

    def matches(self, props: Mapping[str, Any]) -> bool:
        """Whether an object with these properties passes the filter."""
        return not self.inner.matches(props)


@dataclass(frozen=True, slots=True)
class PropertyEqualsFilter:
    """Passes objects whose property ``key`` equals ``value``."""

    key: str
    value: Any

    def matches(self, props: Mapping[str, Any]) -> bool:
        """Whether an object with these properties passes the filter."""
        return props.get(self.key) == self.value


def _validate_relative_region(region: Shape) -> None:
    """A query region is expressed in focal-relative coordinates with the
    binding point at the origin; for a circle the paper binds through the
    center, so it must be origin-centered."""
    if isinstance(region, Circle) and (region.cx != 0.0 or region.cy != 0.0):
        raise ValueError(
            "query region must be expressed relative to the focal object "
            "(circle centered at the origin); got center "
            f"({region.cx}, {region.cy})"
        )


@dataclass(frozen=True, slots=True)
class MovingQuery:
    """An installed continuous query: moving (focal-bound) or static.

    Attributes:
        qid: unique query identifier (assigned by the server at install).
        oid: identifier of the focal object the query is bound to, or
            ``None`` for a *static* query whose region is fixed in space
            (the query class of the centralized related work the paper
            compares against; MobiEyes evaluates them with the same
            monitoring-region machinery, minus all focal bookkeeping).
        region: the query's spatial region.  For a moving query it is
            expressed *relative to* the focal object -- per the paper, "any
            closed shape description with a computationally cheap point
            containment check", bound through the origin of its coordinate
            frame (a circle through its center, without loss of
            generality).  For a static query it is absolute.
        filter: boolean predicate on target-object properties.
    """

    qid: QueryId
    oid: ObjectId | None
    region: Shape
    filter: QueryFilter

    def __post_init__(self) -> None:
        if self.oid is not None:
            _validate_relative_region(self.region)

    @property
    def is_static(self) -> bool:
        """Whether this is a static (fixed-region) query."""
        return self.oid is None

    @property
    def radius(self) -> float:
        """The circle radius, for the common circular-region case."""
        if not isinstance(self.region, Circle):
            raise TypeError("radius is only defined for circular query regions")
        return self.region.r

    @property
    def reach(self) -> float:
        """Maximal distance from the binding point to the region boundary
        (equals the radius for circular regions; undefined for static
        queries, which have no binding point)."""
        if self.is_static:
            raise TypeError("reach is only defined for focal-bound queries")
        return region_reach(self.region)

    def region_at(self, focal_pos: Point | None) -> Shape:
        """The query's absolute spatial region for a focal position.

        Static queries ignore ``focal_pos``.
        """
        if self.is_static:
            return self.region
        if focal_pos is None:
            raise ValueError("a moving query needs a focal position")
        return self.region.translated(Vector(focal_pos.x, focal_pos.y))

    def covers(self, focal_pos: Point | None, target_pos: Point) -> bool:
        """Whether a target at ``target_pos`` is inside the spatial region."""
        return self.region_at(focal_pos).contains(target_pos)


@dataclass(frozen=True, slots=True)
class QuerySpec:
    """A query as submitted by a user, before the server assigns a qid.

    ``oid=None`` submits a *static* query: ``region`` is then an absolute
    area of space rather than a focal-relative shape.  Use
    :meth:`QuerySpec.static` for clarity.
    """

    oid: ObjectId | None
    region: Shape
    filter: QueryFilter = TrueFilter()

    def __post_init__(self) -> None:
        if self.oid is not None:
            _validate_relative_region(self.region)

    @property
    def is_static(self) -> bool:
        """Whether this is a static (fixed-region) query."""
        return self.oid is None

    @staticmethod
    def static(region: Shape, filter: QueryFilter = TrueFilter()) -> "QuerySpec":
        """A static continuous range query over a fixed region."""
        return QuerySpec(oid=None, region=region, filter=filter)

    def with_qid(self, qid: QueryId) -> MovingQuery:
        """Bind this spec to a server-assigned query id."""
        return MovingQuery(qid=qid, oid=self.oid, region=self.region, filter=self.filter)
