"""Load-aware rebalancing policy for the epoch-versioned partition map.

The sharded server measures per-shard load two ways (:mod:`repro.core.load`):
wall-clock ``seconds`` charged to each shard's :class:`LoadAccount` and the
deterministic abstract ``ops`` counter.  This module turns those figures
into repartition decisions: every ``rebalance_every_steps`` steps the system
hands the policy the per-shard lifetime totals; the policy diffs them
against its marks to get the *window* load, finds the hottest shard, and --
with hysteresis, so a single noisy window cannot thrash the boundaries --
proposes moving a column span to the cooler adjacent neighbor.

The proposal is a plain ``(src, dst, cols)`` tuple; the actual migration
(:meth:`~repro.core.coordinator.Coordinator.apply_rebalance`) and the
client-facing directive broadcast are the system's job.  Keeping the policy
pure-decision makes it checkpointable (marks + armed flag) and unit-testable
without a running system.

Two trigger styles coexist:

- *policy mode* (``rebalance_every_steps > 0``): decisions depend on
  measured load; under the ``"seconds"`` metric that is wall clock, so this
  mode makes no bit-identity claim about *when* repartitions fire (the
  protocol results are identical either way -- only directive downlinks
  differ between runs).
- *schedule mode* (``rebalance_schedule``): a fixed list of
  ``(step, src, dst, cols)`` triggers applied unconditionally, bypassing the
  policy; this is the reproducible mode the differential tests pin down.
"""

from __future__ import annotations


class RebalancePolicy:
    """Hotspot detection with hysteresis over per-shard load windows.

    A shard is *hot* when its window load exceeds ``hot_factor`` times the
    mean across shards.  The hysteresis is thermostat-style: crossing
    ``hot_factor`` *arms* the policy, and while armed it keeps proposing
    one move per window until the ratio cools below ``cool_factor``.  The
    dead band between the two thresholds is where boundary oscillation
    would live -- a ratio hovering there neither starts nor continues a
    rebalance, so a single noisy window cannot thrash the stripes.
    """

    def __init__(
        self,
        hot_factor: float = 1.5,
        cool_factor: float = 1.2,
        metric: str = "seconds",
    ) -> None:
        if hot_factor < 1.0:
            raise ValueError("hot_factor must be at least 1.0")
        if not 1.0 <= cool_factor <= hot_factor:
            raise ValueError("cool_factor must lie between 1.0 and hot_factor")
        if metric not in ("seconds", "ops"):
            raise ValueError(f"metric must be 'seconds' or 'ops', got {metric!r}")
        self.hot_factor = hot_factor
        self.cool_factor = cool_factor
        self.metric = metric
        self._marks: list[float] | None = None
        self._armed = False
        # Lifetime decision counters (observability).
        self.windows = 0
        self.proposals = 0

    # ----------------------------------------------------------- decisions

    def window_loads(self, totals: list[float]) -> list[float]:
        """Diff the lifetime totals against the marks from the previous
        evaluation, advancing the marks.  The first call returns the
        totals themselves (marks start at zero)."""
        if self._marks is None or len(self._marks) != len(totals):
            self._marks = [0.0] * len(totals)
        window = [max(0.0, t - m) for t, m in zip(totals, self._marks)]
        self._marks = list(totals)
        return window

    def propose(
        self, totals: list[float], widths: list[int]
    ) -> tuple[int, int, int] | None:
        """One evaluation: window the loads, apply hysteresis, and either
        propose a ``(src, dst, cols)`` move or return ``None``."""
        self.windows += 1
        window = self.window_loads(totals)
        n = len(window)
        if n < 2:
            return None
        mean = sum(window) / n
        if mean <= 0.0:
            return None
        hottest = max(range(n), key=lambda s: (window[s], -s))
        ratio = window[hottest] / mean
        # Thermostat hysteresis: arm above hot_factor, keep proposing one
        # move per window while armed, disarm below cool_factor.  In the
        # dead band between the thresholds the previous state persists.
        if self._armed and ratio < self.cool_factor:
            self._armed = False
        if not self._armed and ratio <= self.hot_factor:
            return None
        self._armed = True
        # Donor must keep at least one column; pick the cooler adjacent
        # neighbor as recipient (boundary moves only trade between
        # index-adjacent shards, preserving stripe contiguity).
        if widths[hottest] < 2:
            return None
        neighbors = [s for s in (hottest - 1, hottest + 1) if 0 <= s < n]
        recipient = min(neighbors, key=lambda s: (window[s], s))
        if window[recipient] >= window[hottest]:
            return None
        cols = max(1, widths[hottest] // 4)
        self.proposals += 1
        return (hottest, recipient, cols)

    # --------------------------------------------------------- checkpoints

    def state(self) -> dict:
        """Checkpointable decision state (marks, hysteresis, counters)."""
        return {
            "marks": list(self._marks) if self._marks is not None else None,
            "armed": self._armed,
            "windows": self.windows,
            "proposals": self.proposals,
        }

    def restore_state(self, state: dict) -> None:
        """Adopt checkpointed decision state wholesale."""
        marks = state["marks"]
        self._marks = list(marks) if marks is not None else None
        self._armed = state["armed"]
        self.windows = state["windows"]
        self.proposals = state["proposals"]
