"""Load-aware rebalancing policy for the epoch-versioned partition map.

The sharded server measures per-shard load two ways (:mod:`repro.core.load`):
wall-clock ``seconds`` charged to each shard's :class:`LoadAccount` and the
deterministic abstract ``ops`` counter.  This module turns those figures
into repartition decisions: every ``rebalance_every_steps`` steps the system
hands the policy the per-shard lifetime totals; the policy diffs them
against its marks to get the *window* load, finds the hottest shard, and --
with hysteresis, so a single noisy window cannot thrash the boundaries --
proposes moving a column span to the cooler adjacent neighbor.

The proposal is a plain ``(src, dst, cols)`` tuple; the actual migration
(:meth:`~repro.core.coordinator.Coordinator.apply_rebalance`) and the
client-facing directive broadcast are the system's job.  Keeping the policy
pure-decision makes it checkpointable (marks + armed flag) and unit-testable
without a running system.

Two trigger styles coexist:

- *policy mode* (``rebalance_every_steps > 0``): decisions depend on
  measured load; under the ``"seconds"`` metric that is wall clock, so this
  mode makes no bit-identity claim about *when* repartitions fire (the
  protocol results are identical either way -- only directive downlinks
  differ between runs).
- *schedule mode* (``rebalance_schedule``): a fixed list of
  ``(step, src, dst, cols)`` triggers applied unconditionally, bypassing the
  policy; this is the reproducible mode the differential tests pin down.
"""

from __future__ import annotations


class RebalancePolicy:
    """Hotspot detection with hysteresis over per-shard load windows.

    A shard is *hot* when its window load exceeds ``hot_factor`` times the
    mean across shards.  The hysteresis is thermostat-style: crossing
    ``hot_factor`` *arms* the policy, and while armed it keeps proposing
    one move per window until the ratio cools below ``cool_factor``.  The
    dead band between the two thresholds is where boundary oscillation
    would live -- a ratio hovering there neither starts nor continues a
    rebalance, so a single noisy window cannot thrash the stripes.
    """

    def __init__(
        self,
        hot_factor: float = 1.5,
        cool_factor: float = 1.2,
        metric: str = "seconds",
    ) -> None:
        if hot_factor < 1.0:
            raise ValueError("hot_factor must be at least 1.0")
        if not 1.0 <= cool_factor <= hot_factor:
            raise ValueError("cool_factor must lie between 1.0 and hot_factor")
        if metric not in ("seconds", "ops"):
            raise ValueError(f"metric must be 'seconds' or 'ops', got {metric!r}")
        self.hot_factor = hot_factor
        self.cool_factor = cool_factor
        self.metric = metric
        self._marks: list[float] | None = None
        self._armed = False
        # Lifetime decision counters (observability).
        self.windows = 0
        self.proposals = 0

    # ----------------------------------------------------------- decisions

    def window_loads(self, totals: list[float]) -> list[float]:
        """Diff the lifetime totals against the marks from the previous
        evaluation, advancing the marks.  The first call returns the
        totals themselves (marks start at zero)."""
        if self._marks is None or len(self._marks) != len(totals):
            self._marks = [0.0] * len(totals)
        window = [max(0.0, t - m) for t, m in zip(totals, self._marks)]
        self._marks = list(totals)
        return window

    def propose(
        self, totals: list[float], widths: list[int]
    ) -> tuple[int, int, int] | None:
        """One evaluation: window the loads, apply hysteresis, and either
        propose a ``(src, dst, cols)`` move or return ``None``."""
        self.windows += 1
        window = self.window_loads(totals)
        n = len(window)
        if n < 2:
            return None
        mean = sum(window) / n
        if mean <= 0.0:
            return None
        hottest = max(range(n), key=lambda s: (window[s], -s))
        ratio = window[hottest] / mean
        # Thermostat hysteresis: arm above hot_factor, keep proposing one
        # move per window while armed, disarm below cool_factor.  In the
        # dead band between the thresholds the previous state persists.
        if self._armed and ratio < self.cool_factor:
            self._armed = False
        if not self._armed and ratio <= self.hot_factor:
            return None
        self._armed = True
        # Donor must keep at least one column; pick the cooler adjacent
        # neighbor as recipient (boundary moves only trade between
        # index-adjacent shards, preserving stripe contiguity).
        if widths[hottest] < 2:
            return None
        neighbors = [s for s in (hottest - 1, hottest + 1) if 0 <= s < n]
        recipient = min(neighbors, key=lambda s: (window[s], s))
        if window[recipient] >= window[hottest]:
            return None
        cols = max(1, widths[hottest] // 4)
        self.proposals += 1
        return (hottest, recipient, cols)

    # --------------------------------------------------------- checkpoints

    def state(self) -> dict:
        """Checkpointable decision state (marks, hysteresis, counters)."""
        return {
            "marks": list(self._marks) if self._marks is not None else None,
            "armed": self._armed,
            "windows": self.windows,
            "proposals": self.proposals,
        }

    def restore_state(self, state: dict) -> None:
        """Adopt checkpointed decision state wholesale."""
        marks = state["marks"]
        self._marks = list(marks) if marks is not None else None
        self._armed = state["armed"]
        self.windows = state["windows"]
        self.proposals = state["proposals"]


class ElasticPolicy(RebalancePolicy):
    """A rebalance policy that can also change the shard *count*.

    The base thermostat slides boundaries between a fixed set of stripes;
    this extension watches per-shard *streaks* and escalates:

    - a stripe that stays above ``hot_factor`` x mean for ``split_after``
      consecutive windows (boundary slides evidently are not enough --
      think a one-column floor under a flash crowd) is **split**: a new
      shard spawns to its right and takes half its columns;
    - a stripe that stays below ``merge_factor`` x mean for
      ``merge_after`` consecutive windows is **merged** into its cooler
      stripe-adjacent neighbor and its slot retired;
    - otherwise the ordinary transfer thermostat runs.

    Because the live shard set changes over time, the window marks and
    streak counters are keyed by *stable shard id* (a dict), never by
    list position: a freshly spawned shard starts with a zero mark and a
    zero streak instead of inheriting a stranger's history, and a retired
    shard's history is dropped.

    Decisions come back as op tuples -- ``("split", donor)``,
    ``("merge", sid, into)``, or ``("transfer", src, dst, cols)`` -- and
    stay pure: the system translates them into coordinator calls.
    """

    def __init__(
        self,
        hot_factor: float = 1.5,
        cool_factor: float = 1.2,
        metric: str = "seconds",
        *,
        max_shards: int,
        min_shards: int = 2,
        split_after: int = 2,
        merge_factor: float = 0.5,
        merge_after: int = 3,
    ) -> None:
        super().__init__(hot_factor, cool_factor, metric)
        if max_shards < min_shards:
            raise ValueError("max_shards must be at least min_shards")
        if min_shards < 2:
            raise ValueError("min_shards must be at least 2")
        if split_after < 1 or merge_after < 1:
            raise ValueError("streak lengths must be at least 1")
        if not 0.0 < merge_factor < 1.0:
            raise ValueError("merge_factor must lie strictly between 0 and 1")
        self.max_shards = max_shards
        self.min_shards = min_shards
        self.split_after = split_after
        self.merge_factor = merge_factor
        self.merge_after = merge_after
        self._id_marks: dict[int, float] = {}
        self._hot_streak: dict[int, int] = {}
        self._cold_streak: dict[int, int] = {}
        # Lifetime elastic decision counters (observability).
        self.splits = 0
        self.merges = 0

    # ----------------------------------------------------------- decisions

    def window_loads_by_id(self, totals: dict[int, float]) -> dict[int, float]:
        """Diff lifetime totals against per-id marks, advancing the marks.

        Ids absent from ``totals`` (retired shards) drop their marks; ids
        new to it (spawned shards) start from a zero mark.
        """
        window = {
            sid: max(0.0, t - self._id_marks.get(sid, 0.0)) for sid, t in totals.items()
        }
        self._id_marks = dict(totals)
        return window

    def propose_elastic(
        self,
        totals: dict[int, float],
        widths: dict[int, int],
        order: tuple[int, ...],
    ) -> tuple | None:
        """One elastic evaluation over the live fleet.

        ``totals``/``widths`` are keyed by shard id; ``order`` lists the
        live ids in left-to-right stripe order (neighbor relations are a
        stripe-position question, not an id question).
        """
        self.windows += 1
        window = self.window_loads_by_id(totals)
        n = len(order)
        if n < 2:
            return None
        mean = sum(window.values()) / n
        if mean <= 0.0:
            return None
        pos = {sid: p for p, sid in enumerate(order)}
        for sid in order:
            ratio = window[sid] / mean
            self._hot_streak[sid] = (
                self._hot_streak.get(sid, 0) + 1 if ratio > self.hot_factor else 0
            )
            self._cold_streak[sid] = (
                self._cold_streak.get(sid, 0) + 1 if ratio < self.merge_factor else 0
            )
        for sid in list(self._hot_streak):
            if sid not in pos:
                del self._hot_streak[sid]
        for sid in list(self._cold_streak):
            if sid not in pos:
                del self._cold_streak[sid]
        hottest = max(order, key=lambda s: (window[s], -pos[s]))
        ratio = window[hottest] / mean
        # 1. Scale out: a persistent hotspot that boundary slides did not
        #    fix gets its own shard (capacity, not just placement).
        if (
            n < self.max_shards
            and self._hot_streak.get(hottest, 0) >= self.split_after
            and widths[hottest] >= 2
        ):
            self._hot_streak[hottest] = 0
            self.splits += 1
            self.proposals += 1
            return ("split", hottest)
        # 2. The ordinary transfer thermostat (base-class semantics, but
        #    over ids in stripe order).
        if self._armed and ratio < self.cool_factor:
            self._armed = False
        if self._armed or ratio > self.hot_factor:
            self._armed = True
            if widths[hottest] >= 2:
                p = pos[hottest]
                neighbors = [order[q] for q in (p - 1, p + 1) if 0 <= q < n]
                recipient = min(neighbors, key=lambda s: (window[s], pos[s]))
                if window[recipient] < window[hottest]:
                    cols = max(1, widths[hottest] // 4)
                    self.proposals += 1
                    return ("transfer", hottest, recipient, cols)
        # 3. Scale in: a persistently idle stripe returns its slot.  The
        #    coldest streak-qualified stripe merges into its cooler
        #    stripe-adjacent neighbor.
        if n > self.min_shards:
            cold = [
                sid for sid in order if self._cold_streak.get(sid, 0) >= self.merge_after
            ]
            if cold:
                coldest = min(cold, key=lambda s: (window[s], pos[s]))
                p = pos[coldest]
                neighbors = [order[q] for q in (p - 1, p + 1) if 0 <= q < n]
                into = min(neighbors, key=lambda s: (window[s], pos[s]))
                self._cold_streak[coldest] = 0
                self.merges += 1
                self.proposals += 1
                return ("merge", coldest, into)
        return None

    # --------------------------------------------------------- checkpoints

    def state(self) -> dict:
        state = super().state()
        state["id_marks"] = dict(self._id_marks)
        state["hot_streak"] = dict(self._hot_streak)
        state["cold_streak"] = dict(self._cold_streak)
        state["splits"] = self.splits
        state["merges"] = self.merges
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self._id_marks = dict(state.get("id_marks", {}))
        self._hot_streak = dict(state.get("hot_streak", {}))
        self._cold_streak = dict(state.get("cold_streak", {}))
        self.splits = state.get("splits", 0)
        self.merges = state.get("merges", 0)
