"""Query registry: SQT/RQI ownership and result-change subscriptions.

One of the three layered server components (registry / focal tracker /
broadcast planner).  The registry owns the server query table and the
reverse query index of one server (the monolithic server, or one shard
behind the coordinator) and is the single place queries are added to and
removed from, so the two tables can never drift apart.

Optional ``on_added`` / ``on_removed`` callbacks let a coordinator keep
its global query-ownership directory in sync with per-shard registries;
the monolithic server passes none.  The subscriber book may be shared
between registries (the coordinator hands every shard the same dict) so
result-change subscriptions survive cross-shard focal handoffs.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.core.query import QueryId
from repro.core.tables import ReverseQueryIndex, ServerQueryTable, SqtEntry
from repro.grid import CellIndex, CellRange
from repro.mobility.model import ObjectId

# callback(qid, oid, entered): a differential result change of query qid.
ResultCallback = Callable[[QueryId, ObjectId, bool], None]


class QueryRegistry:
    """SQT + RQI ownership plus the result-change subscriber book."""

    def __init__(
        self,
        on_added: Callable[[SqtEntry], None] | None = None,
        on_removed: Callable[[SqtEntry, bool], None] | None = None,
        subscribers: dict[QueryId, list[ResultCallback]] | None = None,
    ) -> None:
        self.sqt = ServerQueryTable()
        self.rqi = ReverseQueryIndex()
        self.subscribers: dict[QueryId, list[ResultCallback]] = (
            subscribers if subscribers is not None else {}
        )
        self._on_added = on_added
        self._on_removed = on_removed

    # --------------------------------------------------------------- SQT

    def __contains__(self, qid: QueryId) -> bool:
        return qid in self.sqt

    def __len__(self) -> int:
        return len(self.sqt)

    def get(self, qid: QueryId) -> SqtEntry:
        """Look up an owned query entry."""
        return self.sqt.get(qid)

    def add(self, entry: SqtEntry) -> None:
        """Take ownership of a query entry (SQT only; the caller registers
        the monitoring region separately, possibly across shards)."""
        self.sqt.add(entry)
        if self._on_added is not None:
            self._on_added(entry)

    def remove(self, qid: QueryId) -> tuple[SqtEntry, bool]:
        """Drop ownership of a query; returns ``(entry, focal_left)`` where
        ``focal_left`` is True while the entry's focal object still anchors
        other queries in this registry."""
        entry = self.sqt.remove(qid)
        self.subscribers.pop(qid, None)
        focal_left = entry.is_static or self.sqt.is_focal(entry.oid)
        if self._on_removed is not None:
            self._on_removed(entry, focal_left)
        return entry, focal_left

    def adopt(self, entry: SqtEntry) -> None:
        """Take ownership of an entry migrating in from another registry
        (cross-shard focal handoff); RQI registrations are cell-owned and
        do not move with the entry."""
        self.sqt.add(entry)
        if self._on_added is not None:
            self._on_added(entry)

    def release(self, qid: QueryId) -> SqtEntry:
        """Give up ownership of an entry migrating to another registry,
        keeping its subscriptions (the book is shared) and its RQI cells."""
        entry = self.sqt.remove(qid)
        if self._on_removed is not None:
            self._on_removed(entry, entry.is_static or self.sqt.is_focal(entry.oid))
        return entry

    def queries_of_focal(self, oid: ObjectId) -> list[SqtEntry]:
        """Owned queries bound to focal object ``oid``, qid-ascending."""
        return self.sqt.queries_of_focal(oid)

    def is_focal(self, oid: ObjectId) -> bool:
        """Whether ``oid`` anchors at least one owned query."""
        return self.sqt.is_focal(oid)

    def entries(self) -> Iterator[SqtEntry]:
        """Owned entries in qid-ascending order."""
        return self.sqt.entries()

    def ids(self) -> Iterator[QueryId]:
        """Owned query ids in ascending order."""
        return self.sqt.ids()

    # --------------------------------------------------------------- RQI

    def queries_at(self, cell: CellIndex) -> frozenset[QueryId]:
        """Query ids registered at a grid cell (owned or replicated)."""
        return self.rqi.queries_at(cell)

    def register_cells(self, qid: QueryId, cells: CellRange) -> None:
        """Register a query id at this registry's portion of a region."""
        self.rqi.add(qid, cells)

    def unregister_cells(self, qid: QueryId, cells: CellRange) -> None:
        """Remove a query id from this registry's portion of a region."""
        self.rqi.remove(qid, cells)

    # -------------------------------------------------------- subscribers

    def subscribe(self, qid: QueryId, callback: ResultCallback) -> None:
        """Register a result-change callback for an owned query."""
        if qid not in self.sqt:
            raise KeyError(f"unknown query {qid}")
        self.subscribers.setdefault(qid, []).append(callback)

    def unsubscribe(self, qid: QueryId, callback: ResultCallback) -> None:
        """Remove a previously registered callback (no-op if absent)."""
        callbacks = self.subscribers.get(qid)
        if callbacks and callback in callbacks:
            callbacks.remove(callback)

    def notify(self, qid: QueryId, oid: ObjectId, entered: bool) -> None:
        """Fire every subscriber of ``qid`` with one differential change."""
        for callback in self.subscribers.get(qid, ()):
            callback(qid, oid, entered)

    def purge_object(self, oid: ObjectId) -> list[QueryId]:
        """Drop ``oid`` from every owned result set; returns the affected
        query ids in qid-ascending order (callbacks are the caller's job)."""
        purged: list[QueryId] = []
        for entry in self.sqt.entries():
            if oid in entry.result:
                entry.result.discard(oid)
                purged.append(entry.qid)
        return purged
