"""Columnar client-side buffering for the high-volume uplink reports.

The three report kinds objects emit every step (result changes, cell
changes, velocity changes) dominate uplink traffic; allocating one frozen
dataclass plus one envelope per report is the reference path's hot spot.
The :class:`ReportBuffer` is the batched alternative: inside a *window*
(``depth > 0``) clients append report records to parallel columns instead
of sending dataclasses, and the transport flushes the whole buffer when
the window closes (:meth:`repro.core.transport.SimulatedTransport.flush_reports`).

Semantics are preserved exactly:

- Records flush in append order, which is the order the per-message path
  would have sent them, so server reactions, loss rolls, jitter draws,
  and sequence numbers interleave identically.
- The ledger is charged per record with the same type names and the same
  per-record bit sizes (:meth:`bits_of`) as the dataclass messages.
- When a loss model or the fault-injection reliability layer is active,
  the flush *rehydrates* each record into its dataclass and replays it
  through the ordinary uplink path, so drop/ack/retransmit semantics stay
  per logical message.

Windows never span a point where a client's buffered send could influence
its own later decisions within the window; the phase loops in
:mod:`repro.core.system` and :mod:`repro.fastpath.runtime` open one window
per reporting client (flushing before the next client reports) and one
window around the evaluation dispatch.
"""

from __future__ import annotations

from repro.core.messages import (
    REC_CELL,
    REC_KIND_NAMES,
    REC_RESULT,
    REC_VELOCITY,
    CellChangeReport,
    ResultChangeReport,
    VelocityChangeReport,
    cell_change_bits,
    result_change_bits,
    velocity_change_bits,
)
from repro.core.query import QueryId
from repro.grid import CellIndex
from repro.mobility.model import MotionState, ObjectId


class ReportBuffer:
    """Struct-of-arrays accumulator for buffered report records.

    ``depth`` is the window nesting level; clients buffer only while it is
    positive.  The transport sets it back to zero *before* flushing, so
    any report a server reaction provokes mid-flush takes the ordinary
    inline path -- exactly where it would have been sent without batching.
    """

    __slots__ = (
        "depth",
        "kind",
        "oid",
        "epoch",
        "prev_i",
        "prev_j",
        "new_i",
        "new_j",
        "state",
        "qid_lo",
        "qid_hi",
        "qid_flat",
        "flag_flat",
    )

    def __init__(self) -> None:
        self.depth = 0
        self.kind: list[int] = []
        self.oid: list[ObjectId] = []
        self.epoch: list[int] = []
        self.prev_i: list[int] = []
        self.prev_j: list[int] = []
        self.new_i: list[int] = []
        self.new_j: list[int] = []
        self.state: list[MotionState | None] = []
        self.qid_lo: list[int] = []
        self.qid_hi: list[int] = []
        self.qid_flat: list[QueryId] = []
        self.flag_flat: list[bool] = []

    @property
    def count(self) -> int:
        """Number of buffered report records."""
        return len(self.kind)

    # ------------------------------------------------------------ appends

    def add_result(self, oid: ObjectId, changes: dict[QueryId, bool], epoch: int) -> None:
        """Buffer one result-change report (qid -> membership flags)."""
        self.kind.append(REC_RESULT)
        self.oid.append(oid)
        self.epoch.append(epoch)
        self.prev_i.append(0)
        self.prev_j.append(0)
        self.new_i.append(0)
        self.new_j.append(0)
        self.state.append(None)
        qid_flat = self.qid_flat
        flag_flat = self.flag_flat
        self.qid_lo.append(len(qid_flat))
        for qid, flag in changes.items():
            qid_flat.append(qid)
            flag_flat.append(flag)
        self.qid_hi.append(len(qid_flat))

    def add_cell(
        self,
        oid: ObjectId,
        prev_cell: CellIndex,
        new_cell: CellIndex,
        state: MotionState | None,
    ) -> None:
        """Buffer one cell-change report (state only for focal senders)."""
        self.kind.append(REC_CELL)
        self.oid.append(oid)
        self.epoch.append(0)
        self.prev_i.append(prev_cell[0])
        self.prev_j.append(prev_cell[1])
        self.new_i.append(new_cell[0])
        self.new_j.append(new_cell[1])
        self.state.append(state)
        self.qid_lo.append(len(self.qid_flat))
        self.qid_hi.append(len(self.qid_flat))

    def add_velocity(self, oid: ObjectId, state: MotionState) -> None:
        """Buffer one velocity-change report."""
        self.kind.append(REC_VELOCITY)
        self.oid.append(oid)
        self.epoch.append(0)
        self.prev_i.append(0)
        self.prev_j.append(0)
        self.new_i.append(0)
        self.new_j.append(0)
        self.state.append(state)
        self.qid_lo.append(len(self.qid_flat))
        self.qid_hi.append(len(self.qid_flat))

    # ------------------------------------------------------------ per-record views

    def bits_of(self, i: int) -> int:
        """Wire size of record ``i``, identical to the dataclass message's."""
        kind = self.kind[i]
        if kind == REC_RESULT:
            return result_change_bits(self.qid_hi[i] - self.qid_lo[i])
        if kind == REC_CELL:
            return cell_change_bits(self.state[i] is not None)
        return velocity_change_bits()

    def kind_name_of(self, i: int) -> str:
        """Ledger type name of record ``i``."""
        return REC_KIND_NAMES[self.kind[i]]

    def rehydrate(self, i: int) -> ResultChangeReport | CellChangeReport | VelocityChangeReport:
        """Rebuild record ``i`` as its per-message dataclass (loss /
        reliability flush path)."""
        kind = self.kind[i]
        if kind == REC_RESULT:
            lo, hi = self.qid_lo[i], self.qid_hi[i]
            changes = dict(zip(self.qid_flat[lo:hi], self.flag_flat[lo:hi]))
            return ResultChangeReport(oid=self.oid[i], changes=changes, epoch=self.epoch[i])
        if kind == REC_CELL:
            return CellChangeReport(
                oid=self.oid[i],
                prev_cell=(self.prev_i[i], self.prev_j[i]),
                new_cell=(self.new_i[i], self.new_j[i]),
                state=self.state[i],
            )
        state = self.state[i]
        assert state is not None
        return VelocityChangeReport(oid=self.oid[i], state=state)

    def clear(self) -> None:
        """Drop all buffered records (the window stays as it is)."""
        self.kind.clear()
        self.oid.clear()
        self.epoch.clear()
        self.prev_i.clear()
        self.prev_j.clear()
        self.new_i.clear()
        self.new_j.clear()
        self.state.clear()
        self.qid_lo.clear()
        self.qid_hi.clear()
        self.qid_flat.clear()
        self.flag_flat.clear()
