"""Safe-period optimization (paper Section 4.2).

For an object :math:`o_i` that holds a query :math:`q_k` (focal object
:math:`o_j`, circular region of radius :math:`r`) in its LQT and currently
sits *outside* the query region, the worst case is that both objects race
toward each other at their maximum speeds along the line between them.  The
earliest time :math:`o_i` could possibly be inside the region is therefore

.. math::

    sp(o_i, q_k) = \\frac{dist(o_i, o_j) - r}{o_i.maxVel + o_j.maxVel}

and the object may safely skip evaluating :math:`q_k` for that long.
"""

from __future__ import annotations

import math


def safe_period_hours(
    distance: float,
    radius: float,
    own_max_speed: float,
    focal_max_speed: float,
) -> float:
    """Worst-case lower bound (hours) before the object can enter the region.

    Returns ``0`` when the object is already within the region's reach and
    ``inf`` when neither object can move (the region can never be entered).
    """
    if distance < 0 or radius < 0:
        raise ValueError("distance and radius must be non-negative")
    if own_max_speed < 0 or focal_max_speed < 0:
        raise ValueError("speeds must be non-negative")
    gap = distance - radius
    if gap <= 0:
        return 0.0
    closing_speed = own_max_speed + focal_max_speed
    if closing_speed == 0:
        return math.inf
    return gap / closing_speed
