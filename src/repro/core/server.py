"""The MobiEyes server: a mediator between moving objects (paper Section 3).

The server never evaluates queries itself.  It composes three layered
components -- a :class:`~repro.core.registry.QueryRegistry` (SQT/RQI
ownership and result subscriptions), a
:class:`~repro.core.focal.FocalTracker` (FOT and soft-state leases), and a
:class:`~repro.core.broadcast.BroadcastPlanner` (query grouping and
monitoring-region broadcasts) -- and orchestrates the protocol across
them: installing queries and relaying significant focal-object changes
(velocity-vector changes and grid-cell crossings) to the objects inside
the affected monitoring regions using the minimal number of base-station
broadcasts.

Server load is measured by a :class:`~repro.core.load.LoadAccount`: the
wall-clock time spent inside the server's handlers (the same "time spent
executing the server side logic per time step" measure the paper uses),
plus a deterministic operation counter for hardware-independent
comparisons.

Every cross-table access that a grid-partitioned shard would need to
resolve through its coordinator goes through a ``_``-prefixed hook
(``_queries_at``, ``_entry_of``, ``_focal_entry``, ``_rqi_add`` /
``_rqi_remove`` / ``_rqi_move``, ``_purge_object``, ``_result_entry``,
``_acquire_focal``, ``_allocate_qid``).  Here every hook resolves against
the server's own tables; :class:`~repro.core.shard.ServerShard` overrides
them to reach across the partition.
"""

from __future__ import annotations

from typing import Callable, Iterable

ResultCallback = Callable[["QueryId", "ObjectId", bool], None]

from repro.core.broadcast import BroadcastPlanner
from repro.core.config import MobiEyesConfig
from repro.core.focal import FocalTracker
from repro.core.load import LoadAccount
from repro.core.messages import (
    REC_CELL,
    REC_RESULT,
    CellChangeReport,
    FocalRoleNotification,
    Heartbeat,
    MotionStateRequest,
    MotionStateResponse,
    QueryInstallBroadcast,
    QueryInstallList,
    QueryRemoveBroadcast,
    QueryUpdateBroadcast,
    ResultChangeReport,
    ResyncRequest,
    ResyncResponse,
    VelocityChangeBroadcast,
    VelocityChangeReport,
)
from repro.core.query import MovingQuery, QueryId, QuerySpec
from repro.core.registry import QueryRegistry
from repro.core.tables import FotEntry, SqtEntry
from repro.core.transport import SimulatedTransport
from repro.grid import CellIndex, CellRange, CellRangeUnion, Grid, monitoring_region
from repro.mobility.model import MotionState, ObjectId


class MobiEyesServer:
    """Server-side half of the MobiEyes protocol."""

    def __init__(
        self,
        grid: Grid,
        transport: SimulatedTransport,
        config: MobiEyesConfig,
        *,
        registry: QueryRegistry | None = None,
        tracker: FocalTracker | None = None,
        attach: bool = True,
    ) -> None:
        self.grid = grid
        self.transport = transport
        self.config = config
        self.registry = registry if registry is not None else QueryRegistry()
        self.tracker = tracker if tracker is not None else FocalTracker()
        self.planner = BroadcastPlanner(transport, config.grouping)
        self.load = LoadAccount()
        self._next_qid: QueryId = 1
        # Per-object report generations (see ResultChangeReport.epoch);
        # absent means epoch 0.  Sharded servers share one map through the
        # coordinator so an object's epoch survives cell handoffs.
        self._report_epochs: dict[ObjectId, int] = {}
        if attach:
            transport.attach_server(self)

    # ------------------------------------------------------- table aliases

    @property
    def fot(self):
        """The focal object table (owned by the focal tracker)."""
        return self.tracker.fot

    @property
    def sqt(self):
        """The server query table (owned by the query registry)."""
        return self.registry.sqt

    @property
    def rqi(self):
        """The reverse query index (owned by the query registry)."""
        return self.registry.rqi

    # ------------------------------------------------------------- timing

    @property
    def load_seconds(self) -> float:
        """Wall seconds spent in server handlers since the last reset."""
        return self.load.seconds

    @property
    def op_count(self) -> int:
        """Abstract operations performed since the last reset."""
        return self.load.ops

    def reset_load(self) -> tuple[float, int]:
        """Return and clear the accumulated (seconds, ops) load counters."""
        return self.load.reset()

    # -------------------------------------------------- cross-shard hooks
    #
    # Every access that may leave a shard's own partition funnels through
    # these; the monolithic server resolves them locally.

    def _allocate_qid(self) -> QueryId:
        """Claim the next globally unique query id."""
        qid = self._next_qid
        self._next_qid += 1
        return qid

    def _focal_entry(self, oid: ObjectId) -> FotEntry:
        """The FOT entry backing a query descriptor (may live elsewhere)."""
        return self.tracker.get(oid)

    def _queries_at(self, cell: CellIndex) -> frozenset[QueryId]:
        """Query ids registered at a grid cell (the cell owner's RQI)."""
        return self.registry.queries_at(cell)

    def _fresh_queries_at(self, prev_cell: CellIndex, new_cell: CellIndex) -> list[QueryId]:
        """Ids registered at ``new_cell`` but not ``prev_cell``, ascending.
        Both cells resolve locally here; a shard routes either through its
        coordinator when a foreign stripe owns it."""
        return self.registry.rqi.fresh_ids_between(prev_cell, new_cell)

    def _entry_of(self, qid: QueryId) -> SqtEntry:
        """The SQT entry of a query id found in some RQI cell."""
        return self.registry.get(qid)

    def _result_entry(self, qid: QueryId) -> SqtEntry | None:
        """The SQT entry a result-change report should apply to, or None
        if the query no longer exists anywhere."""
        return self.registry.get(qid) if qid in self.registry else None

    def _rqi_add(self, qid: QueryId, region: CellRange) -> None:
        """Register a monitoring region in the RQI of its cell owners."""
        self.registry.rqi.add(qid, region)

    def _rqi_remove(self, qid: QueryId, region: CellRange) -> None:
        """Withdraw a monitoring region from the RQI of its cell owners."""
        self.registry.rqi.remove(qid, region)

    def _rqi_move(self, qid: QueryId, old: CellRange, new: CellRange) -> None:
        """Move a query between monitoring regions across cell owners."""
        self.registry.rqi.move(qid, old, new)

    def _purge_object(self, oid: ObjectId) -> list[QueryId]:
        """Drop ``oid`` from every query result anywhere; qid-ascending."""
        return self.registry.purge_object(oid)

    def _report_epoch(self, oid: ObjectId) -> int:
        """The report generation currently accepted from ``oid``."""
        return self._report_epochs.get(oid, 0)

    def _bump_report_epoch(self, oid: ObjectId) -> int:
        """Start a new report generation for ``oid`` (after a purge):
        reports stamped with an older epoch -- still in flight across the
        purge under modeled latency -- will be discarded on arrival."""
        epoch = self._report_epochs.get(oid, 0) + 1
        self._report_epochs[oid] = epoch
        return epoch

    def _acquire_focal(self, oid: ObjectId) -> None:
        """Take over responsibility for a focal object that crossed into
        this server's territory (no-op without partitioning)."""

    # ------------------------------------------------------ query install

    def install_query(self, spec: QuerySpec) -> QueryId:
        """Install a moving or static query (paper Section 3.3).

        Static queries (``spec.oid is None``) skip all focal bookkeeping:
        no FOT entry, no role notification, and a monitoring region that is
        simply the grid cells intersecting the fixed region.
        """
        if spec.is_static:
            return self._install_static(spec)
        with self.load.timed():
            if spec.oid not in self.tracker:
                # Contact the focal object for its position and velocity.
                # Installation predates the simulation run (there is no
                # delivery phase to drain a deferred response), so the
                # round trip is forced inline regardless of modeled
                # latency and the response arrives through on_uplink
                # before the send returns.
                with self.load.paused():  # the round trip is not server work
                    with self.transport.synchronous():
                        self.transport.send(spec.oid, MotionStateRequest(oid=spec.oid))
                if spec.oid not in self.tracker:
                    raise KeyError(f"focal object {spec.oid} did not answer the state request")
            focal = self.tracker.get(spec.oid)
            qid = self._allocate_qid()
            curr_cell = self.grid.cell_index(focal.state.pos)
            mon_region = monitoring_region(self.grid, curr_cell, spec.region)
            entry = SqtEntry(
                qid=qid,
                oid=spec.oid,
                region=spec.region,
                filter=spec.filter,
                curr_cell=curr_cell,
                mon_region=mon_region,
            )
            self.registry.add(entry)
            self._rqi_add(qid, mon_region)
            self.load.ops += mon_region.cell_count + 1

        # Notify the focal object of its role, then install the query on
        # every object in the monitoring region through broadcasts.
        self.transport.send(spec.oid, FocalRoleNotification(oid=spec.oid, has_mq=True))
        self.planner.send(
            mon_region, QueryInstallBroadcast(queries=(self._descriptor(entry),))
        )
        return qid

    def _install_static(self, spec: QuerySpec) -> QueryId:
        with self.load.timed():
            qid = self._allocate_qid()
            mon_region = self.grid.cells_intersecting(spec.region.bounding_rect())
            entry = SqtEntry(
                qid=qid,
                oid=None,
                region=spec.region,
                filter=spec.filter,
                curr_cell=None,
                mon_region=mon_region,
            )
            self.registry.add(entry)
            self._rqi_add(qid, mon_region)
            self.load.ops += mon_region.cell_count + 1
        self.planner.send(
            mon_region, QueryInstallBroadcast(queries=(self._descriptor(entry),))
        )
        return qid

    def remove_query(self, qid: QueryId) -> None:
        """Uninstall a query everywhere."""
        with self.load.timed():
            entry, focal_left = self.registry.remove(qid)
            self._rqi_remove(qid, entry.mon_region)
            self.load.ops += entry.mon_region.cell_count + 1
            if not focal_left:
                if entry.oid in self.tracker:
                    self.tracker.remove(entry.oid)
                self.tracker.pop_suspended(entry.oid)
        self.planner.send(entry.mon_region, QueryRemoveBroadcast(qids=(qid,)))
        if not focal_left:
            self.transport.send(entry.oid, FocalRoleNotification(oid=entry.oid, has_mq=False))

    # ----------------------------------------------------------- handlers

    def on_uplink(self, message: object) -> None:
        """Dispatch an object -> server message."""
        if self.tracker.leases_enabled:
            self._touch_lease(message)
        if isinstance(message, VelocityChangeReport):
            self._on_velocity_change(message)
        elif isinstance(message, CellChangeReport):
            self._on_cell_change(message)
        elif isinstance(message, ResultChangeReport):
            self._on_result_change(message)
        elif isinstance(message, MotionStateResponse):
            self._on_motion_state(message)
        elif isinstance(message, ResyncRequest):
            self._on_resync_request(message)
        elif isinstance(message, Heartbeat):
            pass  # liveness only; the lease bookkeeping above did the work
        else:
            raise TypeError(f"unexpected uplink message {type(message).__name__}")

    def apply_report_record(self, cols: object, i: int) -> None:
        """Apply record ``i`` of a columnar report batch.

        ``cols`` is anything exposing the :class:`~repro.core.reporting.
        ReportBuffer` column layout (the buffer itself on the inline flush
        path, an :class:`~repro.core.messages.UplinkReportBatch` when the
        record arrived in a deferred envelope).  Semantically identical to
        :meth:`on_uplink` with the equivalent per-record dataclass, but
        without constructing it.
        """
        kind = cols.kind[i]  # type: ignore[attr-defined]
        oid = cols.oid[i]  # type: ignore[attr-defined]
        state = cols.state[i]  # type: ignore[attr-defined]
        if self.tracker.leases_enabled:
            self._touch_lease_rec(oid, state, None)
        if kind == REC_RESULT:
            lo = cols.qid_lo[i]  # type: ignore[attr-defined]
            hi = cols.qid_hi[i]  # type: ignore[attr-defined]
            self._apply_result_record(
                oid,
                cols.epoch[i],  # type: ignore[attr-defined]
                zip(cols.qid_flat[lo:hi], cols.flag_flat[lo:hi]),  # type: ignore[attr-defined]
            )
        elif kind == REC_CELL:
            self._on_cell_change_rec(
                oid,
                (cols.prev_i[i], cols.prev_j[i]),  # type: ignore[attr-defined]
                (cols.new_i[i], cols.new_j[i]),  # type: ignore[attr-defined]
                state,
            )
        else:
            self._on_velocity_change_rec(oid, state)

    # ------------------------------------------------- soft-state leases

    def enable_leases(self, lease_steps: int) -> None:
        """Turn on soft-state leases: a focal object silent for more than
        ``lease_steps`` steps has its queries suspended until it is heard
        from again (wired up only under fault injection)."""
        self.tracker.enable_leases(lease_steps)

    def _touch_lease(self, message: object) -> None:
        """Record a sign of life and reinstate a suspended focal object."""
        oid = getattr(message, "oid", None)
        if oid is None:
            return
        self._touch_lease_rec(
            oid, getattr(message, "state", None), getattr(message, "max_speed", None)
        )

    def _touch_lease_rec(
        self, oid: ObjectId, state: MotionState | None, max_speed: float | None
    ) -> None:
        """Record-level lease touch (shared by message and batch paths)."""
        self.tracker.touch(oid, self.transport.step)
        if not self.tracker.is_suspended(oid):
            return
        if state is not None:
            self._reinstate(oid, state, max_speed)
        else:
            # A stateless sign of life (heartbeat, result report): probe for
            # fresh motion state; the response re-enters on_uplink and
            # reinstates through the branch above.
            self.transport.send(oid, MotionStateRequest(oid=oid))

    def expire_leases(self, step: int) -> None:
        """Suspend the queries of focal objects whose lease ran out."""
        for oid in self.tracker.expired(step):
            self._suspend(oid)

    def _suspend(self, oid: ObjectId) -> None:
        """Withdraw a silent focal object's queries from active service.

        The queries stay in the SQT (marked ``suspended``) but leave the
        RQI and lose their results, the focal object leaves the FOT, and
        the monitoring regions are told to drop the queries.  Everything
        is undone by :meth:`_reinstate` when the object resurfaces.
        """
        left: list[tuple[QueryId, ObjectId]] = []
        with self.load.timed():
            entries = self.registry.queries_of_focal(oid)
            for entry in entries:
                self._rqi_remove(entry.qid, entry.mon_region)
                entry.suspended = True
                for member in sorted(entry.result):
                    left.append((entry.qid, member))
                entry.result.clear()
                self.load.ops += entry.mon_region.cell_count + 1
            groups = self.planner.groups(entries)
            self.tracker.mark_suspended(oid, self.tracker.get(oid).max_speed)
            self.tracker.remove(oid)
        for qid, member in left:
            self.registry.notify(qid, member, False)
        for mon_region, group in groups:
            self.planner.send(
                mon_region, QueryRemoveBroadcast(qids=tuple(e.qid for e in group))
            )

    def _reinstate(self, oid: ObjectId, state: MotionState, max_speed: float | None = None) -> None:
        """Bring a suspended focal object's queries back into service."""
        stored = self.tracker.pop_suspended(oid)
        if stored is None:
            return
        if max_speed is None:
            max_speed = stored
        with self.load.timed():
            self.tracker.upsert(oid, state, max_speed)
            curr_cell = self.grid.cell_index(state.pos)
            entries = self.registry.queries_of_focal(oid)
            for entry in entries:
                entry.curr_cell = curr_cell
                entry.mon_region = monitoring_region(self.grid, curr_cell, entry.region)
                self._rqi_add(entry.qid, entry.mon_region)
                entry.suspended = False
                self.load.ops += entry.mon_region.cell_count + 1
            groups = self.planner.groups(entries)
        for mon_region, group in groups:
            self.planner.send(
                mon_region,
                QueryInstallBroadcast(queries=tuple(self._descriptor(e) for e in group)),
            )

    def _on_resync_request(self, message: ResyncRequest) -> None:
        """Rebuild one object's protocol state after it detected a gap.

        The object is about to discard its LQT (and with it the is_target
        memory its differential reports build on), so the server purges it
        from every result first; the object's next full evaluation then
        re-reports the truth as a clean differential.  The reply carries
        the descriptors of every query alive at the object's cell.
        """
        oid = message.oid
        focal_updates: list[tuple[object, list[SqtEntry]]] = []
        with self.load.timed():
            if oid in self.tracker:
                self.tracker.upsert(oid, message.state, message.max_speed)
            if self.registry.is_focal(oid) and not self.tracker.is_suspended(oid):
                # Always push fresh descriptors to the monitoring regions:
                # the focal's relays during its blackout are gone, and the
                # watchers cannot detect that staleness on their own.
                entries = self.registry.queries_of_focal(oid)
                if any(e.curr_cell != message.cell for e in entries):
                    focal_updates = self._refresh_focal_regions(oid, message.cell)
                else:
                    focal_updates = [
                        (group[0].mon_region, group)
                        for _region, group in self.planner.groups(entries)
                    ]
            purged = self._purge_object(oid)
            epoch = self._bump_report_epoch(oid)
            self.load.ops += len(purged)
            queries = tuple(
                self._descriptor(self._entry_of(qid))
                for qid in sorted(self._queries_at(message.cell))
                if self._entry_of(qid).oid != oid
            )
            has_mq = self.registry.is_focal(oid) and not self.tracker.is_suspended(oid)
        for qid in purged:
            self.registry.notify(qid, oid, False)
        for combined_region, group in focal_updates:
            self.planner.send(
                combined_region,
                QueryUpdateBroadcast(queries=tuple(self._descriptor(e) for e in group)),
            )
        self.transport.send(
            oid, ResyncResponse(oid=oid, queries=queries, has_mq=has_mq, epoch=epoch)
        )

    def _on_motion_state(self, message: MotionStateResponse) -> None:
        with self.load.timed():
            self.tracker.upsert(message.oid, message.state, message.max_speed)
            self.load.ops += 1

    def _on_velocity_change(self, message: VelocityChangeReport) -> None:
        """Relay a focal object's significant velocity change (Section 3.4)."""
        self._on_velocity_change_rec(message.oid, message.state)

    def _on_velocity_change_rec(self, oid: ObjectId, state: MotionState) -> None:
        with self.load.timed():
            if oid not in self.tracker:
                return  # stale report from an object that lost its focal role
            self.tracker.update_state(oid, state)
            queries = self.registry.queries_of_focal(oid)
            groups = self.planner.groups(queries)
            self.load.ops += 1 + len(queries)
        lazy = self.config.propagation.is_lazy
        for mon_region, group in groups:
            descriptors = tuple(self._descriptor(e) for e in group) if lazy else ()
            self.planner.send(
                mon_region,
                VelocityChangeBroadcast(
                    oid=oid,
                    state=state,
                    qids=tuple(e.qid for e in group),
                    descriptors=descriptors,
                ),
            )

    def _on_cell_change(self, message: CellChangeReport) -> None:
        """Handle an object that crossed into a new grid cell (Section 3.5)."""
        self._on_cell_change_rec(
            message.oid, message.prev_cell, message.new_cell, message.state
        )

    def _on_cell_change_rec(
        self,
        oid: ObjectId,
        prev_cell: CellIndex,
        new_cell: CellIndex,
        state: MotionState | None,
    ) -> None:
        self._acquire_focal(oid)
        with self.load.timed():
            if state is not None and oid in self.tracker:
                self.tracker.update_state(oid, state)
            new_queries = self._new_queries_for(oid, prev_cell, new_cell)
            focal_updates: list[tuple[object, list[SqtEntry]]] = []
            if self.registry.is_focal(oid):
                focal_updates = self._refresh_focal_regions(oid, new_cell)

        if new_queries:
            self.transport.send(
                oid,
                QueryInstallList(
                    oid=oid,
                    queries=tuple(self._descriptor(e) for e in new_queries),
                ),
            )
        for combined_region, group in focal_updates:
            self.planner.send(
                combined_region,
                QueryUpdateBroadcast(queries=tuple(self._descriptor(e) for e in group)),
            )

    def _new_queries_for(
        self, oid: ObjectId, prev_cell: CellIndex, new_cell: CellIndex
    ) -> list[SqtEntry]:
        """Queries newly covering the object's cell (RQI difference)."""
        fresh = self._fresh_queries_at(prev_cell, new_cell)
        self.load.ops += 1
        # The object never monitors its own queries (it is their focal).
        return [self._entry_of(qid) for qid in fresh if self._entry_of(qid).oid != oid]

    def _refresh_focal_regions(
        self, oid: ObjectId, new_cell: CellIndex
    ) -> list[tuple[CellRange | CellRangeUnion | set[CellIndex], list[SqtEntry]]]:
        """Recompute monitoring regions of all queries bound to ``oid``.

        Returns, per broadcast group, the union of old and new monitoring
        regions (the paper broadcasts the query's new state to objects in
        the combined area) and the group's queries.  The union stays in
        range form (:class:`CellRangeUnion`) when the group shares one
        ``old | new`` pair -- the common case, since grouped queries share
        a monitoring region -- which keeps the station-cover memoization
        keyed on a hashable value and avoids materializing cell sets.
        """
        queries = self.registry.queries_of_focal(oid)
        combined_by_query: dict[int, CellRange | CellRangeUnion] = {}
        for entry in queries:
            old_region = entry.mon_region
            new_region = monitoring_region(self.grid, new_cell, entry.region)
            entry.curr_cell = new_cell
            entry.mon_region = new_region
            self._rqi_move(entry.qid, old_region, new_region)
            self.load.ops += old_region.cell_count + new_region.cell_count
            combined_by_query[entry.qid] = (
                old_region
                if old_region == new_region
                else CellRangeUnion(old_region, new_region)
            )
        groups = self.planner.groups(queries)
        out: list[tuple[CellRange | CellRangeUnion | set[CellIndex], list[SqtEntry]]] = []
        for _mon_region, group in groups:
            shapes = {combined_by_query[entry.qid] for entry in group}
            if len(shapes) == 1:
                out.append((shapes.pop(), group))
            else:
                # Queries grouped together but refreshed from different
                # region pairs (install raced a crossing): exact set union.
                cells: set[CellIndex] = set()
                for shape in shapes:
                    cells.update(shape)
                out.append((cells, group))
        return out

    def _on_result_change(self, message: ResultChangeReport) -> None:
        """Differentially update query results (Section 3.6)."""
        self._apply_result_record(message.oid, message.epoch, message.changes.items())

    def _apply_result_record(
        self, oid: ObjectId, epoch: int, items: "Iterable[tuple[QueryId, bool]]"
    ) -> None:
        applied: list[tuple[QueryId, bool]] = []
        with self.load.timed():
            if epoch < self._report_epoch(oid):
                # Sent before this object's last resync purge (only
                # possible under modeled latency): applying it would
                # resurrect memberships the purge just erased, and the
                # rebuilt LQT would never send the compensating removal.
                return
            for qid, is_target in items:
                entry = self._result_entry(qid)
                if entry is None:
                    continue  # query was removed while the report was in flight
                if entry.suspended:
                    continue  # lease-suspended: the report is stale by definition
                result = entry.result
                if is_target:
                    if oid not in result:
                        result.add(oid)
                        applied.append((qid, True))
                else:
                    if oid in result:
                        result.discard(oid)
                        applied.append((qid, False))
                self.load.ops += 1
        # Notify subscribers outside the timed section: the callbacks are
        # application code, not server protocol work.
        for qid, entered in applied:
            self.registry.notify(qid, oid, entered)

    def subscribe(self, qid: QueryId, callback: "ResultCallback") -> None:
        """Register a callback fired on every differential result change of
        query ``qid``: ``callback(qid, oid, entered)`` with ``entered`` True
        when the object joined the result and False when it left."""
        self.registry.subscribe(qid, callback)

    def unsubscribe(self, qid: QueryId, callback: "ResultCallback") -> None:
        """Remove a previously registered callback (no-op if absent)."""
        self.registry.unsubscribe(qid, callback)

    # ------------------------------------------------------------ helpers

    def _descriptor(self, entry: SqtEntry) -> "QueryDescriptor":
        # A descriptor is a pure function of the entry's immutable fields
        # (qid, oid, region, filter), its monitoring region, and the focal
        # object's state and max speed.  The cached copy is reused whenever
        # those inputs are the very objects/values it was built from --
        # motion states and cell ranges are frozen, so identity implies
        # equality and the cache can never go stale.
        focal = None if entry.is_static else self._focal_entry(entry.oid)
        cached = entry.desc_cache
        if cached is not None and cached.mon_region is entry.mon_region:
            if focal is None:
                return cached
            if (
                cached.focal_state is focal.state
                and cached.focal_max_speed == focal.max_speed
            ):
                return cached
        desc = self.planner.descriptor(entry, focal)
        entry.desc_cache = desc
        return desc

    def beacon_static_queries(self) -> int:
        """Re-broadcast every static query's descriptor to its monitoring
        region (lazy-propagation healing; see ``static_beacon_steps``).
        Returns the number of broadcasts sent."""
        with self.load.timed():
            static_entries = [e for e in self.registry.entries() if e.is_static]
            self.load.ops += len(static_entries)
        broadcasts = 0
        for entry in static_entries:
            broadcasts += self.planner.send(
                entry.mon_region, QueryInstallBroadcast(queries=(self._descriptor(entry),))
            )
        return broadcasts

    # --------------------------------------------------------- inspection

    def query_result(self, qid: QueryId) -> frozenset[ObjectId]:
        """The current (differentially maintained) result of a query."""
        return frozenset(self.registry.get(qid).result)

    def installed_queries(self) -> list[MovingQuery]:
        """All installed queries as MovingQuery values."""
        return [
            MovingQuery(qid=e.qid, oid=e.oid, region=e.region, filter=e.filter)
            for e in self.registry.entries()
        ]

    def nearby_queries(self, cell: CellIndex) -> frozenset[QueryId]:
        """Query ids whose monitoring region covers the cell."""
        return self.registry.queries_at(cell)

    def check_invariants(self) -> None:
        """Structural consistency between FOT, SQT, and RQI (used by tests)."""
        for oid in list(self.tracker.ids()):
            assert self.registry.is_focal(oid), f"FOT holds non-focal object {oid}"
        for entry in self.registry.entries():
            if entry.suspended:
                # Lease-suspended queries are deliberately out of the FOT
                # and RQI until their focal object resurfaces.
                assert not entry.result, f"suspended query {entry.qid} kept a result"
                continue
            if not entry.is_static:
                assert entry.oid in self.tracker, (
                    f"query {entry.qid}'s focal object {entry.oid} missing from FOT"
                )
            for cell in entry.mon_region:
                assert entry.qid in self._queries_at(cell), (
                    f"query {entry.qid} missing from RQI cell {cell}"
                )
        for cell in list(self.rqi.nonempty_cells()):
            for qid in self.rqi.queries_at(cell):
                try:
                    entry = self._entry_of(qid)
                except KeyError:
                    raise AssertionError(f"RQI holds removed query {qid}") from None
                assert entry.mon_region.contains(cell), (
                    f"RQI cell {cell} outside query {qid}'s monitoring region"
                )
