"""The MobiEyes server: a mediator between moving objects (paper Section 3).

The server never evaluates queries itself.  It maintains the focal object
table (FOT), the server query table (SQT), and the reverse query index
(RQI); installs queries; and relays significant focal-object changes
(velocity-vector changes and grid-cell crossings) to the objects inside the
affected monitoring regions using the minimal number of base-station
broadcasts.

Server load is measured as the wall-clock time spent inside the server's
handlers (the same "time spent executing the server side logic per time
step" measure the paper uses), plus a deterministic operation counter for
hardware-independent comparisons.
"""

from __future__ import annotations

import time
from typing import Callable

ResultCallback = Callable[["QueryId", "ObjectId", bool], None]

from repro.core.config import MobiEyesConfig
from repro.core.messages import (
    CellChangeReport,
    FocalRoleNotification,
    Heartbeat,
    MotionStateRequest,
    MotionStateResponse,
    QueryDescriptor,
    QueryInstallBroadcast,
    QueryInstallList,
    QueryRemoveBroadcast,
    QueryUpdateBroadcast,
    ResultChangeReport,
    ResyncRequest,
    ResyncResponse,
    VelocityChangeBroadcast,
    VelocityChangeReport,
)
from repro.core.query import MovingQuery, QueryId, QuerySpec
from repro.core.tables import FocalObjectTable, ReverseQueryIndex, ServerQueryTable, SqtEntry
from repro.core.transport import SimulatedTransport
from repro.grid import CellIndex, Grid, monitoring_region
from repro.mobility.model import MotionState, ObjectId


class MobiEyesServer:
    """Server-side half of the MobiEyes protocol."""

    def __init__(self, grid: Grid, transport: SimulatedTransport, config: MobiEyesConfig) -> None:
        self.grid = grid
        self.transport = transport
        self.config = config
        self.fot = FocalObjectTable()
        self.sqt = ServerQueryTable()
        self.rqi = ReverseQueryIndex()
        self._next_qid: QueryId = 1
        self._subscribers: dict[QueryId, list[ResultCallback]] = {}
        # Soft-state leases (enabled under fault injection): last step each
        # object was heard from, and the max-speed bound of focal objects
        # whose queries are currently suspended.
        self._lease_steps: int | None = None
        self._last_heard: dict[ObjectId, int] = {}
        self._suspended: dict[ObjectId, float] = {}
        # Load accounting: wall seconds and abstract operations this step.
        self.load_seconds = 0.0
        self.op_count = 0
        self._timer_depth = 0
        self._timer_start = 0.0
        transport.attach_server(self)

    # ------------------------------------------------------------- timing

    def _enter_timed(self) -> None:
        if self._timer_depth == 0:
            self._timer_start = time.perf_counter()
        self._timer_depth += 1

    def _exit_timed(self) -> None:
        self._timer_depth -= 1
        if self._timer_depth == 0:
            self.load_seconds += time.perf_counter() - self._timer_start

    def reset_load(self) -> tuple[float, int]:
        """Return and clear the accumulated (seconds, ops) load counters."""
        out = (self.load_seconds, self.op_count)
        self.load_seconds = 0.0
        self.op_count = 0
        return out

    # ------------------------------------------------------ query install

    def install_query(self, spec: QuerySpec) -> QueryId:
        """Install a moving or static query (paper Section 3.3).

        Static queries (``spec.oid is None``) skip all focal bookkeeping:
        no FOT entry, no role notification, and a monitoring region that is
        simply the grid cells intersecting the fixed region.
        """
        if spec.is_static:
            return self._install_static(spec)
        self._enter_timed()
        try:
            if spec.oid not in self.fot:
                # Contact the focal object for its position and velocity;
                # the response arrives synchronously through on_uplink.
                self._exit_timed()  # the round trip is not server work
                self.transport.send(spec.oid, MotionStateRequest(oid=spec.oid))
                self._enter_timed()
                if spec.oid not in self.fot:
                    raise KeyError(f"focal object {spec.oid} did not answer the state request")
            focal = self.fot.get(spec.oid)
            qid = self._next_qid
            self._next_qid += 1
            curr_cell = self.grid.cell_index(focal.state.pos)
            mon_region = monitoring_region(self.grid, curr_cell, spec.region)
            entry = SqtEntry(
                qid=qid,
                oid=spec.oid,
                region=spec.region,
                filter=spec.filter,
                curr_cell=curr_cell,
                mon_region=mon_region,
            )
            self.sqt.add(entry)
            self.rqi.add(qid, mon_region)
            self.op_count += mon_region.cell_count + 1
        finally:
            self._exit_timed()

        # Notify the focal object of its role, then install the query on
        # every object in the monitoring region through broadcasts.
        self.transport.send(spec.oid, FocalRoleNotification(oid=spec.oid, has_mq=True))
        self.transport.broadcast(
            mon_region, QueryInstallBroadcast(queries=(self._descriptor(entry),))
        )
        return qid

    def _install_static(self, spec: QuerySpec) -> QueryId:
        self._enter_timed()
        try:
            qid = self._next_qid
            self._next_qid += 1
            mon_region = self.grid.cells_intersecting(spec.region.bounding_rect())
            entry = SqtEntry(
                qid=qid,
                oid=None,
                region=spec.region,
                filter=spec.filter,
                curr_cell=None,
                mon_region=mon_region,
            )
            self.sqt.add(entry)
            self.rqi.add(qid, mon_region)
            self.op_count += mon_region.cell_count + 1
        finally:
            self._exit_timed()
        self.transport.broadcast(
            mon_region, QueryInstallBroadcast(queries=(self._descriptor(entry),))
        )
        return qid

    def remove_query(self, qid: QueryId) -> None:
        """Uninstall a query everywhere."""
        self._enter_timed()
        try:
            entry = self.sqt.remove(qid)
            self._subscribers.pop(qid, None)
            self.rqi.remove(qid, entry.mon_region)
            self.op_count += entry.mon_region.cell_count + 1
            focal_left = entry.is_static or self.sqt.is_focal(entry.oid)
            if not focal_left:
                if entry.oid in self.fot:
                    self.fot.remove(entry.oid)
                self._suspended.pop(entry.oid, None)
        finally:
            self._exit_timed()
        self.transport.broadcast(entry.mon_region, QueryRemoveBroadcast(qids=(qid,)))
        if not focal_left:
            self.transport.send(entry.oid, FocalRoleNotification(oid=entry.oid, has_mq=False))

    # ----------------------------------------------------------- handlers

    def on_uplink(self, message: object) -> None:
        """Dispatch an object -> server message."""
        if self._lease_steps is not None:
            self._touch_lease(message)
        if isinstance(message, VelocityChangeReport):
            self._on_velocity_change(message)
        elif isinstance(message, CellChangeReport):
            self._on_cell_change(message)
        elif isinstance(message, ResultChangeReport):
            self._on_result_change(message)
        elif isinstance(message, MotionStateResponse):
            self._on_motion_state(message)
        elif isinstance(message, ResyncRequest):
            self._on_resync_request(message)
        elif isinstance(message, Heartbeat):
            pass  # liveness only; the lease bookkeeping above did the work
        else:
            raise TypeError(f"unexpected uplink message {type(message).__name__}")

    # ------------------------------------------------- soft-state leases

    def enable_leases(self, lease_steps: int) -> None:
        """Turn on soft-state leases: a focal object silent for more than
        ``lease_steps`` steps has its queries suspended until it is heard
        from again (wired up only under fault injection)."""
        self._lease_steps = lease_steps

    def _touch_lease(self, message: object) -> None:
        """Record a sign of life and reinstate a suspended focal object."""
        oid = getattr(message, "oid", None)
        if oid is None:
            return
        self._last_heard[oid] = self.transport.step
        if oid not in self._suspended:
            return
        state = getattr(message, "state", None)
        if state is not None:
            self._reinstate(oid, state, getattr(message, "max_speed", None))
        else:
            # A stateless sign of life (heartbeat, result report): probe for
            # fresh motion state; the response re-enters on_uplink and
            # reinstates through the branch above.
            self.transport.send(oid, MotionStateRequest(oid=oid))

    def expire_leases(self, step: int) -> None:
        """Suspend the queries of focal objects whose lease ran out."""
        if self._lease_steps is None:
            return
        for oid in sorted(self.fot.ids()):
            if step - self._last_heard.get(oid, 0) > self._lease_steps:
                self._suspend(oid)

    def _suspend(self, oid: ObjectId) -> None:
        """Withdraw a silent focal object's queries from active service.

        The queries stay in the SQT (marked ``suspended``) but leave the
        RQI and lose their results, the focal object leaves the FOT, and
        the monitoring regions are told to drop the queries.  Everything
        is undone by :meth:`_reinstate` when the object resurfaces.
        """
        left: list[tuple[QueryId, ObjectId]] = []
        self._enter_timed()
        try:
            entries = self.sqt.queries_of_focal(oid)
            for entry in entries:
                self.rqi.remove(entry.qid, entry.mon_region)
                entry.suspended = True
                for member in sorted(entry.result):
                    left.append((entry.qid, member))
                entry.result.clear()
                self.op_count += entry.mon_region.cell_count + 1
            groups = self._broadcast_groups(entries)
            self._suspended[oid] = self.fot.get(oid).max_speed
            self.fot.remove(oid)
        finally:
            self._exit_timed()
        for qid, member in left:
            for callback in self._subscribers.get(qid, ()):
                callback(qid, member, False)
        for mon_region, group in groups:
            self.transport.broadcast(
                mon_region, QueryRemoveBroadcast(qids=tuple(e.qid for e in group))
            )

    def _reinstate(self, oid: ObjectId, state: MotionState, max_speed: float | None = None) -> None:
        """Bring a suspended focal object's queries back into service."""
        stored = self._suspended.pop(oid, None)
        if stored is None:
            return
        if max_speed is None:
            max_speed = stored
        self._enter_timed()
        try:
            self.fot.upsert(oid, state, max_speed)
            curr_cell = self.grid.cell_index(state.pos)
            entries = self.sqt.queries_of_focal(oid)
            for entry in entries:
                entry.curr_cell = curr_cell
                entry.mon_region = monitoring_region(self.grid, curr_cell, entry.region)
                self.rqi.add(entry.qid, entry.mon_region)
                entry.suspended = False
                self.op_count += entry.mon_region.cell_count + 1
            groups = self._broadcast_groups(entries)
        finally:
            self._exit_timed()
        for mon_region, group in groups:
            self.transport.broadcast(
                mon_region,
                QueryInstallBroadcast(queries=tuple(self._descriptor(e) for e in group)),
            )

    def _on_resync_request(self, message: ResyncRequest) -> None:
        """Rebuild one object's protocol state after it detected a gap.

        The object is about to discard its LQT (and with it the is_target
        memory its differential reports build on), so the server purges it
        from every result first; the object's next full evaluation then
        re-reports the truth as a clean differential.  The reply carries
        the descriptors of every query alive at the object's cell.
        """
        oid = message.oid
        focal_updates: list[tuple[set[CellIndex], list[SqtEntry]]] = []
        purged: list[QueryId] = []
        self._enter_timed()
        try:
            if oid in self.fot:
                self.fot.upsert(oid, message.state, message.max_speed)
            if self.sqt.is_focal(oid) and oid not in self._suspended:
                # Always push fresh descriptors to the monitoring regions:
                # the focal's relays during its blackout are gone, and the
                # watchers cannot detect that staleness on their own.
                entries = self.sqt.queries_of_focal(oid)
                if any(e.curr_cell != message.cell for e in entries):
                    focal_updates = self._refresh_focal_regions(oid, message.cell)
                else:
                    focal_updates = [
                        (group[0].mon_region, group)
                        for _region, group in self._broadcast_groups(entries)
                    ]
            for entry in self.sqt.entries():
                if oid in entry.result:
                    entry.result.discard(oid)
                    purged.append(entry.qid)
                    self.op_count += 1
            queries = tuple(
                self._descriptor(self.sqt.get(qid))
                for qid in sorted(self.rqi.queries_at(message.cell))
                if self.sqt.get(qid).oid != oid
            )
            has_mq = self.sqt.is_focal(oid) and oid not in self._suspended
        finally:
            self._exit_timed()
        for qid in purged:
            for callback in self._subscribers.get(qid, ()):
                callback(qid, oid, False)
        for combined_region, group in focal_updates:
            self.transport.broadcast(
                combined_region,
                QueryUpdateBroadcast(queries=tuple(self._descriptor(e) for e in group)),
            )
        self.transport.send(oid, ResyncResponse(oid=oid, queries=queries, has_mq=has_mq))

    def _on_motion_state(self, message: MotionStateResponse) -> None:
        self._enter_timed()
        try:
            self.fot.upsert(message.oid, message.state, message.max_speed)
            self.op_count += 1
        finally:
            self._exit_timed()

    def _on_velocity_change(self, message: VelocityChangeReport) -> None:
        """Relay a focal object's significant velocity change (Section 3.4)."""
        self._enter_timed()
        try:
            if message.oid not in self.fot:
                return  # stale report from an object that lost its focal role
            self.fot.update_state(message.oid, message.state)
            queries = self.sqt.queries_of_focal(message.oid)
            groups = self._broadcast_groups(queries)
            self.op_count += 1 + len(queries)
        finally:
            self._exit_timed()
        lazy = self.config.propagation.is_lazy
        for mon_region, group in groups:
            descriptors = tuple(self._descriptor(e) for e in group) if lazy else ()
            self.transport.broadcast(
                mon_region,
                VelocityChangeBroadcast(
                    oid=message.oid,
                    state=message.state,
                    qids=tuple(e.qid for e in group),
                    descriptors=descriptors,
                ),
            )

    def _on_cell_change(self, message: CellChangeReport) -> None:
        """Handle an object that crossed into a new grid cell (Section 3.5)."""
        self._enter_timed()
        try:
            if message.state is not None and message.oid in self.fot:
                self.fot.update_state(message.oid, message.state)
            new_queries = self._new_queries_for(message.oid, message.prev_cell, message.new_cell)
            focal_updates: list[tuple[set[CellIndex], list[SqtEntry]]] = []
            if self.sqt.is_focal(message.oid):
                focal_updates = self._refresh_focal_regions(message.oid, message.new_cell)
        finally:
            self._exit_timed()

        if new_queries:
            self.transport.send(
                message.oid,
                QueryInstallList(
                    oid=message.oid,
                    queries=tuple(self._descriptor(e) for e in new_queries),
                ),
            )
        for combined_region, group in focal_updates:
            self.transport.broadcast(
                combined_region,
                QueryUpdateBroadcast(queries=tuple(self._descriptor(e) for e in group)),
            )

    def _new_queries_for(
        self, oid: ObjectId, prev_cell: CellIndex, new_cell: CellIndex
    ) -> list[SqtEntry]:
        """Queries newly covering the object's cell (RQI difference)."""
        previous = self.rqi.queries_at(prev_cell)
        fresh = self.rqi.queries_at(new_cell) - previous
        self.op_count += 1
        # The object never monitors its own queries (it is their focal).
        return [self.sqt.get(qid) for qid in sorted(fresh) if self.sqt.get(qid).oid != oid]

    def _refresh_focal_regions(
        self, oid: ObjectId, new_cell: CellIndex
    ) -> list[tuple[set[CellIndex], list[SqtEntry]]]:
        """Recompute monitoring regions of all queries bound to ``oid``.

        Returns, per broadcast group, the union of old and new monitoring
        regions (the paper broadcasts the query's new state to objects in
        the combined area) and the group's queries.
        """
        queries = self.sqt.queries_of_focal(oid)
        combined_by_group: dict[int, set[CellIndex]] = {}
        for entry in queries:
            old_region = entry.mon_region
            new_region = monitoring_region(self.grid, new_cell, entry.region)
            entry.curr_cell = new_cell
            entry.mon_region = new_region
            self.rqi.move(entry.qid, old_region, new_region)
            self.op_count += old_region.cell_count + new_region.cell_count
            combined_by_group[entry.qid] = set(old_region) | set(new_region)
        groups = self._broadcast_groups(queries)
        out: list[tuple[set[CellIndex], list[SqtEntry]]] = []
        for _mon_region, group in groups:
            combined: set[CellIndex] = set()
            for entry in group:
                combined |= combined_by_group[entry.qid]
            out.append((combined, group))
        return out

    def _on_result_change(self, message: ResultChangeReport) -> None:
        """Differentially update query results (Section 3.6)."""
        applied: list[tuple[QueryId, bool]] = []
        self._enter_timed()
        try:
            for qid, is_target in message.changes.items():
                if qid not in self.sqt:
                    continue  # query was removed while the report was in flight
                entry = self.sqt.get(qid)
                if entry.suspended:
                    continue  # lease-suspended: the report is stale by definition
                result = entry.result
                if is_target:
                    if message.oid not in result:
                        result.add(message.oid)
                        applied.append((qid, True))
                else:
                    if message.oid in result:
                        result.discard(message.oid)
                        applied.append((qid, False))
                self.op_count += 1
        finally:
            self._exit_timed()
        # Notify subscribers outside the timed section: the callbacks are
        # application code, not server protocol work.
        for qid, entered in applied:
            for callback in self._subscribers.get(qid, ()):
                callback(qid, message.oid, entered)

    def subscribe(self, qid: QueryId, callback: "ResultCallback") -> None:
        """Register a callback fired on every differential result change of
        query ``qid``: ``callback(qid, oid, entered)`` with ``entered`` True
        when the object joined the result and False when it left."""
        if qid not in self.sqt:
            raise KeyError(f"unknown query {qid}")
        self._subscribers.setdefault(qid, []).append(callback)

    def unsubscribe(self, qid: QueryId, callback: "ResultCallback") -> None:
        """Remove a previously registered callback (no-op if absent)."""
        callbacks = self._subscribers.get(qid)
        if callbacks and callback in callbacks:
            callbacks.remove(callback)

    # ------------------------------------------------------------ helpers

    def _broadcast_groups(self, queries: list[SqtEntry]) -> list[tuple[object, list[SqtEntry]]]:
        """Group queries for broadcasting.

        With grouping enabled (Section 4.1), queries sharing the focal
        object *and* the monitoring region ride in one broadcast; groups are
        keyed by monitoring region.  With grouping disabled every query is
        broadcast separately.
        """
        if not self.config.grouping:
            return [(e.mon_region, [e]) for e in queries]
        grouped: dict[object, list[SqtEntry]] = {}
        for entry in queries:
            grouped.setdefault(entry.mon_region, []).append(entry)
        return list(grouped.items())

    def _descriptor(self, entry: SqtEntry) -> QueryDescriptor:
        if entry.is_static:
            return QueryDescriptor(
                qid=entry.qid,
                oid=None,
                region=entry.region,
                filter=entry.filter,
                focal_state=None,
                focal_max_speed=0.0,
                mon_region=entry.mon_region,
            )
        focal = self.fot.get(entry.oid)
        return QueryDescriptor(
            qid=entry.qid,
            oid=entry.oid,
            region=entry.region,
            filter=entry.filter,
            focal_state=focal.state,
            focal_max_speed=focal.max_speed,
            mon_region=entry.mon_region,
        )

    def beacon_static_queries(self) -> int:
        """Re-broadcast every static query's descriptor to its monitoring
        region (lazy-propagation healing; see ``static_beacon_steps``).
        Returns the number of broadcasts sent."""
        self._enter_timed()
        try:
            static_entries = [e for e in self.sqt.entries() if e.is_static]
            self.op_count += len(static_entries)
        finally:
            self._exit_timed()
        broadcasts = 0
        for entry in static_entries:
            broadcasts += self.transport.broadcast(
                entry.mon_region, QueryInstallBroadcast(queries=(self._descriptor(entry),))
            )
        return broadcasts

    # --------------------------------------------------------- inspection

    def query_result(self, qid: QueryId) -> frozenset[ObjectId]:
        """The current (differentially maintained) result of a query."""
        return frozenset(self.sqt.get(qid).result)

    def installed_queries(self) -> list[MovingQuery]:
        """All installed queries as MovingQuery values."""
        return [
            MovingQuery(qid=e.qid, oid=e.oid, region=e.region, filter=e.filter)
            for e in self.sqt.entries()
        ]

    def nearby_queries(self, cell: CellIndex) -> frozenset[QueryId]:
        """Query ids whose monitoring region covers the cell."""
        return self.rqi.queries_at(cell)

    def check_invariants(self) -> None:
        """Structural consistency between FOT, SQT, and RQI (used by tests)."""
        for oid in list(self.fot.ids()):
            assert self.sqt.is_focal(oid), f"FOT holds non-focal object {oid}"
        for entry in self.sqt.entries():
            if entry.suspended:
                # Lease-suspended queries are deliberately out of the FOT
                # and RQI until their focal object resurfaces.
                assert not entry.result, f"suspended query {entry.qid} kept a result"
                continue
            if not entry.is_static:
                assert entry.oid in self.fot, (
                    f"query {entry.qid}'s focal object {entry.oid} missing from FOT"
                )
            for cell in entry.mon_region:
                assert entry.qid in self.rqi.queries_at(cell), (
                    f"query {entry.qid} missing from RQI cell {cell}"
                )
        for cell in list(self.rqi.nonempty_cells()):
            for qid in self.rqi.queries_at(cell):
                assert qid in self.sqt, f"RQI holds removed query {qid}"
                assert self.sqt.get(qid).mon_region.contains(cell), (
                    f"RQI cell {cell} outside query {qid}'s monitoring region"
                )
