"""The MobiEyes server: a mediator between moving objects (paper Section 3).

The server never evaluates queries itself.  It maintains the focal object
table (FOT), the server query table (SQT), and the reverse query index
(RQI); installs queries; and relays significant focal-object changes
(velocity-vector changes and grid-cell crossings) to the objects inside the
affected monitoring regions using the minimal number of base-station
broadcasts.

Server load is measured as the wall-clock time spent inside the server's
handlers (the same "time spent executing the server side logic per time
step" measure the paper uses), plus a deterministic operation counter for
hardware-independent comparisons.
"""

from __future__ import annotations

import time
from typing import Callable

ResultCallback = Callable[["QueryId", "ObjectId", bool], None]

from repro.core.config import MobiEyesConfig
from repro.core.messages import (
    CellChangeReport,
    FocalRoleNotification,
    MotionStateRequest,
    MotionStateResponse,
    QueryDescriptor,
    QueryInstallBroadcast,
    QueryInstallList,
    QueryRemoveBroadcast,
    QueryUpdateBroadcast,
    ResultChangeReport,
    VelocityChangeBroadcast,
    VelocityChangeReport,
)
from repro.core.query import MovingQuery, QueryId, QuerySpec
from repro.core.tables import FocalObjectTable, ReverseQueryIndex, ServerQueryTable, SqtEntry
from repro.core.transport import SimulatedTransport
from repro.grid import CellIndex, Grid, monitoring_region
from repro.mobility.model import ObjectId


class MobiEyesServer:
    """Server-side half of the MobiEyes protocol."""

    def __init__(self, grid: Grid, transport: SimulatedTransport, config: MobiEyesConfig) -> None:
        self.grid = grid
        self.transport = transport
        self.config = config
        self.fot = FocalObjectTable()
        self.sqt = ServerQueryTable()
        self.rqi = ReverseQueryIndex()
        self._next_qid: QueryId = 1
        self._subscribers: dict[QueryId, list[ResultCallback]] = {}
        # Load accounting: wall seconds and abstract operations this step.
        self.load_seconds = 0.0
        self.op_count = 0
        self._timer_depth = 0
        self._timer_start = 0.0
        transport.attach_server(self)

    # ------------------------------------------------------------- timing

    def _enter_timed(self) -> None:
        if self._timer_depth == 0:
            self._timer_start = time.perf_counter()
        self._timer_depth += 1

    def _exit_timed(self) -> None:
        self._timer_depth -= 1
        if self._timer_depth == 0:
            self.load_seconds += time.perf_counter() - self._timer_start

    def reset_load(self) -> tuple[float, int]:
        """Return and clear the accumulated (seconds, ops) load counters."""
        out = (self.load_seconds, self.op_count)
        self.load_seconds = 0.0
        self.op_count = 0
        return out

    # ------------------------------------------------------ query install

    def install_query(self, spec: QuerySpec) -> QueryId:
        """Install a moving or static query (paper Section 3.3).

        Static queries (``spec.oid is None``) skip all focal bookkeeping:
        no FOT entry, no role notification, and a monitoring region that is
        simply the grid cells intersecting the fixed region.
        """
        if spec.is_static:
            return self._install_static(spec)
        self._enter_timed()
        try:
            if spec.oid not in self.fot:
                # Contact the focal object for its position and velocity;
                # the response arrives synchronously through on_uplink.
                self._exit_timed()  # the round trip is not server work
                self.transport.send(spec.oid, MotionStateRequest(oid=spec.oid))
                self._enter_timed()
                if spec.oid not in self.fot:
                    raise KeyError(f"focal object {spec.oid} did not answer the state request")
            focal = self.fot.get(spec.oid)
            qid = self._next_qid
            self._next_qid += 1
            curr_cell = self.grid.cell_index(focal.state.pos)
            mon_region = monitoring_region(self.grid, curr_cell, spec.region)
            entry = SqtEntry(
                qid=qid,
                oid=spec.oid,
                region=spec.region,
                filter=spec.filter,
                curr_cell=curr_cell,
                mon_region=mon_region,
            )
            self.sqt.add(entry)
            self.rqi.add(qid, mon_region)
            self.op_count += mon_region.cell_count + 1
        finally:
            self._exit_timed()

        # Notify the focal object of its role, then install the query on
        # every object in the monitoring region through broadcasts.
        self.transport.send(spec.oid, FocalRoleNotification(oid=spec.oid, has_mq=True))
        self.transport.broadcast(
            mon_region, QueryInstallBroadcast(queries=(self._descriptor(entry),))
        )
        return qid

    def _install_static(self, spec: QuerySpec) -> QueryId:
        self._enter_timed()
        try:
            qid = self._next_qid
            self._next_qid += 1
            mon_region = self.grid.cells_intersecting(spec.region.bounding_rect())
            entry = SqtEntry(
                qid=qid,
                oid=None,
                region=spec.region,
                filter=spec.filter,
                curr_cell=None,
                mon_region=mon_region,
            )
            self.sqt.add(entry)
            self.rqi.add(qid, mon_region)
            self.op_count += mon_region.cell_count + 1
        finally:
            self._exit_timed()
        self.transport.broadcast(
            mon_region, QueryInstallBroadcast(queries=(self._descriptor(entry),))
        )
        return qid

    def remove_query(self, qid: QueryId) -> None:
        """Uninstall a query everywhere."""
        self._enter_timed()
        try:
            entry = self.sqt.remove(qid)
            self._subscribers.pop(qid, None)
            self.rqi.remove(qid, entry.mon_region)
            self.op_count += entry.mon_region.cell_count + 1
            focal_left = entry.is_static or self.sqt.is_focal(entry.oid)
            if not focal_left:
                self.fot.remove(entry.oid)
        finally:
            self._exit_timed()
        self.transport.broadcast(entry.mon_region, QueryRemoveBroadcast(qids=(qid,)))
        if not focal_left:
            self.transport.send(entry.oid, FocalRoleNotification(oid=entry.oid, has_mq=False))

    # ----------------------------------------------------------- handlers

    def on_uplink(self, message: object) -> None:
        """Dispatch an object -> server message."""
        if isinstance(message, VelocityChangeReport):
            self._on_velocity_change(message)
        elif isinstance(message, CellChangeReport):
            self._on_cell_change(message)
        elif isinstance(message, ResultChangeReport):
            self._on_result_change(message)
        elif isinstance(message, MotionStateResponse):
            self._on_motion_state(message)
        else:
            raise TypeError(f"unexpected uplink message {type(message).__name__}")

    def _on_motion_state(self, message: MotionStateResponse) -> None:
        self._enter_timed()
        try:
            self.fot.upsert(message.oid, message.state, message.max_speed)
            self.op_count += 1
        finally:
            self._exit_timed()

    def _on_velocity_change(self, message: VelocityChangeReport) -> None:
        """Relay a focal object's significant velocity change (Section 3.4)."""
        self._enter_timed()
        try:
            if message.oid not in self.fot:
                return  # stale report from an object that lost its focal role
            self.fot.update_state(message.oid, message.state)
            queries = self.sqt.queries_of_focal(message.oid)
            groups = self._broadcast_groups(queries)
            self.op_count += 1 + len(queries)
        finally:
            self._exit_timed()
        lazy = self.config.propagation.is_lazy
        for mon_region, group in groups:
            descriptors = tuple(self._descriptor(e) for e in group) if lazy else ()
            self.transport.broadcast(
                mon_region,
                VelocityChangeBroadcast(
                    oid=message.oid,
                    state=message.state,
                    qids=tuple(e.qid for e in group),
                    descriptors=descriptors,
                ),
            )

    def _on_cell_change(self, message: CellChangeReport) -> None:
        """Handle an object that crossed into a new grid cell (Section 3.5)."""
        self._enter_timed()
        try:
            if message.state is not None and message.oid in self.fot:
                self.fot.update_state(message.oid, message.state)
            new_queries = self._new_queries_for(message.oid, message.prev_cell, message.new_cell)
            focal_updates: list[tuple[set[CellIndex], list[SqtEntry]]] = []
            if self.sqt.is_focal(message.oid):
                focal_updates = self._refresh_focal_regions(message.oid, message.new_cell)
        finally:
            self._exit_timed()

        if new_queries:
            self.transport.send(
                message.oid,
                QueryInstallList(
                    oid=message.oid,
                    queries=tuple(self._descriptor(e) for e in new_queries),
                ),
            )
        for combined_region, group in focal_updates:
            self.transport.broadcast(
                combined_region,
                QueryUpdateBroadcast(queries=tuple(self._descriptor(e) for e in group)),
            )

    def _new_queries_for(
        self, oid: ObjectId, prev_cell: CellIndex, new_cell: CellIndex
    ) -> list[SqtEntry]:
        """Queries newly covering the object's cell (RQI difference)."""
        previous = self.rqi.queries_at(prev_cell)
        fresh = self.rqi.queries_at(new_cell) - previous
        self.op_count += 1
        # The object never monitors its own queries (it is their focal).
        return [self.sqt.get(qid) for qid in sorted(fresh) if self.sqt.get(qid).oid != oid]

    def _refresh_focal_regions(
        self, oid: ObjectId, new_cell: CellIndex
    ) -> list[tuple[set[CellIndex], list[SqtEntry]]]:
        """Recompute monitoring regions of all queries bound to ``oid``.

        Returns, per broadcast group, the union of old and new monitoring
        regions (the paper broadcasts the query's new state to objects in
        the combined area) and the group's queries.
        """
        queries = self.sqt.queries_of_focal(oid)
        combined_by_group: dict[int, set[CellIndex]] = {}
        for entry in queries:
            old_region = entry.mon_region
            new_region = monitoring_region(self.grid, new_cell, entry.region)
            entry.curr_cell = new_cell
            entry.mon_region = new_region
            self.rqi.move(entry.qid, old_region, new_region)
            self.op_count += old_region.cell_count + new_region.cell_count
            combined_by_group[entry.qid] = set(old_region) | set(new_region)
        groups = self._broadcast_groups(queries)
        out: list[tuple[set[CellIndex], list[SqtEntry]]] = []
        for _mon_region, group in groups:
            combined: set[CellIndex] = set()
            for entry in group:
                combined |= combined_by_group[entry.qid]
            out.append((combined, group))
        return out

    def _on_result_change(self, message: ResultChangeReport) -> None:
        """Differentially update query results (Section 3.6)."""
        applied: list[tuple[QueryId, bool]] = []
        self._enter_timed()
        try:
            for qid, is_target in message.changes.items():
                if qid not in self.sqt:
                    continue  # query was removed while the report was in flight
                result = self.sqt.get(qid).result
                if is_target:
                    if message.oid not in result:
                        result.add(message.oid)
                        applied.append((qid, True))
                else:
                    if message.oid in result:
                        result.discard(message.oid)
                        applied.append((qid, False))
                self.op_count += 1
        finally:
            self._exit_timed()
        # Notify subscribers outside the timed section: the callbacks are
        # application code, not server protocol work.
        for qid, entered in applied:
            for callback in self._subscribers.get(qid, ()):
                callback(qid, message.oid, entered)

    def subscribe(self, qid: QueryId, callback: "ResultCallback") -> None:
        """Register a callback fired on every differential result change of
        query ``qid``: ``callback(qid, oid, entered)`` with ``entered`` True
        when the object joined the result and False when it left."""
        if qid not in self.sqt:
            raise KeyError(f"unknown query {qid}")
        self._subscribers.setdefault(qid, []).append(callback)

    def unsubscribe(self, qid: QueryId, callback: "ResultCallback") -> None:
        """Remove a previously registered callback (no-op if absent)."""
        callbacks = self._subscribers.get(qid)
        if callbacks and callback in callbacks:
            callbacks.remove(callback)

    # ------------------------------------------------------------ helpers

    def _broadcast_groups(self, queries: list[SqtEntry]) -> list[tuple[object, list[SqtEntry]]]:
        """Group queries for broadcasting.

        With grouping enabled (Section 4.1), queries sharing the focal
        object *and* the monitoring region ride in one broadcast; groups are
        keyed by monitoring region.  With grouping disabled every query is
        broadcast separately.
        """
        if not self.config.grouping:
            return [(e.mon_region, [e]) for e in queries]
        grouped: dict[object, list[SqtEntry]] = {}
        for entry in queries:
            grouped.setdefault(entry.mon_region, []).append(entry)
        return list(grouped.items())

    def _descriptor(self, entry: SqtEntry) -> QueryDescriptor:
        if entry.is_static:
            return QueryDescriptor(
                qid=entry.qid,
                oid=None,
                region=entry.region,
                filter=entry.filter,
                focal_state=None,
                focal_max_speed=0.0,
                mon_region=entry.mon_region,
            )
        focal = self.fot.get(entry.oid)
        return QueryDescriptor(
            qid=entry.qid,
            oid=entry.oid,
            region=entry.region,
            filter=entry.filter,
            focal_state=focal.state,
            focal_max_speed=focal.max_speed,
            mon_region=entry.mon_region,
        )

    def beacon_static_queries(self) -> int:
        """Re-broadcast every static query's descriptor to its monitoring
        region (lazy-propagation healing; see ``static_beacon_steps``).
        Returns the number of broadcasts sent."""
        self._enter_timed()
        try:
            static_entries = [e for e in self.sqt.entries() if e.is_static]
            self.op_count += len(static_entries)
        finally:
            self._exit_timed()
        broadcasts = 0
        for entry in static_entries:
            broadcasts += self.transport.broadcast(
                entry.mon_region, QueryInstallBroadcast(queries=(self._descriptor(entry),))
            )
        return broadcasts

    # --------------------------------------------------------- inspection

    def query_result(self, qid: QueryId) -> frozenset[ObjectId]:
        """The current (differentially maintained) result of a query."""
        return frozenset(self.sqt.get(qid).result)

    def installed_queries(self) -> list[MovingQuery]:
        """All installed queries as MovingQuery values."""
        return [
            MovingQuery(qid=e.qid, oid=e.oid, region=e.region, filter=e.filter)
            for e in self.sqt.entries()
        ]

    def nearby_queries(self, cell: CellIndex) -> frozenset[QueryId]:
        """Query ids whose monitoring region covers the cell."""
        return self.rqi.queries_at(cell)

    def check_invariants(self) -> None:
        """Structural consistency between FOT, SQT, and RQI (used by tests)."""
        for oid in list(self.fot.ids()):
            assert self.sqt.is_focal(oid), f"FOT holds non-focal object {oid}"
        for entry in self.sqt.entries():
            if not entry.is_static:
                assert entry.oid in self.fot, (
                    f"query {entry.qid}'s focal object {entry.oid} missing from FOT"
                )
            for cell in entry.mon_region:
                assert entry.qid in self.rqi.queries_at(cell), (
                    f"query {entry.qid} missing from RQI cell {cell}"
                )
        for cell in list(self.rqi.nonempty_cells()):
            for qid in self.rqi.queries_at(cell):
                assert qid in self.sqt, f"RQI holds removed query {qid}"
                assert self.sqt.get(qid).mon_region.contains(cell), (
                    f"RQI cell {cell} outside query {qid}'s monitoring region"
                )
