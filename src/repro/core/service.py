"""Long-running service runtime over :class:`MobiEyesSystem`.

Everything below this module runs as a finite stepped simulation; the
service turns it into an *open-ended* deployment.  A
:class:`MobiEyesService` wraps a system behind a queue-driven ingest API
-- :meth:`submit_update`, :meth:`install_query`, :meth:`remove_query` --
whose operations are accepted at any time and applied *between* steps, at
the next tick's admission slot.  The ticker (:meth:`tick`, :meth:`run`)
advances steps indefinitely; the system's own cadence checkpoints
(``checkpoint_every_steps``, PR 7's :mod:`repro.core.snapshot`) are the
durability story, and snapshot v3 carries the ingest queue itself so a
restored service resumes with the same pending work.

Admission control and backpressure:

- the ingest queue is *bounded* (``ingest_queue_limit``; 0 derives the
  bound from the admission budget times the latency pipeline's depth).
  A submission that would overflow is **rejected**: its ticket comes back
  ``"rejected"`` and ``backpressure_rejects`` counts it -- never a silent
  drop;
- each tick admits at most ``ingest_budget_per_step`` operations (0 =
  everything queued); the rest stay queued for later ticks (a *deferral*,
  also counted);
- with ``ingest_inflight_limit`` set, a tick whose transport backlog
  exceeds the limit admits nothing at all -- the queue drains only as
  fast as the network does.

Determinism contract (the correctness bar the tests grade): a service
run whose ingest script is replayed at fixed steps is **bit-identical**
to a plain simulation that makes the same ``apply_external_update`` /
``install_query`` / ``remove_query`` calls between the same steps --
the service adds scheduling, never behavior.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.core.query import QueryId, QuerySpec
from repro.geometry import Point, Vector
from repro.mobility.model import ObjectId

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import MobiEyesSystem

#: Ingest operation kinds.
OP_UPDATE = "update"
OP_INSTALL = "install"
OP_REMOVE = "remove"


class IngestTicket:
    """The caller's handle on one submitted operation.

    ``status`` moves ``"queued" -> "applied"`` (or is ``"rejected"``
    immediately at submission when the queue is full); for installs,
    ``qid`` resolves to the server-assigned query id at apply time.
    """

    __slots__ = ("kind", "status", "qid", "payload")

    def __init__(self, kind: str, payload: tuple) -> None:
        self.kind = kind
        self.payload = payload
        self.status = "queued"
        self.qid: Optional[QueryId] = None

    @property
    def applied(self) -> bool:
        return self.status == "applied"

    @property
    def rejected(self) -> bool:
        return self.status == "rejected"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IngestTicket({self.kind!r}, {self.status!r}, qid={self.qid})"


class MobiEyesService:
    """Queue-driven, indefinitely running front end of a MobiEyes system."""

    def __init__(self, system: "MobiEyesSystem") -> None:
        self.system = system
        config = system.config
        self.budget = config.ingest_budget_per_step
        limit = config.ingest_queue_limit
        if limit == 0 and self.budget > 0:
            # Derive the bound from what the pipeline can absorb: one
            # admission budget per step the latency model keeps a message
            # in flight (plus the current step itself).
            depth = 1 + (
                config.uplink_latency_steps
                + config.downlink_latency_steps
                + config.latency_jitter_steps
            )
            limit = self.budget * depth
        #: Queue bound; 0 means unbounded (no budget to derive from).
        self.queue_limit = limit
        self.inflight_limit = config.ingest_inflight_limit
        self._queue: deque[IngestTicket] = deque()
        self._running = False
        # Lifetime accounting.  Invariant (tested):
        #   submitted == applied + rejected + len(queue).
        self.submitted = 0
        self.applied = 0
        self.backpressure_rejects = 0
        self.deferred_ops = 0
        self.deferred_ticks = 0
        self.ticks = 0
        # A checkpoint taken mid-service carries the queue; a system
        # restored from one parks it here for the next service attach.
        pending = getattr(system, "_pending_service_state", None)
        if pending is not None:
            self._restore_state(pending)
            system._pending_service_state = None
        system._service = self

    # ------------------------------------------------------------- ingest

    def _enqueue(self, ticket: IngestTicket) -> IngestTicket:
        self.submitted += 1
        if self.queue_limit and len(self._queue) >= self.queue_limit:
            ticket.status = "rejected"
            self.backpressure_rejects += 1
            return ticket
        self._queue.append(ticket)
        return ticket

    def submit_update(self, oid: ObjectId, pos: Point, vel: Vector) -> IngestTicket:
        """Queue an externally reported position/velocity for one object."""
        return self._enqueue(IngestTicket(OP_UPDATE, (oid, pos, vel)))

    def install_query(self, spec: QuerySpec) -> IngestTicket:
        """Queue a runtime query install; the ticket's ``qid`` resolves
        when the install is admitted."""
        return self._enqueue(IngestTicket(OP_INSTALL, (spec,)))

    def remove_query(self, ref: "QueryId | IngestTicket") -> IngestTicket:
        """Queue a runtime query removal.

        ``ref`` is either a concrete query id or the install's own
        ticket (FIFO admission guarantees the install lands first).
        """
        return self._enqueue(IngestTicket(OP_REMOVE, (ref,)))

    @property
    def queue_depth(self) -> int:
        """Operations currently waiting for admission."""
        return len(self._queue)

    # ------------------------------------------------------------- ticker

    def _apply(self, ticket: IngestTicket) -> None:
        system = self.system
        if ticket.kind == OP_UPDATE:
            oid, pos, vel = ticket.payload
            system.apply_external_update(oid, pos, vel)
        elif ticket.kind == OP_INSTALL:
            (spec,) = ticket.payload
            ticket.qid = system.install_query(spec)
        else:
            (ref,) = ticket.payload
            qid = ref.qid if isinstance(ref, IngestTicket) else ref
            if qid is None:
                raise ValueError(
                    "remove_query ticket references an install that was never applied"
                )
            system.remove_query(qid)
            ticket.qid = qid
        ticket.status = "applied"
        self.applied += 1

    def admit(self) -> int:
        """Pump one admission slot: apply queued operations up to the
        budget (FIFO), honoring the inflight gate.  Returns how many
        operations were applied."""
        if (
            self.inflight_limit
            and self.system.transport.pending_count() > self.inflight_limit
        ):
            # Transport backlog over budget: admit nothing, let delivery
            # catch up.  The queued work is deferred, not lost.
            self.deferred_ticks += 1
            self.deferred_ops += len(self._queue)
            return 0
        admitted = 0
        while self._queue and (self.budget == 0 or admitted < self.budget):
            self._apply(self._queue.popleft())
            admitted += 1
        if self._queue:
            self.deferred_ops += len(self._queue)
        return admitted

    def tick(self) -> int:
        """One service heartbeat: admit queued ingest, then advance one
        simulation step.  Returns the step index reached."""
        self.admit()
        self.ticks += 1
        return self.system.step()

    def run(self, steps: int | None = None) -> int:
        """Drive the ticker for ``steps`` ticks, or indefinitely when
        ``steps`` is None (until :meth:`stop` is called from a callback
        or another thread).  Returns the final step index."""
        self._running = True
        last = self.system.clock.step
        try:
            remaining = steps
            while self._running and (remaining is None or remaining > 0):
                last = self.tick()
                if remaining is not None:
                    remaining -= 1
        finally:
            self._running = False
        return last

    def stop(self) -> None:
        """Ask a running ticker to stop after the current tick."""
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    # ------------------------------------------------------------ reports

    def counters(self) -> dict:
        """Accounting snapshot: every submission is applied, rejected, or
        still queued -- nothing is silently dropped."""
        return {
            "submitted": self.submitted,
            "applied": self.applied,
            "backpressure_rejects": self.backpressure_rejects,
            "queued": len(self._queue),
            "deferred_ops": self.deferred_ops,
            "deferred_ticks": self.deferred_ticks,
            "ticks": self.ticks,
        }

    def check_accounting(self) -> None:
        """The no-silent-drop invariant."""
        assert self.submitted == self.applied + self.backpressure_rejects + len(
            self._queue
        ), (
            f"ingest accounting leak: submitted={self.submitted} != "
            f"applied={self.applied} + rejects={self.backpressure_rejects} + "
            f"queued={len(self._queue)}"
        )

    # -------------------------------------------------------- checkpoints

    def state(self) -> dict:
        """Checkpointable service state (the queue and the counters).

        Queued operations serialize by value; a queued removal that
        references a queued install's ticket serializes as the install's
        queue position, so the restored queue re-links the same pair.
        """
        install_pos = {
            id(t): i for i, t in enumerate(self._queue) if t.kind == OP_INSTALL
        }
        ops: list[tuple] = []
        for ticket in self._queue:
            if ticket.kind == OP_REMOVE:
                (ref,) = ticket.payload
                if isinstance(ref, IngestTicket):
                    if ref.qid is not None:
                        ops.append((OP_REMOVE, "qid", ref.qid))
                    elif id(ref) in install_pos:
                        ops.append((OP_REMOVE, "pos", install_pos[id(ref)]))
                    else:
                        raise ValueError(
                            "queued removal references an install ticket that is "
                            "neither applied nor queued"
                        )
                else:
                    ops.append((OP_REMOVE, "qid", ref))
            else:
                ops.append((ticket.kind, ticket.payload))
        return {
            "ops": ops,
            "submitted": self.submitted,
            "applied": self.applied,
            "backpressure_rejects": self.backpressure_rejects,
            "deferred_ops": self.deferred_ops,
            "deferred_ticks": self.deferred_ticks,
            "ticks": self.ticks,
        }

    def _restore_state(self, state: dict) -> None:
        self._queue.clear()
        tickets: list[IngestTicket] = []
        for op in state["ops"]:
            if op[0] == OP_REMOVE:
                _, how, value = op
                ref = tickets[value] if how == "pos" else value
                ticket = IngestTicket(OP_REMOVE, (ref,))
            else:
                kind, payload = op
                ticket = IngestTicket(kind, tuple(payload))
            tickets.append(ticket)
            self._queue.append(ticket)
        self.submitted = state["submitted"]
        self.applied = state["applied"]
        self.backpressure_rejects = state["backpressure_rejects"]
        self.deferred_ops = state["deferred_ops"]
        self.deferred_ticks = state["deferred_ticks"]
        self.ticks = state["ticks"]

    # ----------------------------------------------------------- teardown

    def close(self) -> None:
        """Close the wrapped system (idempotent)."""
        self.system.close()

    def __enter__(self) -> "MobiEyesService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
