"""One grid-partitioned server shard behind the coordinator.

A :class:`ServerShard` *is* a :class:`~repro.core.server.MobiEyesServer`
bound to a contiguous stripe of grid columns: it runs the unmodified
protocol handlers and overrides only the cross-shard hooks, resolving
through its :class:`~repro.core.coordinator.Coordinator` whatever leaves
its own partition:

- RQI registrations are *cell-owned*: a monitoring region spanning the
  partition is split (:meth:`GridPartitioner.split`) and each shard's RQI
  holds its own rectangular portion, while the SQT entry lives only at
  the owning shard (single-owner replication of the descriptor's home).
- Query ids come from the coordinator's global allocator.
- Focal state, SQT entries, and result purges that live elsewhere are
  fetched through the coordinator's directories.
- A grid-cell crossing into this shard's territory triggers a focal
  handoff (:meth:`Coordinator.migrate_focal`) before the normal cell
  change handling runs, so the focal's queries and FOT entry are local
  by the time the monitoring regions are refreshed.

The shard never attaches itself to the transport; the coordinator is the
uplink sink and dispatches to shards by cell.  Under a nonzero
:class:`~repro.network.latency.LatencyModel` this means deferred uplinks
drain from the transport queue into the coordinator, which routes to the
owning shard within the same delivery slot -- shard count never adds
hops, so a 1-, 2-, or 4-shard run sees identical message timing.

Under a parallel shard executor (``MobiEyesConfig(shard_workers=N)``)
a shard additionally serves as the unit of parallelism: inside a
parallel region exactly one worker touches this shard's tables (SQT
result sets, lease tracker, registry), so the handlers need no locks;
anything cross-shard happens in the coordinator's fork (the split) or
at the barrier (the ordered merge) -- see
:mod:`repro.core.executor`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.config import MobiEyesConfig
from repro.core.focal import FocalTracker
from repro.core.partition import GridPartitioner
from repro.core.query import QueryId
from repro.core.registry import QueryRegistry
from repro.core.server import MobiEyesServer
from repro.core.tables import FotEntry, SqtEntry
from repro.core.transport import SimulatedTransport
from repro.grid import CellIndex, CellRange, Grid
from repro.mobility.model import ObjectId

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.coordinator import Coordinator


class ServerShard(MobiEyesServer):
    """A MobiEyes server owning one contiguous stripe of grid columns."""

    def __init__(
        self,
        grid: Grid,
        transport: SimulatedTransport,
        config: MobiEyesConfig,
        coordinator: "Coordinator",
        shard_id: int,
        partitioner: GridPartitioner,
        *,
        registry: QueryRegistry,
        tracker: FocalTracker,
    ) -> None:
        super().__init__(
            grid, transport, config, registry=registry, tracker=tracker, attach=False
        )
        self.coordinator = coordinator
        self.shard_id = shard_id
        self.partitioner = partitioner

    # -------------------------------------------------- cross-shard hooks

    def _allocate_qid(self) -> QueryId:
        return self.coordinator.allocate_qid()

    def _focal_entry(self, oid: ObjectId) -> FotEntry:
        if oid in self.tracker:
            return self.tracker.get(oid)
        return self.coordinator.focal_entry(oid)

    def _queries_at(self, cell: CellIndex) -> frozenset[QueryId]:
        if self.partitioner.owns(self.shard_id, cell):
            return self.registry.queries_at(cell)
        return self.coordinator.queries_at(cell)

    def _fresh_queries_at(self, prev_cell: CellIndex, new_cell: CellIndex) -> list[QueryId]:
        # Either cell may live on a foreign stripe; resolve both through
        # the owner lookup instead of the monolith's direct bucket reads.
        return sorted(self._queries_at(new_cell) - self._queries_at(prev_cell))

    def _entry_of(self, qid: QueryId) -> SqtEntry:
        if qid in self.registry:
            return self.registry.get(qid)
        return self.coordinator.entry_of(qid)

    def _result_entry(self, qid: QueryId) -> SqtEntry | None:
        if qid in self.registry:
            return self.registry.get(qid)
        return self.coordinator.result_entry(qid)

    def _rqi_add(self, qid: QueryId, region: CellRange) -> None:
        for shard, portion in self.partitioner.split(region):
            self.coordinator.shards[shard].registry.register_cells(qid, portion)

    def _rqi_remove(self, qid: QueryId, region: CellRange) -> None:
        for shard, portion in self.partitioner.split(region):
            self.coordinator.shards[shard].registry.unregister_cells(qid, portion)

    def _rqi_move(self, qid: QueryId, old: CellRange, new: CellRange) -> None:
        self._rqi_remove(qid, old)
        self._rqi_add(qid, new)

    def _purge_object(self, oid: ObjectId) -> list[QueryId]:
        return self.coordinator.purge_object(oid)

    def _report_epoch(self, oid: ObjectId) -> int:
        return self.coordinator.report_epoch(oid)

    def _bump_report_epoch(self, oid: ObjectId) -> int:
        return self.coordinator.bump_report_epoch(oid)

    def _acquire_focal(self, oid: ObjectId) -> None:
        self.coordinator.migrate_focal(oid, self.shard_id)

    # --------------------------------------------------------- inspection

    def check_invariants(self) -> None:
        """Per-shard structural consistency, including the partition rule
        that this shard's RQI only holds cells of its own column stripe."""
        super().check_invariants()
        for cell in self.registry.rqi.nonempty_cells():
            assert self.partitioner.owns(self.shard_id, cell), (
                f"shard {self.shard_id} RQI holds foreign cell {cell}"
            )
