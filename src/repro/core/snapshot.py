"""Versioned checkpoint/restore of a full :class:`MobiEyesSystem`.

A checkpoint captures, at a step boundary, everything the next step's
outcome depends on: the server tables (SQT / RQI / FOT, per shard),
soft-state lease and suspension records, every client's LQT and
recovery scalars, the transport's deferred-envelope queue and sequence
counters, the reliability layer's in-flight exchanges and ledgers, the
fault injector's channel RNGs and drop accounting, the message ledger,
the metrics cursors, and the simulation RNG streams.  Restoring it
builds a *fresh* system -- executors, callbacks, watchers, and fastpath
mirrors are reconstructed by the ordinary constructor -- and grafts the
captured state back in through the same table APIs the live protocol
uses, so ``restore(checkpoint(system))`` resumes bit-identically on
both engines at any shard or worker count.

Capture strategy: all live objects are gathered into **one** payload
dict and isolated with a single :func:`copy.deepcopy`.  The deepcopy
memo preserves every identity relation *inside* the payload -- a queued
:class:`~repro.core.transport.Envelope`'s ``context`` stays the very
``_Exchange`` the reliability layer keys in ``_pending``, an
``SqtEntry``'s descriptor cache stays identity-valid against its
monitoring region and focal state, and the injector's channel RNGs keep
any sharing they had -- while severing every reference to the live
system.  Pickling the system wholesale is not an option (coordinator
directory callbacks, client watcher hooks, and executor pools are
closures); the payload holds only plain data, so a checkpoint also
serializes with :meth:`Checkpoint.to_bytes`.

What is deliberately **not** captured:

- result-change *subscriptions* -- callbacks are code, not state; a
  system with live subscribers refuses to checkpoint;
- trace logs (refuse) and custom motion models (refuse): both carry
  arbitrary user state this module cannot promise to rebuild;
- the fastpath's arrays and mirrors: derived state, rebuilt by the
  constructor from the restored objects and pushed back in sync by the
  LQT install / relayed-state watcher hooks during the graft.
"""

from __future__ import annotations

import copy
import hashlib
import json
import pickle
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import MobiEyesSystem

#: Wire-format version of :class:`Checkpoint` payloads.  Bump on any
#: change to the payload layout; :func:`from_bytes` refuses mismatches.
#: v2 added the partition map (boundary layout + epoch), the rebalance
#: policy state and log, per-client partition epochs, and the transport's
#: stale-epoch reroute counter.  v3 added the elastic fleet shape (stripe
#: order, slot count, retired slots), the elastic policy's id-keyed
#: streaks, and the service runtime's ingest queue and counters.
CHECKPOINT_VERSION = 3


@dataclass(slots=True)
class Checkpoint:
    """One captured system state: a version tag plus the payload dict.

    The payload is private to this module -- treat a checkpoint as an
    opaque token to hand back to :func:`restore` (or persist with
    :meth:`to_bytes` / :func:`from_bytes`).
    """

    version: int
    payload: dict[str, Any]

    def to_bytes(self) -> bytes:
        """Serialize for persistence (pickle protocol; the payload holds
        only plain data objects, no closures)."""
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)


def from_bytes(data: bytes) -> Checkpoint:
    """Deserialize a checkpoint produced by :meth:`Checkpoint.to_bytes`."""
    try:
        cp = pickle.loads(data)
    except Exception as exc:
        raise ValueError(f"not a checkpoint: {exc}") from exc
    if not isinstance(cp, Checkpoint):
        raise ValueError(f"not a checkpoint: {type(cp).__name__}")
    if cp.version != CHECKPOINT_VERSION:
        raise ValueError(
            f"checkpoint version {cp.version} unsupported (expected {CHECKPOINT_VERSION})"
        )
    return cp


# ------------------------------------------------------------------ capture


def _server_units(system: "MobiEyesSystem") -> list:
    """The table-owning server units: the shards, or the monolith itself."""
    shards = getattr(system.server, "shards", None)
    return list(shards) if shards is not None else [system.server]


def _capture_server(system: "MobiEyesSystem") -> list[dict[str, Any]]:
    sections = []
    for unit in _server_units(system):
        tracker = unit.tracker
        oids = sorted({*tracker.last_heard, *tracker.suspended, *tracker.fot.ids()})
        sections.append(
            {
                # SqtEntry objects in qid order; desc_cache rides along and
                # stays identity-valid under the one-blob deepcopy.
                "entries": list(unit.registry.entries()),
                # (entry | None, last_heard | None, suspended_speed | None)
                # per object, the cross-shard handoff packing.
                "tracker": [(oid, tracker.export_state(oid)) for oid in oids],
            }
        )
    return sections


def _capture_clients(system: "MobiEyesSystem") -> dict[int, dict[str, Any]]:
    out = {}
    for oid in system._client_order:
        client = system.clients[oid]
        lqt = client.lqt
        out[oid] = {
            "entries": list(lqt._entries.values()),  # install order
            "version": lqt.version,
            "hull": (lqt.hull_lo_i, lqt.hull_hi_i, lqt.hull_lo_j, lqt.hull_hi_j),
            "has_mq": client.has_mq,
            "last_cell": client.last_cell,
            "relayed": client._relayed_state,
            "stats": client.stats,
            "steps_since_ack": client._steps_since_ack,
            "last_downlink_seq": client._last_downlink_seq,
            "needs_resync": client._needs_resync,
            "suspect": client._suspect,
            "report_epoch": client._report_epoch,
            "partition_epoch": client.partition_epoch,
        }
    return out


def _capture_transport(system: "MobiEyesSystem") -> dict[str, Any]:
    t = system.transport
    return {
        "step": t._step,
        "downlink_seq": t._downlink_seq,
        "queue": t._queue,
        "envelope_seq": t._envelope_seq,
        "delivered_deferred": t._delivered_deferred,
        "delivered_delay_sum": t._delivered_delay_sum,
        "stale_epoch_reroutes": t.stale_epoch_reroutes,
    }


def _capture_reliability(system: "MobiEyesSystem") -> dict[str, Any] | None:
    rel = system.transport.reliability
    if rel is None:
        return None
    return {
        "uplink_seq": rel._uplink_seq,
        "pending": rel._pending,
        "next_token": rel._next_token,
        "retransmissions": rel.retransmissions,
        "acks_sent": rel.acks_sent,
        "ack_drops": rel.ack_drops,
        "failures": rel.failures,
        "duplicates_suppressed": rel.duplicates_suppressed,
    }


def _capture_loss(system: "MobiEyesSystem") -> tuple[str, Any]:
    """``(kind, data)``: the loss seam's state, injector-aware.

    A :class:`~repro.faults.injector.FaultInjector` cannot be carried
    whole (its position locator is a closure over the live clients), so
    it is decomposed into its data parts and rebuilt at restore; the
    system constructor re-binds it.  A plain loss model has no wiring
    into the system and travels as-is.
    """
    loss = system.transport.loss
    if loss is None:
        return ("none", None)
    if getattr(loss, "policy", None) is not None:
        return (
            "injector",
            {
                "rng": loss.rng,
                "schedule": loss.schedule,
                "policy": loss.policy,
                "uplink_channel": loss.uplink_channel,
                "downlink_channel": loss.downlink_channel,
                "dropped_uplinks": loss.dropped_uplinks,
                "dropped_deliveries": loss.dropped_deliveries,
                "drops_by_cause": loss.drops_by_cause,
            },
        )
    return ("model", loss)


def _capture_partition(system: "MobiEyesSystem") -> dict[str, Any] | None:
    """The mutable partition state: boundary layout, epoch, and -- since
    elastic scale-out -- the stripe order, the shard-slot count, and the
    retired slots (None for a monolithic server, which has no map)."""
    partitioner = getattr(system.server, "partitioner", None)
    if partitioner is None:
        return None
    return {
        "bounds": partitioner.bounds,
        "epoch": partitioner.epoch,
        "order": partitioner.order,
        "slots": len(system.server.shards),
        "retired": system.server.retired_shards,
    }


def _check_supported(system: "MobiEyesSystem") -> None:
    if system.trace is not None:
        raise ValueError("cannot checkpoint a system with a trace log attached")
    if type(system.motion).__name__ not in ("MotionModel", "VectorizedMotionModel"):
        raise ValueError(
            f"cannot checkpoint a custom motion model ({type(system.motion).__name__})"
        )
    buf = system.transport.report_buffer
    if buf is not None and (buf.depth or buf.kind):
        raise ValueError("cannot checkpoint mid-phase: the report buffer is not empty")
    subscribers = getattr(system.server, "_subscribers", None)
    if subscribers is None:
        subscribers = system.server.registry.subscribers
    if any(subscribers.values()):
        raise ValueError(
            "cannot checkpoint a system with live result subscriptions "
            "(callbacks are code, not state)"
        )


def checkpoint(system: "MobiEyesSystem") -> Checkpoint:
    """Capture a system's full state at a step boundary.

    Must be called between steps (not from inside a phase); the captured
    state is fully isolated from the live system, so the system may keep
    running and the checkpoint restored any number of times.
    """
    _check_supported(system)
    server = system.server
    payload: dict[str, Any] = {
        "config": system.config,
        "step": system.clock.step,
        "objects": system.motion.objects,
        "rng": system.rng,
        "velocity_changes_per_step": system.motion.velocity_changes_per_step,
        "changed_last_step": system.motion.changed_last_step,
        "track_accuracy": system.track_accuracy,
        "warmup_steps": system.metrics.warmup_steps,
        "latency": system.latency,
        "loss": _capture_loss(system),
        "server": _capture_server(system),
        # Partition state must restore *before* the server graft: grafted
        # RQI registrations split monitoring regions by the live map.
        "partition": _capture_partition(system),
        "rebalance_policy": (
            system._rebalance_policy.state()
            if system._rebalance_policy is not None
            else None
        ),
        "rebalance_log": system.rebalance_log,
        "next_qid": server._next_qid,
        "report_epochs": server._report_epochs,
        "clients": _capture_clients(system),
        "transport": _capture_transport(system),
        "reliability": _capture_reliability(system),
        "ledger": system.ledger,
        "metrics_steps": system.metrics.steps,
        "ledger_mark": system._ledger_mark,
        "last_error": system._last_error,
        "last_error_step": system._last_error_step,
        # Crash-recovery cadence state: the last periodic checkpoint the
        # system took (None outside crash schedules), carried so a
        # restored run recovers from the same basis the original would.
        "last_checkpoint": getattr(system, "_last_checkpoint", None),
        "checkpoints_taken": system._checkpoints_taken,
        # Service runtime: the ingest queue and its accounting, so a
        # restored service resumes with the same pending work (None when
        # no service is attached).
        "service": (
            system._service.state() if system._service is not None else None
        ),
    }
    return Checkpoint(version=CHECKPOINT_VERSION, payload=copy.deepcopy(payload))


# ------------------------------------------------------------------ restore


def _rebuild_loss(kind: str, data: Any):
    if kind == "none":
        return None
    if kind == "model":
        return data
    from repro.faults.injector import FaultInjector

    injector = FaultInjector(
        rng=data["rng"],
        schedule=data["schedule"],
        policy=data["policy"],
        uplink_channel=data["uplink_channel"],
        downlink_channel=data["downlink_channel"],
    )
    injector.dropped_uplinks = data["dropped_uplinks"]
    injector.dropped_deliveries = data["dropped_deliveries"]
    injector.drops_by_cause = data["drops_by_cause"]
    return injector


def _graft_server(system: "MobiEyesSystem", sections: list[dict[str, Any]]) -> None:
    units = _server_units(system)
    if len(units) != len(sections):
        raise ValueError(
            f"checkpoint has {len(sections)} server sections, system has {len(units)}"
        )
    # SQT entries first (directory callbacks populate owner_of /
    # _focal_home / executor mirrors), then the RQI registrations, then
    # the trackers -- so the FOT-subset-of-focals invariant holds at
    # every point of the graft.
    for unit, section in zip(units, sections):
        for entry in section["entries"]:
            unit.registry.add(entry)
            if not entry.suspended:
                # On a shard this splits the region across the partition,
                # registering each portion with its cell owner.
                unit._rqi_add(entry.qid, entry.mon_region)
    for unit, section in zip(units, sections):
        for oid, packed in section["tracker"]:
            unit.tracker.import_state(oid, packed)


def _graft_clients(system: "MobiEyesSystem", sections: dict[int, dict[str, Any]]) -> None:
    for oid in system._client_order:
        client = system.clients[oid]
        section = sections[oid]
        lqt = client.lqt
        for entry in section["entries"]:
            # install() fires the watcher hooks, so the fastpath's batch
            # evaluator and fan-out index stay in sync with the graft.
            lqt.install(entry)
        lqt.version = section["version"]
        lqt.hull_lo_i, lqt.hull_hi_i, lqt.hull_lo_j, lqt.hull_hi_j = section["hull"]
        client._set_has_mq(section["has_mq"])
        client.last_cell = section["last_cell"]
        client._set_relayed(section["relayed"])
        client.stats = section["stats"]
        client._steps_since_ack = section["steps_since_ack"]
        client._last_downlink_seq = section["last_downlink_seq"]
        client._needs_resync = section["needs_resync"]
        client._suspect = section["suspect"]
        client._report_epoch = section["report_epoch"]
        client.partition_epoch = section["partition_epoch"]


def _graft_transport(system: "MobiEyesSystem", section: dict[str, Any]) -> None:
    t = system.transport
    t._step = section["step"]
    t._downlink_seq = section["downlink_seq"]
    t._queue = section["queue"]
    t._envelope_seq = section["envelope_seq"]
    t._delivered_deferred = section["delivered_deferred"]
    t._delivered_delay_sum = section["delivered_delay_sum"]
    t.stale_epoch_reroutes = section["stale_epoch_reroutes"]


def _graft_reliability(system: "MobiEyesSystem", section: dict[str, Any] | None) -> None:
    rel = system.transport.reliability
    if section is None:
        if rel is not None:
            raise ValueError("checkpoint has no reliability state but the system does")
        return
    if rel is None:
        raise ValueError("checkpoint has reliability state but the system does not")
    rel._uplink_seq = section["uplink_seq"]
    # Queued rel-* envelopes reference these exchanges by identity: the
    # one-blob deepcopy kept Envelope.context and _pending values the
    # same objects, so retransmit timers keep driving in-flight hops.
    rel._pending = section["pending"]
    rel._next_token = section["next_token"]
    rel.retransmissions = section["retransmissions"]
    rel.acks_sent = section["acks_sent"]
    rel.ack_drops = section["ack_drops"]
    rel.failures = section["failures"]
    rel.duplicates_suppressed = section["duplicates_suppressed"]


def _graft_ledger(system: "MobiEyesSystem", saved) -> None:
    # The transport and the system share one ledger object; graft the
    # captured totals into it in place.
    ledger = system.ledger
    ledger.uplink_count = saved.uplink_count
    ledger.downlink_count = saved.downlink_count
    ledger.uplink_bits = saved.uplink_bits
    ledger.downlink_bits = saved.downlink_bits
    ledger.counts_by_type = saved.counts_by_type
    ledger.bits_by_type = saved.bits_by_type
    ledger.energy_by_object = saved.energy_by_object


def restore(cp: Checkpoint) -> "MobiEyesSystem":
    """Rebuild a running system from a checkpoint.

    The checkpoint is not consumed: its payload is deepcopied again, so
    the same checkpoint restores any number of independent systems.
    """
    from repro.core.system import MobiEyesSystem

    if cp.version != CHECKPOINT_VERSION:
        raise ValueError(
            f"checkpoint version {cp.version} unsupported (expected {CHECKPOINT_VERSION})"
        )
    p = copy.deepcopy(cp.payload)
    loss = _rebuild_loss(*p["loss"])
    system = MobiEyesSystem(
        p["config"],
        p["objects"],
        rng=p["rng"],
        velocity_changes_per_step=p["velocity_changes_per_step"],
        track_accuracy=p["track_accuracy"],
        warmup_steps=p["warmup_steps"],
        loss=loss,
        latency=p["latency"],
    )
    partition = p["partition"]
    if partition is not None:
        server = system.server
        # Elastic fleets first grow the slot list (a run that scaled out
        # has more server sections than the config's initial count) and
        # re-mark retired slots, then adopt the stripe layout -- all
        # before the graft, whose RQI splits consult the live map.
        server.ensure_shard_slots(partition["slots"])
        server.restore_retired(set(partition["retired"]))
        server.partitioner.restore_state(
            tuple(partition["bounds"]), partition["epoch"], tuple(partition["order"])
        )
    _graft_server(system, p["server"])
    system.server._next_qid = p["next_qid"]
    system.server._report_epochs = p["report_epochs"]
    _graft_clients(system, p["clients"])
    _graft_transport(system, p["transport"])
    _graft_reliability(system, p["reliability"])
    _graft_ledger(system, p["ledger"])
    system.motion.changed_last_step = p["changed_last_step"]
    system.metrics.steps = p["metrics_steps"]
    system._ledger_mark = p["ledger_mark"]
    system._last_error = p["last_error"]
    system._last_error_step = p["last_error_step"]
    system._last_checkpoint = p["last_checkpoint"]
    system._checkpoints_taken = p["checkpoints_taken"]
    if p["rebalance_policy"] is not None and system._rebalance_policy is not None:
        system._rebalance_policy.restore_state(p["rebalance_policy"])
    system.rebalance_log = p["rebalance_log"]
    # A service attached to the restored system adopts the checkpointed
    # ingest queue (see MobiEyesService.__init__).
    system._pending_service_state = p["service"]
    system.engine.clock.step = p["step"]
    return system


# ---------------------------------------------------------------- hashing


def step_hash(system: "MobiEyesSystem") -> str:
    """A canonical digest of the externally observable system state.

    Covers the clock, every query result, the message/bit/energy ledger
    totals, and the in-flight envelope count -- the quantities the bench
    and chaos reports compare.  Two systems in the same state (e.g. an
    original and its restored twin after equal steps) hash identically;
    floats serialize via ``repr`` so the comparison is bit-exact.
    """
    ledger = system.ledger
    blob = {
        "step": system.clock.step,
        "results": [
            [qid, sorted(system.server.query_result(qid))]
            for qid in system.server.sqt.ids()
        ],
        "uplink_count": ledger.uplink_count,
        "downlink_count": ledger.downlink_count,
        "uplink_bits": ledger.uplink_bits,
        "downlink_bits": ledger.downlink_bits,
        "energy": ledger.total_energy(),
        "pending": system.transport.pending_count(),
    }
    return hashlib.sha256(json.dumps(blob, sort_keys=True).encode()).hexdigest()


__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "checkpoint",
    "from_bytes",
    "restore",
    "step_hash",
]
