"""End-to-end MobiEyes system: the public facade of the reproduction.

:class:`MobiEyesSystem` wires together the grid, the base-station layout,
the simulated transport, the server, one client per moving object, and the
motion model, then drives them with the time-stepped engine:

1. *movement* -- objects move; ``nmo`` random objects pick new velocity
   vectors; the transport's coverage index is refreshed.
2. *reporting* -- clients detect cell crossings and (for focal objects)
   dead-reckoning deviations, and uplink reports; with zero modeled
   latency the server reacts inline with installs/broadcasts.
3. *delivery* -- the transport drains deferred envelopes whose modeled
   latency elapsed and runs the reliability retransmit timers (a no-op
   without a latency model).
4. *evaluation* -- clients process their LQTs and uplink differential
   result changes.
5. *measurement* -- per-step metrics are recorded.

Typical use::

    config = MobiEyesConfig(uod=Rect(0, 0, 100, 100), alpha=5.0)
    system = MobiEyesSystem(config, objects, rng, velocity_changes_per_step=10)
    qid = system.install_query(QuerySpec(oid=3, region=Circle(0, 0, 2.0)))
    system.run(steps=100)
    print(system.result(qid))
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.client import MobiEyesClient
from repro.core.config import MobiEyesConfig
from repro.core.messages import RebalanceDirective, ResyncDirective
from repro.core.query import QueryId, QuerySpec
from repro.core.server import MobiEyesServer
from repro.core.transport import SimulatedTransport
from repro.grid import CellRange, Grid
from repro.metrics.accuracy import exact_results, mean_result_error
from repro.metrics.collectors import MetricsLog, StepStats
from repro.mobility.model import MovingObject, ObjectId
from repro.mobility.motion import MotionModel
from repro.network.basestation import BaseStationLayout
from repro.network.latency import LatencyModel
from repro.network.loss import LossModel
from repro.network.messaging import MessageLedger
from repro.sim.clock import SimulationClock
from repro.sim.engine import SimulationEngine
from repro.sim.rng import SimulationRng
from repro.sim.trace import TraceLog


class MobiEyesSystem:
    """A complete distributed MobiEyes deployment in simulation."""

    def __init__(
        self,
        config: MobiEyesConfig,
        objects: Sequence[MovingObject],
        rng: SimulationRng | None = None,
        velocity_changes_per_step: int = 0,
        track_accuracy: bool = False,
        trace: TraceLog | None = None,
        warmup_steps: int = 0,
        loss: LossModel | None = None,
        motion: MotionModel | None = None,
        latency: LatencyModel | None = None,
    ) -> None:
        self.config = config
        self.rng = rng if rng is not None else SimulationRng()
        self.grid = Grid(config.uod, config.alpha)
        self.layout = BaseStationLayout(self.grid, config.base_station_side)
        self.ledger = MessageLedger(radio=config.radio)
        self.trace = trace
        self.transport = SimulatedTransport(
            self.layout, self.grid, self.ledger, trace=trace, loss=loss
        )
        if config.batch_reports:
            from repro.core.reporting import ReportBuffer

            # Columnar report pipeline: clients append the high-volume
            # uplink reports to this buffer while a phase window is open;
            # the transport flushes it with identical per-record accounting.
            self.transport.report_buffer = ReportBuffer()
        # Per-link delivery latency: an explicit model wins; otherwise the
        # config's knobs (all-zero means no model -- the inline fast path).
        self.latency = latency if latency is not None else LatencyModel.from_config(config)
        if self.latency is not None:
            self.transport.set_latency(self.latency)
        if config.shards > 1:
            from repro.core.coordinator import Coordinator

            self.server = Coordinator(self.grid, self.transport, config)
            if config.shard_workers > 0:
                from repro.core.executor import make_executor

                # Parallel shard executor: per-step shard work runs as
                # fork -> per-shard region -> deterministic barrier
                # (bit-identical to the serial loops; see core/executor).
                self.server.attach_executor(make_executor(config))
        else:
            self.server = MobiEyesServer(self.grid, self.transport, config)
        # A custom mobility model (e.g. random waypoint) may be supplied;
        # it must manage the same object population.
        if motion is not None:
            if list(motion.objects) != list(objects):
                raise ValueError("motion model must wrap the same object population")
            self.motion = motion
        elif config.engine == "vectorized":
            from repro.fastpath.motion import VectorizedMotionModel

            self.motion = VectorizedMotionModel(
                objects, config.uod, self.rng, velocity_changes_per_step=velocity_changes_per_step
            )
        else:
            self.motion = MotionModel(
                objects, config.uod, self.rng, velocity_changes_per_step=velocity_changes_per_step
            )
        self.clients: dict[ObjectId, MobiEyesClient] = {
            obj.oid: MobiEyesClient(obj, self.grid, self.transport, config)
            for obj in self.motion.objects
        }
        self._client_order = sorted(self.clients)
        # Client-side view of who holds moving queries.  The fastpath uses
        # this (rather than the server's FOT) to pick dead-reckoning
        # candidates, because lease suspension can remove an object from
        # the FOT while its client still believes it is focal.
        self.focal_flags: set[ObjectId] = set()
        for client in self.clients.values():
            client.focal_registry = self.focal_flags
        self._fault_injector = None
        # Crash recovery state: the most recent periodic checkpoint (the
        # recovery basis), and the schedule's crash windows if any.
        self._last_checkpoint = None
        self._checkpoint_every = config.checkpoint_every_steps
        self._checkpoints_taken = 0
        self._crash_windows = ()
        # Online repartitioning: the explicit trigger schedule, the
        # optional load-driven policy, and the log of applied operations
        # (consumed by the bench / chaos reports).
        self._rebalance_schedule = config.rebalance_schedule
        self._rebalance_every = config.rebalance_every_steps
        self._elastic_schedule = config.elastic_schedule
        self._rebalance_policy = None
        self.rebalance_log: list[dict] = []
        if self._rebalance_every and config.shards > 1:
            if config.elastic_max_shards > 0:
                from repro.core.rebalance import ElasticPolicy

                # The thermostat may also change the shard count: split a
                # persistently hot stripe into a spawned shard, merge a
                # persistently cold one away (see core/rebalance.py).
                self._rebalance_policy = ElasticPolicy(
                    hot_factor=config.rebalance_hot_factor,
                    cool_factor=config.rebalance_cool_factor,
                    metric=config.rebalance_metric,
                    max_shards=config.elastic_max_shards,
                    min_shards=config.elastic_min_shards,
                    split_after=config.elastic_split_after,
                    merge_factor=config.elastic_merge_factor,
                    merge_after=config.elastic_merge_after,
                )
            else:
                from repro.core.rebalance import RebalancePolicy

                self._rebalance_policy = RebalancePolicy(
                    hot_factor=config.rebalance_hot_factor,
                    cool_factor=config.rebalance_cool_factor,
                    metric=config.rebalance_metric,
                )
        if getattr(loss, "policy", None) is not None:
            # Fault injection: bind the injector to live positions, turn
            # on server leases, and give every client the fault policy
            # (heartbeats and resync).
            self._fault_injector = loss
            loss.bind(self.layout, lambda oid: self.clients[oid].obj.pos)
            self.server.enable_leases(loss.policy.lease_steps)
            for client in self.clients.values():
                client.fault_policy = loss.policy
            if config.shards > 1:
                # Let crash windows drop uplinks addressed to a dead shard.
                loss.bind_shards(self.server.shard_for_uplink)
            crashes = loss.schedule.crashes
            if crashes:
                if config.elastic_max_shards > 0 or config.elastic_schedule:
                    raise ValueError(
                        "shard crash windows require a fixed fleet: crash "
                        "recovery rebuilds a shard by id from the last "
                        "checkpoint, which elastic retirement invalidates"
                    )
                if config.shards <= 1:
                    raise ValueError(
                        "shard crash windows require a sharded server (config.shards > 1)"
                    )
                if config.checkpoint_every_steps <= 0:
                    raise ValueError(
                        "shard crash windows require a positive "
                        "checkpoint_every_steps cadence (recovery rebuilds the "
                        "dead shard from the last periodic checkpoint)"
                    )
                for window in crashes:
                    if window.shard >= self.server.num_shards:
                        raise ValueError(
                            f"crash window targets shard {window.shard} but the "
                            f"partitioner built only {self.server.num_shards} shards"
                        )
                self._crash_windows = crashes
        # Service runtime attach point (core/service.py): the live service
        # wrapping this system, and -- after a restore -- the checkpointed
        # ingest-queue state waiting for the next service to adopt.
        self._service = None
        self._pending_service_state = None
        self._fastpath = None
        if config.engine == "vectorized":
            from repro.fastpath.runtime import FastpathRuntime

            self._fastpath = FastpathRuntime(self)
            # All coverage queries from here on go through the array index.
            self.transport.coverage = self._fastpath.coverage
        self.track_accuracy = track_accuracy
        self._closed = False
        self._last_error: float | None = None
        self._last_error_step: int | None = None
        self.metrics = MetricsLog(
            step_seconds=config.step_seconds,
            population=len(self.motion),
            warmup_steps=warmup_steps,
        )
        self._ledger_mark = self.ledger.snapshot()

        self.engine = SimulationEngine(SimulationClock(config.step_seconds))
        self.engine.register("movement", self._movement_phase)
        self.engine.register("reporting", self._reporting_phase)
        self.engine.register("delivery", self._delivery_phase)
        if self._fault_injector is not None:
            self.engine.register("server", self._fault_phase)
        self.engine.register("evaluation", self._evaluation_phase)
        self.engine.register("measurement", self._measurement_phase)
        # The install-time broadcasts need a valid coverage index.
        self.transport.begin_step(0, self._positions())

    # --------------------------------------------------------------- API

    @property
    def clock(self) -> SimulationClock:
        """The simulation clock driving this system."""
        return self.engine.clock

    def install_query(self, spec: QuerySpec) -> QueryId:
        """Install a moving query; returns its server-assigned qid."""
        return self.server.install_query(spec)

    def install_queries(self, specs: Iterable[QuerySpec]) -> list[QueryId]:
        """Install several query specs; returns their qids in order."""
        return [self.install_query(spec) for spec in specs]

    def remove_query(self, qid: QueryId) -> None:
        """Uninstall a query everywhere it is known."""
        self.server.remove_query(qid)

    def apply_external_update(self, oid: ObjectId, pos, vel) -> None:
        """Adopt an externally reported position/velocity for one object.

        The service runtime's ingest path, applied *between* steps (the
        current clock boundary): the next step's movement, reporting, and
        evaluation see the new state exactly as if the object had moved
        there itself, so a scripted sequence of these calls replayed at
        fixed steps is bit-identical however it is driven (service queue
        or direct calls).
        """
        self.motion.apply_update(oid, pos, vel, self.clock.now_hours)

    def step(self) -> int:
        """Advance the simulation by one time step."""
        return self.engine.step()

    def run(self, steps: int) -> int:
        """Run ``steps`` consecutive steps; returns the final step index."""
        return self.engine.run(steps)

    def result(self, qid: QueryId) -> frozenset[ObjectId]:
        """The differentially maintained result of a query."""
        return self.server.query_result(qid)

    def subscribe(self, qid: QueryId, callback) -> None:
        """Fire ``callback(qid, oid, entered)`` on every result change."""
        self.server.subscribe(qid, callback)

    def unsubscribe(self, qid: QueryId, callback) -> None:
        """Remove a previously registered result callback (no-op if absent)."""
        self.server.unsubscribe(qid, callback)

    def results(self) -> dict[QueryId, frozenset[ObjectId]]:
        """All current query results, keyed by query id."""
        return {qid: self.server.query_result(qid) for qid in self.server.sqt.ids()}

    def oracle_results(self) -> dict[QueryId, frozenset[ObjectId]]:
        """Exact results computed from true positions (the ground truth)."""
        if self._fastpath is not None:
            return self._fastpath.oracle_results(self.server.installed_queries())
        return exact_results(self.motion.objects, self.server.installed_queries(), self.grid)

    def client(self, oid: ObjectId) -> MobiEyesClient:
        """The client state machine of one moving object."""
        return self.clients[oid]

    def check_invariants(self) -> None:
        """Protocol invariants validated by the test suite.

        With modeled latency the client-side coupling invariants are
        relaxed: installs, removals, and monitoring-region updates may
        still be in flight, so a client's LQT can legitimately lag the
        server's tables until the pipeline drains.  The structural
        server-side invariants and the "never monitor your own query"
        rule hold regardless.
        """
        self.server.check_invariants()
        relaxed = self.transport.latency_active or self.transport.pending_count() > 0
        for oid in self._client_order:
            client = self.clients[oid]
            for entry in client.lqt.entries():
                assert entry.oid != oid, "object monitors its own query"
                if relaxed:
                    continue
                assert entry.qid in self.server.sqt, "LQT holds a removed query"
                assert entry.mon_region.contains(client.last_cell), (
                    "LQT entry's monitoring region does not cover the object's cell"
                )

    # ------------------------------------------------------------- phases

    def _positions(self) -> list[tuple[ObjectId, object]]:
        return [(obj.oid, obj.pos) for obj in self.motion.objects]

    def _movement_phase(self, clock: SimulationClock) -> None:
        if self._crash_windows or self._checkpoint_every:
            self._robustness_housekeeping(clock.step)
        if (
            self._rebalance_schedule
            or self._elastic_schedule
            or self._rebalance_policy is not None
        ):
            # After recovery, before any of this step's traffic: a
            # repartition never races a parallel shard region, and a crash
            # window ending this step is rebuilt before boundaries move.
            self._rebalance_housekeeping(clock.step)
        if self._fastpath is not None:
            self._fastpath.movement_phase(clock)
            return
        self.motion.advance(clock.step_hours, clock.now_hours)
        self.transport.begin_step(clock.step, self._positions())

    def _robustness_housekeeping(self, step: int) -> None:
        """Crash-window orchestration and checkpoint cadence.

        Runs at the very top of the movement phase -- the clock already
        reads ``step`` but nothing of step ``step`` has happened, so the
        system is exactly at the post-``step - 1`` boundary.  In order:
        a crash window *ending* here restarts its shard from the last
        periodic checkpoint and broadcasts a grid-wide resync directive
        (this step's traffic already sees the rebuilt tables); a window
        *starting* here kills its shard before any new delivery; and on
        a cadence tick with every shard healthy, a fresh checkpoint
        becomes the recovery basis.
        """
        for window in self._crash_windows:
            if window.end == step:
                self.server.recover_shard(window.shard, self._last_checkpoint, step)
                # Clients re-pull descriptors and report epochs; coverage
                # still matches true positions (movement has not run yet).
                grid = self.grid
                self.transport.broadcast(
                    CellRange(0, grid.n_cols - 1, 0, grid.n_rows - 1), ResyncDirective()
                )
        for window in self._crash_windows:
            if window.start == step:
                self.server.crash_shard(window.shard)
        every = self._checkpoint_every
        if every and step % every == 0:
            injector = self._fault_injector
            if injector is None or not injector.schedule.crashed(step):
                from repro.core.snapshot import checkpoint

                # Null the previous basis during capture so checkpoints
                # never nest into chains; the fresh checkpoint then becomes
                # its own recovery basis via a self-reference (cycle-safe
                # under deepcopy and pickle), which keeps a restored run
                # recovering from the identical snapshot.
                prev = self._last_checkpoint
                self._last_checkpoint = None
                try:
                    cp = checkpoint(self)
                except Exception:
                    self._last_checkpoint = prev
                    raise
                # The clock already reads ``step`` but this is the
                # post-``step - 1`` boundary state.
                cp.payload["step"] = step - 1
                cp.payload["last_checkpoint"] = cp
                self._last_checkpoint = cp
                self._checkpoints_taken += 1

    def _rebalance_housekeeping(self, step: int) -> None:
        """Scheduled and policy-driven repartitioning, in the same
        housekeeping slot as crash orchestration (the post-``step - 1``
        boundary: nothing of step ``step`` has run yet).

        Scheduled triggers fire unconditionally and always broadcast the
        rebalance directive -- even under a monolithic server or when the
        operation clamps to a no-op for this shard count -- so a fixed
        schedule yields identical message counts and energy ledgers
        across 1/2/4 shards and both engines.  Policy triggers depend on
        measured load (wall clock under the default metric) and broadcast
        only after an effective move; that mode trades the cross-run
        identity claim for actual load awareness.
        """
        coordinator = self.server if self.config.shards > 1 else None
        scheduled = False
        for op in self._rebalance_schedule:
            trigger_step, src, dst, cols = op
            if trigger_step != step:
                continue
            scheduled = True
            if coordinator is not None:
                summary = coordinator.apply_rebalance(src, dst, cols)
                summary["step"] = step
                summary["trigger"] = "schedule"
                self.rebalance_log.append(summary)
        if scheduled:
            epoch = getattr(self.server, "partition_epoch", None)
            if epoch is None:
                # Monolith: no map to mutate, but the directive still goes
                # out (see above); derive the advertised epoch statelessly
                # so checkpoint/restore replays the same value.
                epoch = sum(1 for op in self._rebalance_schedule if op[0] <= step)
            self._broadcast_rebalance(epoch)
        # Deterministic elastic triggers (the reproducible counterpart of
        # the elastic policy; config validation guarantees a coordinator).
        for op in self._elastic_schedule:
            if op[0] != step:
                continue
            if op[1] == "split":
                summary = coordinator.spawn_shard(op[2])
            else:
                summary = coordinator.retire_shard(op[2], op[3])
            summary["step"] = step
            summary["trigger"] = f"schedule-{op[1]}"
            self.rebalance_log.append(summary)
            if summary["cols_moved"]:
                self._broadcast_rebalance(coordinator.partition_epoch)
        policy = self._rebalance_policy
        if (
            policy is not None
            and coordinator is not None
            and step > 0
            and step % self._rebalance_every == 0
        ):
            rows = coordinator.shard_loads()
            key = "seconds" if policy.metric == "seconds" else "ops"
            if getattr(policy, "propose_elastic", None) is not None:
                self._apply_elastic_proposal(coordinator, policy, rows, key, step)
            else:
                totals = [float(row[key]) for row in rows]
                widths = [
                    coordinator.partitioner.width_of(row["shard"]) for row in rows
                ]
                proposal = policy.propose(totals, widths)
                if proposal is not None:
                    src, dst, cols = proposal
                    summary = coordinator.apply_rebalance(src, dst, cols)
                    summary["step"] = step
                    summary["trigger"] = "policy"
                    self.rebalance_log.append(summary)
                    if summary["cols_moved"]:
                        self._broadcast_rebalance(coordinator.partition_epoch)

    def _apply_elastic_proposal(self, coordinator, policy, rows, key, step) -> None:
        """Run one elastic policy window and apply its decision.

        The policy works over stable shard ids in stripe order; split and
        merge decisions go through the coordinator's lifecycle
        (spawn/retire), transfers through the ordinary migration.  Every
        applied op lands in ``rebalance_log``; any effective column move
        broadcasts the new epoch.
        """
        part = coordinator.partitioner
        totals = {row["shard"]: float(row[key]) for row in rows}
        widths = {row["shard"]: part.width_of(row["shard"]) for row in rows}
        proposal = policy.propose_elastic(totals, widths, part.order)
        if proposal is None:
            return
        if proposal[0] == "split":
            summary = coordinator.spawn_shard(proposal[1])
            trigger = "policy-split"
        elif proposal[0] == "merge":
            summary = coordinator.retire_shard(proposal[1], proposal[2])
            trigger = "policy-merge"
        else:
            _, src, dst, cols = proposal
            summary = coordinator.apply_rebalance(src, dst, cols)
            trigger = "policy"
        summary["step"] = step
        summary["trigger"] = trigger
        self.rebalance_log.append(summary)
        if summary["cols_moved"]:
            self._broadcast_rebalance(coordinator.partition_epoch)

    def _broadcast_rebalance(self, epoch: int) -> None:
        """Grid-wide directive: clients adopt the advertised epoch."""
        grid = self.grid
        self.transport.broadcast(
            CellRange(0, grid.n_cols - 1, 0, grid.n_rows - 1),
            RebalanceDirective(epoch=epoch),
        )

    def _reporting_phase(self, clock: SimulationClock) -> None:
        if self._fastpath is not None:
            self._fastpath.reporting_phase(clock)
        else:
            buf = self.transport.report_buffer
            if buf is None:
                for oid in self._client_order:
                    self.clients[oid].report_phase(clock)
            else:
                # One report window per client: the client's own sends are
                # buffered, then flushed (window closed) before the next
                # client reports -- so server reactions interleave exactly
                # as on the per-message path.
                clients = self.clients
                flush = self.transport.flush_reports
                for oid in self._client_order:
                    buf.depth = 1
                    clients[oid].report_phase(clock)
                    buf.depth = 0
                    if buf.kind:
                        flush(buf)
        beacon = self.config.static_beacon_steps
        if (
            self.config.propagation.is_lazy
            and beacon > 0
            and clock.step % beacon == 0
        ):
            self.server.beacon_static_queries()

    def _delivery_phase(self, clock: SimulationClock) -> None:
        """Drain deferred envelopes due this step (no-op without latency)."""
        self.transport.delivery_phase(clock.step)

    def _fault_phase(self, clock: SimulationClock) -> None:
        """Fault-injection housekeeping between reporting and evaluation.

        Clients run their heartbeat/resync logic (so a resync completed
        here feeds the same step's evaluation), then the server expires
        leases of objects it has not heard from.
        """
        for oid in self._client_order:
            self.clients[oid].fault_phase(clock)
        self.server.expire_leases(clock.step)

    def _evaluation_phase(self, clock: SimulationClock) -> None:
        if clock.step % self.config.eval_period_steps != 0:
            return
        if self._fastpath is not None:
            self._fastpath.evaluation_phase(clock)
            return
        buf = self.transport.report_buffer
        if buf is None:
            for oid in self._client_order:
                self.clients[oid].evaluation_phase(clock)
            return
        # One window around the whole evaluation pass: result reports only
        # flow client -> server here (applying one cannot influence another
        # client's evaluation), so a single end-of-phase flush is safe.
        buf.depth = 1
        try:
            for oid in self._client_order:
                self.clients[oid].evaluation_phase(clock)
        finally:
            buf.depth = 0
        if buf.kind:
            self.transport.flush_reports(buf)

    def close(self) -> None:
        """Release background resources (a parallel executor's worker
        pool, when one is attached).  Idempotent; a system never closed
        is reaped by the executor's finalizer."""
        if self._closed:
            return
        self._closed = True
        close_executor = getattr(self.server, "close_executor", None)
        if close_executor is not None:
            close_executor()

    def __enter__(self) -> "MobiEyesSystem":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager teardown: crashed or aborted runs never leak
        executor workers."""
        self.close()

    def _measurement_phase(self, clock: SimulationClock) -> None:
        server_seconds, server_ops = self.server.reset_load()
        # Coordinator only: the critical-path view computed by reset_load
        # (equals the aggregate without a parallel executor).
        server_critical = getattr(self.server, "last_critical_seconds", server_seconds)
        mark = self.ledger.snapshot()
        delta = self._ledger_mark.delta(mark)
        self._ledger_mark = mark

        if self._fastpath is not None:
            # The batch evaluator tracks LQT sizes and the evaluation
            # counters as system-wide aggregates; no per-client walk.
            (
                lqt_total,
                evaluated,
                skipped_sp,
                skipped_group,
                processing,
            ) = self._fastpath.measurement_counts()
        else:
            lqt_total = 0
            evaluated = 0
            skipped_sp = 0
            skipped_group = 0
            processing = 0.0
            # This loop touches every client every step, so it stays on
            # the measured hot path; draining goes through the dataclass
            # (one call, one tuple) so a new counter field cannot silently
            # diverge from ClientStats.reset.
            for oid in self._client_order:
                client = self.clients[oid]
                lqt_total += len(client.lqt)
                d_evaluated, d_skipped_sp, d_skipped_group, d_processing = client.stats.drain()
                evaluated += d_evaluated
                skipped_sp += d_skipped_sp
                skipped_group += d_skipped_group
                processing += d_processing

        # Accuracy is sampled on evaluation steps only: results change
        # meaningfully when the objects re-evaluate their LQTs, and the
        # oracle pass is by far the most expensive part of measurement.
        # Intermediate steps carry the last sample forward, stamped with
        # the step it was taken at so a stale sample is never mistaken
        # for a current one.
        if self.track_accuracy and clock.step % self.config.eval_period_steps == 0:
            self._last_error = mean_result_error(self.results(), self.oracle_results())
            self._last_error_step = clock.step
        error = self._last_error
        error_step = self._last_error_step

        delivered, delay_sum = self.transport.drain_delivery_stats()
        self.metrics.append(
            StepStats(
                step=clock.step,
                server_seconds=server_seconds,
                server_critical_seconds=server_critical,
                server_ops=server_ops,
                uplink_messages=delta.uplink_count,
                downlink_messages=delta.downlink_count,
                uplink_bits=delta.uplink_bits,
                downlink_bits=delta.downlink_bits,
                energy_joules=delta.total_energy,
                mean_lqt_size=lqt_total / max(1, len(self.clients)),
                evaluated_queries=evaluated,
                skipped_by_safe_period=skipped_sp,
                skipped_by_grouping=skipped_group,
                object_processing_seconds=processing,
                result_error=error,
                result_error_step=error_step,
                inflight_messages=self.transport.pending_count(),
                delivered_messages=delivered,
                delivery_delay_steps=delay_sum,
            )
        )
