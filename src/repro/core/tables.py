"""Server-side and object-side tables (paper Section 3.2).

Server side:
    - :class:`FocalObjectTable` (FOT): ``oid -> (pos, vel, tm)`` for every
      focal object, plus the max-speed bound used by safe periods.
    - :class:`ServerQueryTable` (SQT): ``qid -> (oid, region, curr_cell,
      mon_region, filter, {result})``.
    - :class:`ReverseQueryIndex` (RQI): grid cell -> ids of queries whose
      monitoring region intersects the cell (``nearby_queries`` of any
      object in that cell).

Object side:
    - :class:`LocalQueryTable` (LQT): the queries this object is responsible
      for evaluating, with the last known focal motion state, the query's
      monitoring region, the last containment result (``is_target``), and
      the safe-period processing time ``ptm``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.geometry import Shape
from repro.grid import CellIndex, CellRange, region_reach
from repro.mobility.model import MotionState, ObjectId
from repro.core.messages import QueryDescriptor
from repro.core.query import QueryFilter, QueryId


# ------------------------------------------------------------- server side


@dataclass(slots=True)
class FotEntry:
    """One focal object's last reported kinematic state."""

    oid: ObjectId
    state: MotionState
    max_speed: float


class FocalObjectTable:
    """FOT: focal objects' last reported positions and velocity vectors."""

    def __init__(self) -> None:
        self._entries: dict[ObjectId, FotEntry] = {}

    def __contains__(self, oid: ObjectId) -> bool:
        return oid in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, oid: ObjectId) -> FotEntry:
        """Look up a stored entry by its identifier."""
        return self._entries[oid]

    def upsert(self, oid: ObjectId, state: MotionState, max_speed: float) -> FotEntry:
        """Insert or update the entry for an object."""
        entry = self._entries.get(oid)
        if entry is None:
            entry = FotEntry(oid=oid, state=state, max_speed=max_speed)
            self._entries[oid] = entry
        else:
            entry.state = state
            entry.max_speed = max_speed
        return entry

    def update_state(self, oid: ObjectId, state: MotionState) -> None:
        """Replace the stored motion state of a focal object."""
        self._entries[oid].state = state

    def remove(self, oid: ObjectId) -> None:
        """Remove a stored entry."""
        del self._entries[oid]

    def ids(self) -> Iterator[ObjectId]:
        """Iterate over the stored identifiers in ascending order.  The
        explicit sort keeps lease expiry and invariant checks deterministic
        even when entries migrated between shards out of insertion order."""
        return iter(sorted(self._entries))


@dataclass(slots=True)
class SqtEntry:
    """One installed query's server-side record.

    Static queries have ``oid is None`` and ``curr_cell is None``; their
    monitoring region never changes.
    """

    qid: QueryId
    oid: ObjectId | None
    region: Shape
    filter: QueryFilter
    curr_cell: CellIndex | None
    mon_region: CellRange
    result: set[ObjectId] = field(default_factory=set)
    # Soft-state lease flag: True while the focal object's lease has
    # expired and the query is withdrawn from the RQI (see
    # MobiEyesServer.expire_leases).  Always False outside fault injection.
    suspended: bool = False
    # Last descriptor assembled for this entry.  Not authoritative state:
    # ``MobiEyesServer._descriptor`` revalidates it by identity against the
    # inputs it was built from before reuse, so it needs no invalidation.
    desc_cache: QueryDescriptor | None = field(default=None, repr=False, compare=False)

    @property
    def is_static(self) -> bool:
        """Whether this is a static (fixed-region) query."""
        return self.oid is None


class ServerQueryTable:
    """SQT: every installed moving query, keyed by query id."""

    def __init__(self) -> None:
        self._entries: dict[QueryId, SqtEntry] = {}
        self._by_focal: dict[ObjectId, set[QueryId]] = {}

    def __contains__(self, qid: QueryId) -> bool:
        return qid in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, qid: QueryId) -> SqtEntry:
        """Look up a stored entry by its identifier."""
        return self._entries[qid]

    def add(self, entry: SqtEntry) -> None:
        """Add a new entry."""
        if entry.qid in self._entries:
            raise ValueError(f"duplicate query id {entry.qid}")
        self._entries[entry.qid] = entry
        if entry.oid is not None:
            self._by_focal.setdefault(entry.oid, set()).add(entry.qid)

    def remove(self, qid: QueryId) -> SqtEntry:
        """Remove a stored entry."""
        entry = self._entries.pop(qid)
        if entry.oid is not None:
            group = self._by_focal[entry.oid]
            group.discard(qid)
            if not group:
                del self._by_focal[entry.oid]
        return entry

    def queries_of_focal(self, oid: ObjectId) -> list[SqtEntry]:
        """All queries bound to focal object ``oid`` (groupable MQs)."""
        return [self._entries[qid] for qid in sorted(self._by_focal.get(oid, ()))]

    def is_focal(self, oid: ObjectId) -> bool:
        """Whether this object is the focal object of some query."""
        return oid in self._by_focal

    def entries(self) -> Iterator[SqtEntry]:
        """Iterate over the stored entries in ascending qid order.

        Query ids are allocated monotonically, so for a monolithic server
        the sort matches plain insertion order; behind the coordinator a
        shard's insertion order depends on handoff history, and the
        explicit sort is what keeps resync purges, static beacons, and
        result snapshots deterministic across shard counts.
        """
        return iter([self._entries[qid] for qid in sorted(self._entries)])

    def ids(self) -> Iterator[QueryId]:
        """Iterate over the stored identifiers in ascending order."""
        return iter(sorted(self._entries))


class ReverseQueryIndex:
    """RQI: grid cell -> query ids whose monitoring region covers the cell.

    Conceptually the paper's ``M x N`` matrix of query-id sets; stored
    sparsely since most cells have no nearby queries.
    """

    def __init__(self) -> None:
        self._cells: dict[CellIndex, set[QueryId]] = {}

    def add(self, qid: QueryId, mon_region: CellRange) -> None:
        """Add a new entry."""
        for cell in mon_region:
            self._cells.setdefault(cell, set()).add(qid)

    def remove(self, qid: QueryId, mon_region: CellRange) -> None:
        """Remove a stored entry."""
        for cell in mon_region:
            bucket = self._cells.get(cell)
            if bucket is not None:
                bucket.discard(qid)
                if not bucket:
                    del self._cells[cell]

    def clear(self) -> None:
        """Forget every registration (shard crash: the RQI is soft state
        rebuilt from the surviving registries at recovery)."""
        self._cells.clear()

    def extract_region(self, region: CellRange) -> list[tuple[CellIndex, set[QueryId]]]:
        """Pop and return every non-empty bucket inside ``region``, in the
        range's deterministic cell order.

        Used by rebalancing to hand a migrating column span's registrations
        to its new owning shard wholesale: the per-query region clipping was
        already done when the cells were registered, so the buckets move as
        opaque sets instead of being recomputed query by query."""
        out: list[tuple[CellIndex, set[QueryId]]] = []
        for cell in region:
            bucket = self._cells.pop(cell, None)
            if bucket:
                out.append((cell, bucket))
        return out

    def absorb(self, buckets: list[tuple[CellIndex, set[QueryId]]]) -> None:
        """Merge buckets previously popped by :meth:`extract_region`."""
        cells = self._cells
        for cell, bucket in buckets:
            existing = cells.get(cell)
            if existing is None:
                cells[cell] = bucket
            else:
                existing.update(bucket)

    def move(self, qid: QueryId, old_region: CellRange, new_region: CellRange) -> None:
        """Move a query from one monitoring region to another.

        Consecutive monitoring regions of a focal object overlap heavily
        (the region shifts by one cell per crossing), so only the
        symmetric difference is touched: cells in both ranges keep their
        registration.
        """
        if old_region == new_region:
            return
        cells = self._cells
        for cell in old_region:
            if new_region.contains(cell):
                continue
            bucket = cells.get(cell)
            if bucket is not None:
                bucket.discard(qid)
                if not bucket:
                    del cells[cell]
        for cell in new_region:
            if old_region.contains(cell):
                continue
            cells.setdefault(cell, set()).add(qid)

    def fresh_ids_between(self, prev_cell: CellIndex, new_cell: CellIndex) -> list[QueryId]:
        """Query ids registered at ``new_cell`` but not ``prev_cell``, in
        ascending order -- the queries an object crossing between the two
        cells newly became nearby to.  Reads the buckets directly instead
        of materializing two frozenset copies."""
        bucket = self._cells.get(new_cell)
        if not bucket:
            return []
        prev = self._cells.get(prev_cell)
        if not prev:
            return sorted(bucket)
        return sorted(qid for qid in bucket if qid not in prev)

    def queries_at(self, cell: CellIndex) -> frozenset[QueryId]:
        """``nearby_queries`` of an object whose current cell is ``cell``."""
        bucket = self._cells.get(cell)
        return frozenset(bucket) if bucket else frozenset()

    def nonempty_cells(self) -> Iterator[CellIndex]:
        """Cells that currently have nearby queries."""
        return iter(self._cells)


# ------------------------------------------------------------- object side

# Hull sentinel: wide enough that any real cell index lies inside.
_HULL_MAX = 1 << 62


@dataclass(slots=True)
class LqtEntry:
    """One query installed on a moving object.

    ``ptm`` is the safe-period *processing time*: evaluation of the query is
    skipped while ``ptm`` lies in the future (paper Section 4.2).  ``reach``
    caches the region's maximal extent from its binding point (the radius
    for circles), used by grouping and the safe-period bound; it is zero
    for static queries (``oid is None``), whose region is absolute.
    """

    qid: QueryId
    oid: ObjectId | None  # focal object id; None for static queries
    region: Shape
    filter: QueryFilter
    focal_state: MotionState | None
    focal_max_speed: float
    mon_region: CellRange
    is_target: bool = False
    ptm: float = 0.0  # hours
    reach: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        self.reach = region_reach(self.region) if self.oid is not None else 0.0

    @property
    def is_static(self) -> bool:
        """Whether this is a static (fixed-region) query."""
        return self.oid is None

    @staticmethod
    def from_descriptor(desc: QueryDescriptor) -> "LqtEntry":
        """Build an LQT entry from a broadcast descriptor.

        Fills the slots directly instead of going through the generated
        ``__init__``: installs run tens of thousands of times per dense
        step sequence and the keyword-argument dispatch dominates.
        """
        entry = object.__new__(LqtEntry)
        entry.qid = desc.qid
        entry.oid = desc.oid
        entry.region = desc.region
        entry.filter = desc.filter
        entry.focal_state = desc.focal_state
        entry.focal_max_speed = desc.focal_max_speed
        entry.mon_region = desc.mon_region
        entry.is_target = False
        entry.ptm = 0.0
        entry.reach = region_reach(desc.region) if desc.oid is not None else 0.0
        return entry


class LocalQueryTable:
    """LQT: the queries a moving object currently monitors.

    ``version`` counts structural changes (installs and removes).  In-place
    mutation of an entry's fields does not bump it; consumers that cache
    derived structure (the vectorized batch evaluator) key their caches on
    the version and re-read the mutable fields every evaluation.

    A consumer may also register a *watcher* (:meth:`watch`) to be told
    about changes as they happen instead of polling the version:
    ``lqt_changed(oid)`` fires on every install/remove, and
    ``state_changed(oid, entry)`` fires when the owning client replaces an
    entry's ``focal_state`` in place (see :meth:`notify_state`).  With no
    watcher registered -- the reference engine -- the hooks reduce to one
    ``None`` check.

    A second, independent *entry watcher* slot (:meth:`watch_entries`)
    receives the entries themselves -- ``entry_installed(oid, entry)`` /
    ``entry_removed(oid, entry)`` -- so a broadcast fan-out can maintain a
    query-to-holders index without scanning tables.

    The table also maintains a *hull*: the intersection of every
    installed entry's monitoring-region bounds.  While the owning object
    stays inside the hull, no entry's region can have been left, so the
    cell-crossing drop scan is skipped entirely.  The hull only tightens
    on install (and on in-place region rewrites via :meth:`tighten_hull`);
    removals leave it stale-but-conservative until
    :meth:`recompute_hull` -- a too-small hull only costs an extra scan,
    never a missed drop.
    """

    def __init__(self) -> None:
        self._entries: dict[QueryId, LqtEntry] = {}
        self.version = 0
        self._watcher = None
        self._watch_oid: ObjectId | None = None
        self._entry_watcher = None
        self._entry_oid: ObjectId | None = None
        self.hull_lo_i = -_HULL_MAX
        self.hull_hi_i = _HULL_MAX
        self.hull_lo_j = -_HULL_MAX
        self.hull_hi_j = _HULL_MAX

    def watch(self, watcher, oid: ObjectId) -> None:
        """Register ``watcher`` to receive change notifications for this
        table, identified by the owning object's ``oid``."""
        self._watcher = watcher
        self._watch_oid = oid

    def watch_entries(self, watcher, oid: ObjectId) -> None:
        """Register an entry watcher (``entry_installed`` /
        ``entry_removed`` hooks), identified by the owning object's oid."""
        self._entry_watcher = watcher
        self._entry_oid = oid

    # ----------------------------------------------------------------- hull

    def hull_contains(self, cell: CellIndex) -> bool:
        """Whether ``cell`` lies inside every entry's monitoring-region
        bounds (conservatively: inside the maintained hull)."""
        i, j = cell
        return (
            self.hull_lo_i <= i <= self.hull_hi_i
            and self.hull_lo_j <= j <= self.hull_hi_j
        )

    def tighten_hull(self, region: CellRange) -> None:
        """Intersect the hull with one monitoring region's bounds."""
        if region.lo_i > self.hull_lo_i:
            self.hull_lo_i = region.lo_i
        if region.hi_i < self.hull_hi_i:
            self.hull_hi_i = region.hi_i
        if region.lo_j > self.hull_lo_j:
            self.hull_lo_j = region.lo_j
        if region.hi_j < self.hull_hi_j:
            self.hull_hi_j = region.hi_j

    def recompute_hull(self) -> None:
        """Rebuild the hull exactly from the surviving entries."""
        lo_i = lo_j = -_HULL_MAX
        hi_i = hi_j = _HULL_MAX
        for entry in self._entries.values():
            region = entry.mon_region
            if region.lo_i > lo_i:
                lo_i = region.lo_i
            if region.hi_i < hi_i:
                hi_i = region.hi_i
            if region.lo_j > lo_j:
                lo_j = region.lo_j
            if region.hi_j < hi_j:
                hi_j = region.hi_j
        self.hull_lo_i = lo_i
        self.hull_hi_i = hi_i
        self.hull_lo_j = lo_j
        self.hull_hi_j = hi_j

    def notify_state(self, entry: LqtEntry) -> None:
        """Tell the watcher (if any) that ``entry.focal_state`` was replaced."""
        watcher = self._watcher
        if watcher is not None:
            watcher.state_changed(self._watch_oid, entry)

    def __contains__(self, qid: QueryId) -> bool:
        return qid in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, qid: QueryId) -> LqtEntry:
        """Look up a stored entry by its identifier."""
        return self._entries[qid]

    def find(self, qid: QueryId) -> LqtEntry | None:
        """Look up a stored entry, or ``None`` when absent (one lookup)."""
        return self._entries.get(qid)

    def install(self, entry: LqtEntry) -> None:
        """Install (or replace) a query entry."""
        self._entries[entry.qid] = entry
        self.version += 1
        self.tighten_hull(entry.mon_region)
        watcher = self._watcher
        if watcher is not None:
            watcher.lqt_changed(self._watch_oid)
        entry_watcher = self._entry_watcher
        if entry_watcher is not None:
            entry_watcher.entry_installed(self._entry_oid, entry)

    def remove(self, qid: QueryId) -> LqtEntry | None:
        """Remove a stored entry."""
        entry = self._entries.pop(qid, None)
        if entry is not None:
            self.version += 1
            watcher = self._watcher
            if watcher is not None:
                watcher.lqt_changed(self._watch_oid)
            entry_watcher = self._entry_watcher
            if entry_watcher is not None:
                entry_watcher.entry_removed(self._entry_oid, entry)
        return entry

    def entries(self) -> list[LqtEntry]:
        """Iterate over the stored entries."""
        return list(self._entries.values())

    def ids(self) -> list[QueryId]:
        """Iterate over the stored identifiers."""
        return list(self._entries)

    def by_focal(self) -> dict[ObjectId | None, list[LqtEntry]]:
        """Entries grouped by focal object, each group sorted by reach
        descending -- the object-side grouping order (paper Section 4.1):
        when the object is beyond a larger region's reach it is necessarily
        outside every smaller one bound to the same focal object.

        Static entries all land under the ``None`` key; they share no focal
        object, so the caller must not apply the reach short-circuit there.
        """
        groups: dict[ObjectId | None, list[LqtEntry]] = {}
        for entry in self._entries.values():
            groups.setdefault(entry.oid, []).append(entry)
        for group in groups.values():
            group.sort(key=lambda e: -e.reach)
        return groups
