"""Simulated wireless transport between the server and moving objects.

The transport realizes the paper's asymmetric communication model: objects
uplink to the server through their covering base station; the server reaches
objects either through a one-to-one downlink message or by broadcasting
through the minimal set of base stations covering a grid-cell region.  Every
object inside a broadcasting station's coverage circle *hears* the broadcast
(and pays receive energy) whether or not the content is relevant -- the
over-hearing the paper identifies as MobiEyes' main energy overhead.

Delivery is staged through a deferred message pipeline: every hop is
stamped with a per-link delay by an optional
:class:`~repro.network.latency.LatencyModel` and queued as a timestamped
:class:`Envelope`; the engine's *delivery phase* drains the envelopes
whose delay elapsed in deterministic ``(deliver_step, sender, seq)``
order.  A zero-delay hop (the default -- no latency model attached, or a
model with all-zero delays) completes *inline at send time*, which is
exactly the paper's assumption that protocol exchanges complete within
the 30-second step; the inline path is bit-identical to the historical
call-at-send transport.

One modeling note: the server's *minimal station cover* of a monitoring
region picks stations whose coverage circles intersect every region cell,
which does not guarantee every *point* of every cell is inside a chosen
circle.  We treat broadcasts as reliably delivered to every object located
in the target region's cells (the intended recipients) while objects inside
the chosen stations' circles additionally over-hear the message; both
groups pay receive energy.  This keeps the paper's message counts (one per
chosen station) without introducing delivery gaps the paper does not model.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Protocol

from repro.core.messages import REC_RESULT, UplinkReportBatch
from repro.geometry import Point
from repro.grid import CellIndex, CellRange, CellRangeUnion, Grid
from repro.mobility.model import ObjectId
from repro.network.basestation import BaseStationId, BaseStationLayout
from repro.network.latency import LatencyModel
from repro.network.loss import LossModel
from repro.network.messaging import MessageLedger
from repro.sim.trace import TraceLog

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.reporting import ReportBuffer

# Envelope sender key for server-originated traffic.  Object ids are
# non-negative, so the server's messages sort first within a step.
SERVER_SENDER = -1


@dataclass(slots=True)
class Envelope:
    """One deferred hop in the delivery pipeline.

    Ordering within a delivery step is total and deterministic: envelopes
    drain sorted by ``(sender, seq)``, where ``seq`` is a transport-global
    monotonic stamp allocated at enqueue time -- so two messages from the
    same sender can never reorder, and ties across senders break by the
    sender key (:data:`SERVER_SENDER` before any object id).
    """

    deliver_step: int
    sender: int
    seq: int
    kind: str  # "uplink" | "downlink" | a reliability exchange kind
    message: object
    sent_step: int
    receiver: ObjectId | None = None
    downlink_seq: int | None = None
    context: object = None  # reliability exchange state, when applicable
    # Partition epoch at enqueue time: the routing generation this hop was
    # planned under.  If the map was repartitioned while the hop was in
    # flight, delivery re-resolves the destination against the live map
    # (uplinks are routed by ``shard_for_uplink`` at open time, never by a
    # shard id frozen at enqueue) and the mismatch is counted as a
    # stale-epoch reroute rather than a drop.
    epoch: int = 0


class DownlinkReceiver(Protocol):
    """A moving object's radio: receives downlink messages."""

    def on_downlink(self, message: object) -> None: ...


class UplinkReceiver(Protocol):
    """The server's radio: receives uplink messages."""

    def on_uplink(self, message: object) -> None: ...


class CoverageIndex:
    """Fast lookup of the objects covered by stations or grid-cell regions.

    Objects are bucketed once per step both by base-station lattice tile
    (a station's coverage circle only overlaps its tile and the eight
    neighbours, so circle lookups touch a constant number of buckets) and
    by grid cell (region delivery is a direct bucket union).
    """

    def __init__(self, layout: BaseStationLayout, grid: Grid) -> None:
        self.layout = layout
        self.grid = grid
        self._tile_buckets: dict[tuple[int, int], list[tuple[ObjectId, Point]]] = {}
        self._cell_buckets: dict[CellIndex, list[ObjectId]] = {}
        # Per-object cell lookup, maintained only when a sharded server
        # needs to route uplinks by sender cell (off by default: the
        # monolithic server never asks, and the extra dict write per
        # object would sit on the hot path for nothing).
        self.track_cells = False
        self._cell_of: dict[ObjectId, CellIndex] = {}

    def rebuild(self, positions: Iterable[tuple[ObjectId, Point]]) -> None:
        """Re-bucket the object positions for the new step."""
        self._tile_buckets.clear()
        self._cell_buckets.clear()
        tile_of = self.layout.tile_of_point
        cell_of = self.grid.cell_index
        if self.track_cells:
            self._cell_of.clear()
            for oid, pos in positions:
                cell = cell_of(pos)
                self._tile_buckets.setdefault(tile_of(pos), []).append((oid, pos))
                self._cell_buckets.setdefault(cell, []).append(oid)
                self._cell_of[oid] = cell
            return
        for oid, pos in positions:
            self._tile_buckets.setdefault(tile_of(pos), []).append((oid, pos))
            self._cell_buckets.setdefault(cell_of(pos), []).append(oid)

    def cell_of(self, oid: ObjectId) -> CellIndex:
        """The grid cell an object was in at the last rebuild (requires
        ``track_cells``)."""
        return self._cell_of[oid]

    def covered_by_stations(self, station_ids: Iterable[BaseStationId]) -> set[ObjectId]:
        """Objects inside any of the stations' coverage circles."""
        out: set[ObjectId] = set()
        for bsid in station_ids:
            station = self.layout.get(bsid)
            ti, tj = self.layout.tile_of_station(bsid)
            coverage = station.coverage
            for di in (-1, 0, 1):
                for dj in (-1, 0, 1):
                    bucket = self._tile_buckets.get((ti + di, tj + dj))
                    if not bucket:
                        continue
                    for oid, pos in bucket:
                        if coverage.contains(pos):
                            out.add(oid)
        return out

    def in_cells(self, cells: Iterable[CellIndex]) -> set[ObjectId]:
        """Objects currently located in the given grid cells."""
        out: set[ObjectId] = set()
        for cell in cells:
            bucket = self._cell_buckets.get(cell)
            if bucket:
                out.update(bucket)
        return out


class SimulatedTransport:
    """Routes protocol messages, accounting them in a message ledger.

    When ``loss`` is a :class:`~repro.faults.injector.FaultInjector`
    (recognized by its ``policy`` attribute) the transport activates the
    real reliability machinery: messages whose class declares
    ``reliable = True`` go through the ack/retransmit layer instead of
    the loss-exemption shortcut, and every downlink delivered to (or
    dropped for) a registered client bumps that client's sequence number
    so receivers can detect the traffic they missed.
    """

    def __init__(
        self,
        layout: BaseStationLayout,
        grid: Grid,
        ledger: MessageLedger,
        trace: TraceLog | None = None,
        loss: LossModel | None = None,
    ) -> None:
        self.layout = layout
        self.ledger = ledger
        self.trace = trace
        self.loss = loss
        self.reliability = None
        if getattr(loss, "policy", None) is not None:
            from repro.faults.reliability import ReliabilityLayer

            self.reliability = ReliabilityLayer(self, loss)
        self.coverage = CoverageIndex(layout, grid)
        self._clients: dict[ObjectId, DownlinkReceiver] = {}
        self._server: UplinkReceiver | None = None
        self._step = 0
        self._downlink_seq: dict[ObjectId, int] = {}
        # Sharded-server support: when on, the coverage index keeps a
        # per-object cell lookup so uplinks can be routed by sender cell.
        self._route_cells = False
        # Deferred-delivery pipeline: per-link delays from the latency
        # model, envelopes parked until their deliver_step, and a forced-
        # inline depth for exchanges that must complete within a call
        # (install-time round trips).
        self.latency: LatencyModel | None = None
        self._queue: dict[int, list[Envelope]] = {}
        self._envelope_seq = 0
        self._force_inline = 0
        # Per-step delivery statistics, drained by the metrics collector.
        self._delivered_deferred = 0
        self._delivered_delay_sum = 0
        # Uplinks opened under a newer partition epoch than they were
        # enqueued with (run-cumulative; observability for rebalancing).
        self.stale_epoch_reroutes = 0
        # Optional serialization meter: when armed (the bench's phase-split
        # instrumentation), wall seconds spent on message/envelope
        # accounting -- ledger charging, tracing, batch grouping -- are
        # accumulated here, separately from protocol compute.
        self.meter_serialization = False
        self.serialization_seconds = 0.0
        # Columnar report buffer (wired by the system when batched
        # reporting is on); clients append to it while a window is open
        # (``depth > 0``) instead of sending per-report dataclasses.
        self.report_buffer: "ReportBuffer | None" = None
        # Vectorized broadcast fan-out (wired by the fastpath runtime).
        # When set, eligible region broadcasts are applied to all covered
        # receivers in bulk instead of one ``_deliver`` call each; the
        # hook declines (returns False) whenever loss, reliability,
        # tracing, or deferred delivery require per-receiver semantics.
        self.fanout = None

    # ------------------------------------------------------------- wiring

    @property
    def step(self) -> int:
        """The simulation step the transport is currently in."""
        return self._step

    def attach_server(self, server: UplinkReceiver) -> None:
        """Register the server as the uplink sink."""
        self._server = server

    def attach_client(self, oid: ObjectId, client: DownlinkReceiver) -> None:
        """Register an object's radio for downlink delivery."""
        self._clients[oid] = client

    def detach_client(self, oid: ObjectId) -> None:
        """Remove an object's radio."""
        self._clients.pop(oid, None)

    def enable_cell_routing(self) -> None:
        """Keep per-object cells in the coverage index (sharded server)."""
        self._route_cells = True
        self.coverage.track_cells = True

    def sender_cell(self, oid: ObjectId) -> CellIndex:
        """The grid cell of an uplink sender this step (requires
        :meth:`enable_cell_routing`)."""
        return self.coverage.cell_of(oid)

    def uplink_endpoint(self, message: object) -> int:
        """The server-side endpoint an uplink lands on: the shard id under
        a sharded server, always ``0`` for the monolith.  The reliability
        layer keys its per-sender sequence streams by endpoint so each
        shard sees a gap-free stream."""
        route = getattr(self._server, "shard_for_uplink", None)
        if route is None:
            return 0
        return route(message)

    def begin_step(self, step: int, positions: Iterable[tuple[ObjectId, Point]]) -> None:
        """Refresh the coverage index for the new step's object positions."""
        self._step = step
        if self.loss is not None:
            self.loss.begin_step(step)
        if self._route_cells:
            # Survives the fastpath swapping in its own coverage index.
            self.coverage.track_cells = True
        self.coverage.rebuild(positions)

    def next_downlink_seq(self, oid: ObjectId) -> int:
        """Allocate the next slot in one receiver's downlink sequence."""
        seq = self._downlink_seq.get(oid, 0) + 1
        self._downlink_seq[oid] = seq
        return seq

    # ----------------------------------------------------------- pipeline

    def set_latency(self, model: LatencyModel | None) -> None:
        """Attach (or clear) the per-link latency model."""
        self.latency = model

    @property
    def latency_active(self) -> bool:
        """Whether hops are currently being deferred (a nonzero latency
        model is attached and no forced-inline section is open)."""
        return (
            self.latency is not None and not self._force_inline and not self.latency.is_zero
        )

    @contextmanager
    def synchronous(self) -> Iterator[None]:
        """Force every hop inline for the duration of the block.

        Used for exchanges that must complete within a single call -- the
        install-time motion-state round trip predates the simulation run,
        so there is no delivery phase to drain a deferred response.
        """
        self._force_inline += 1
        try:
            yield
        finally:
            self._force_inline -= 1

    def _uplink_delay(self) -> int:
        if not self.latency_active:
            return 0
        return self.latency.uplink_delay()

    def _downlink_delay(self) -> int:
        if not self.latency_active:
            return 0
        return self.latency.downlink_delay()

    def _enqueue(
        self,
        kind: str,
        message: object,
        sender: int,
        delay: int,
        *,
        receiver: ObjectId | None = None,
        downlink_seq: int | None = None,
        context: object = None,
    ) -> Envelope:
        """Park one hop in the pipeline until its delay elapses."""
        self._envelope_seq += 1
        envelope = Envelope(
            deliver_step=self._step + delay,
            sender=sender,
            seq=self._envelope_seq,
            kind=kind,
            message=message,
            sent_step=self._step,
            receiver=receiver,
            downlink_seq=downlink_seq,
            context=context,
            epoch=getattr(self._server, "partition_epoch", 0),
        )
        self._queue.setdefault(envelope.deliver_step, []).append(envelope)
        return envelope

    def delivery_phase(self, step: int) -> None:
        """Drain every due envelope, then run the retransmit timers.

        Envelopes due the same step drain in ``(sender, seq)`` order;
        opening an envelope may enqueue follow-up hops (acks, reactions),
        but those always land on a strictly later step, so one pass over
        the due keys is complete.
        """
        queue = self._queue
        if queue:
            for due in sorted(key for key in queue if key <= step):
                batch = queue.pop(due)
                if any(env.kind == "uplink_batch" for env in batch):
                    self._open_expanded(batch, step)
                    continue
                batch.sort(key=lambda env: (env.sender, env.seq))
                for envelope in batch:
                    self._open_envelope(envelope, step)
        if self.reliability is not None:
            self.reliability.advance(step)

    def _open_expanded(self, batch: list[Envelope], step: int) -> None:
        """Drain one due slot that contains batched-report envelopes.

        Each batch envelope carries N report records, every record keeping
        the sender and transport sequence number the per-message path would
        have stamped on its own envelope.  Expanding batches to per-record
        units and merge-sorting them with the scalar envelopes by
        ``(sender, seq)`` reproduces the per-message drain order exactly.
        """
        units: list[tuple[int, int, Envelope, int]] = []
        live_epoch = getattr(self._server, "partition_epoch", 0)
        for env in batch:
            if env.kind == "uplink_batch":
                if env.epoch != live_epoch:
                    self.stale_epoch_reroutes += 1
                message: UplinkReportBatch = env.message  # type: ignore[assignment]
                for k in range(message.count):
                    units.append((message.oid[k], message.seq[k], env, k))
            else:
                units.append((env.sender, env.seq, env, -1))
        units.sort(key=lambda unit: (unit[0], unit[1]))
        # A parallel shard executor takes maximal runs of contiguous
        # result records (same rules as the inline flush: a run ends at
        # any non-result record or scalar envelope, which may move query
        # ownership or trigger inline reactions; result applies cannot).
        batch_factory = getattr(self._server, "result_batch_applier", None)
        batch_apply = batch_factory() if batch_factory is not None else None
        run: list[tuple[object, int]] = []
        for _sender, _seq, env, k in units:
            if k < 0:
                if run:
                    batch_apply(run)
                    run = []
                self._open_envelope(env, step)
                continue
            self._delivered_deferred += 1
            self._delivered_delay_sum += step - env.sent_step
            message = env.message
            if batch_apply is not None and message.kind[k] == REC_RESULT:  # type: ignore[attr-defined]
                run.append((message, k))
                continue
            if run:
                batch_apply(run)
                run = []
            self._server.apply_report_record(message, k)  # type: ignore[union-attr]
        if run:
            batch_apply(run)

    def _open_envelope(self, envelope: Envelope, step: int) -> None:
        """Hand one due envelope to its receiver."""
        self._delivered_deferred += 1
        self._delivered_delay_sum += step - envelope.sent_step
        kind = envelope.kind
        if kind == "uplink":
            if envelope.epoch != getattr(self._server, "partition_epoch", 0):
                # The map moved while this hop was in flight; on_uplink
                # resolves the destination shard against the live map, so
                # the uplink is rerouted rather than dropped.
                self.stale_epoch_reroutes += 1
            self._server.on_uplink(envelope.message)
            return
        if kind == "downlink":
            client = self._clients.get(envelope.receiver)
            if client is None:
                return  # radio detached while the message was in flight
            if envelope.downlink_seq is not None:
                observe = getattr(client, "observe_downlink_seq", None)
                if observe is not None:
                    observe(envelope.downlink_seq)
            client.on_downlink(envelope.message)
            return
        self.reliability.open_envelope(envelope)

    def discard_queued(self, predicate: Callable[[Envelope], bool]) -> int:
        """Drop queued, not-yet-delivered envelopes matching ``predicate``.

        Shard crash support: in-flight uplinks addressed to a shard die
        with it.  Returns the number of envelopes removed.  Reliable
        exchanges whose envelope is discarded stay pending -- their
        retransmit timers keep running, so the hop is retried (and
        re-routed) or fails through the normal retry budget.
        """
        removed = 0
        for due in list(self._queue):
            batch = self._queue[due]
            kept = [env for env in batch if not predicate(env)]
            if len(kept) != len(batch):
                removed += len(batch) - len(kept)
                if kept:
                    self._queue[due] = kept
                else:
                    del self._queue[due]
        return removed

    def pending_count(self) -> int:
        """Logical messages currently in flight (enqueued, not yet
        delivered); a batched-report envelope counts once per record."""
        total = 0
        for batch in self._queue.values():
            for env in batch:
                if env.kind == "uplink_batch":
                    total += env.message.count  # type: ignore[attr-defined]
                else:
                    total += 1
        return total

    def drain_delivery_stats(self) -> tuple[int, int]:
        """``(deferred deliveries, summed delivery delay in steps)`` since
        the last drain; zeroed for the next measurement window."""
        delivered = self._delivered_deferred
        delay_sum = self._delivered_delay_sum
        self._delivered_deferred = 0
        self._delivered_delay_sum = 0
        return delivered, delay_sum

    # ------------------------------------------------------------ traffic

    def uplink(self, message: object) -> bool | None:
        """Object -> server message through the covering base station.

        Returns whether the message reached the server (and, for reliable
        messages under fault injection, was acknowledged back).  Under
        modeled latency a deferred hop returns ``True`` when it is on the
        wire (loss is rolled at send time), and a deferred reliable
        exchange returns ``None`` -- the outcome is reported to the sender
        when the ack arrives or the retry budget drains.
        """
        if self._server is None:
            raise RuntimeError("no server attached to transport")
        if self.reliability is not None and getattr(message, "reliable", False):
            return self.reliability.reliable_uplink(message)
        meter = self.meter_serialization
        t0 = perf_counter() if meter else 0.0
        bits = message.bits  # type: ignore[attr-defined]
        sender = getattr(message, "oid", None)
        self.ledger.record_uplink(type(message).__name__, bits, sender=sender)
        if self.trace is not None:
            self.trace.record(self._step, "uplink", type=type(message).__name__, oid=sender)
        if meter:
            self.serialization_seconds += perf_counter() - t0
        if self.loss is not None and self.loss.drop_uplink(message):
            return False  # sent (and accounted) but lost in transit
        # With no latency model configured the hop is always inline: hand
        # the message straight to the server without computing a delay or
        # touching the envelope pipeline.
        delay = 0 if self.latency is None else self._uplink_delay()
        if delay <= 0:
            self._server.on_uplink(message)
            return True
        self._enqueue(
            "uplink", message, sender if sender is not None else SERVER_SENDER, delay
        )
        return True

    def flush_reports(self, buf: "ReportBuffer") -> None:
        """Flush a closed client-side report window.

        Must be called with the window closed (``buf.depth == 0``): any
        report a server reaction provokes mid-flush then takes the
        ordinary inline path, exactly where the per-message pipeline would
        have sent it.  Three modes, chosen once per flush:

        - **Replay** (a loss model or the reliability layer is active, or
          the server has no columnar ingestion): every record is
          rehydrated into its dataclass and sent through :meth:`uplink`,
          keeping drop rolls, acks, and retransmissions per logical
          message.
        - **Inline** (no deferred delivery): records are charged to the
          ledger and applied to the server column by column -- no
          dataclass, no envelope.
        - **Deferred** (nonzero latency): records are charged and stamped
          with per-record delays and sequence numbers in append order
          (the per-message path's RNG-draw and seq order), then grouped
          into one :class:`UplinkReportBatch` envelope per
          ``(delivery step, sender cell)``.
        """
        n = len(buf.kind)
        if n == 0:
            return
        server = self._server
        if server is None:
            raise RuntimeError("no server attached to transport")
        apply_record = getattr(server, "apply_report_record", None)
        if self.loss is not None or self.reliability is not None or apply_record is None:
            for i in range(n):
                self.uplink(buf.rehydrate(i))
            buf.clear()
            return
        meter = self.meter_serialization
        ledger = self.ledger
        trace = self.trace
        step = self._step
        if not self.latency_active:
            # A parallel shard executor takes maximal *runs* of contiguous
            # result records in one batched call; the run flushes before
            # any non-result record applies, because cell changes can move
            # query ownership (focal migration) while result applies
            # cannot, so every split inside a run sees frozen directories
            # and the per-record ledger/trace order is untouched (result
            # applies emit no ledger or trace events).
            batch_factory = getattr(server, "result_batch_applier", None)
            batch_apply = batch_factory() if batch_factory is not None else None
            run: list[tuple[object, int]] = []
            kinds = buf.kind
            for i in range(n):
                t0 = perf_counter() if meter else 0.0
                name = buf.kind_name_of(i)
                oid = buf.oid[i]
                ledger.record_uplink(name, buf.bits_of(i), sender=oid)
                if trace is not None:
                    trace.record(step, "uplink", type=name, oid=oid)
                if meter:
                    self.serialization_seconds += perf_counter() - t0
                if batch_apply is not None and kinds[i] == REC_RESULT:
                    run.append((buf, i))
                    continue
                if run:
                    batch_apply(run)
                    run = []
                apply_record(buf, i)
            if run:
                batch_apply(run)
            buf.clear()
            return
        t0 = perf_counter() if meter else 0.0
        latency = self.latency
        cell_of = self.coverage.cell_of if self._route_cells else None
        groups: dict[tuple[int, object], UplinkReportBatch] = {}
        for i in range(n):
            name = buf.kind_name_of(i)
            oid = buf.oid[i]
            ledger.record_uplink(name, buf.bits_of(i), sender=oid)
            if trace is not None:
                trace.record(step, "uplink", type=name, oid=oid)
            delay = latency.uplink_delay()
            self._envelope_seq += 1
            key = (delay, cell_of(oid) if cell_of is not None else None)
            group = groups.get(key)
            if group is None:
                group = groups[key] = UplinkReportBatch()
            group.kind.append(buf.kind[i])
            group.oid.append(oid)
            group.epoch.append(buf.epoch[i])
            group.prev_i.append(buf.prev_i[i])
            group.prev_j.append(buf.prev_j[i])
            group.new_i.append(buf.new_i[i])
            group.new_j.append(buf.new_j[i])
            group.state.append(buf.state[i])
            lo, hi = buf.qid_lo[i], buf.qid_hi[i]
            group.qid_lo.append(len(group.qid_flat))
            group.qid_flat.extend(buf.qid_flat[lo:hi])
            group.flag_flat.extend(buf.flag_flat[lo:hi])
            group.qid_hi.append(len(group.qid_flat))
            group.seq.append(self._envelope_seq)
        for (delay, _cell), message in groups.items():
            self._queue.setdefault(step + delay, []).append(
                Envelope(
                    deliver_step=step + delay,
                    sender=message.oid[0],
                    seq=message.seq[0],
                    kind="uplink_batch",
                    message=message,
                    sent_step=step,
                    epoch=getattr(self._server, "partition_epoch", 0),
                )
            )
        if meter:
            self.serialization_seconds += perf_counter() - t0
        buf.clear()

    def send(self, oid: ObjectId, message: object) -> bool | None:
        """Server -> one object (counted as a single downlink message).

        Returns whether the receiver got the message (acknowledged, for
        reliable messages under fault injection; ``None`` while a deferred
        reliable exchange is still in flight).
        """
        if self.reliability is not None and getattr(message, "reliable", False):
            return self.reliability.reliable_send(oid, message)
        meter = self.meter_serialization
        t0 = perf_counter() if meter else 0.0
        bits = message.bits  # type: ignore[attr-defined]
        self.ledger.record_downlink(type(message).__name__, bits, receivers=(oid,), broadcasts=1)
        if self.trace is not None:
            self.trace.record(self._step, "send", type=type(message).__name__, oid=oid)
        if meter:
            self.serialization_seconds += perf_counter() - t0
        return self._deliver(oid, message)

    def broadcast(self, region: Iterable[CellIndex], message: object) -> int:
        """Server -> the objects of a grid-cell region.

        One wireless message per station of the minimal cover; every object
        located in the region's cells receives the message, and objects
        inside the chosen stations' circles over-hear it (receive energy
        only).  Returns the number of broadcast messages sent.
        """
        if not isinstance(region, (CellRange, CellRangeUnion)):
            region = list(region)
        station_ids = self.layout.minimal_cover(region)
        if not station_ids:
            return 0
        if self.fanout is not None and self.fanout.try_broadcast(station_ids, region, message):
            return len(station_ids)
        receivers = self.coverage.covered_by_stations(station_ids)
        receivers |= self.coverage.in_cells(region)
        meter = self.meter_serialization
        t0 = perf_counter() if meter else 0.0
        bits = message.bits  # type: ignore[attr-defined]
        self.ledger.record_downlink(
            type(message).__name__, bits, receivers=receivers, broadcasts=len(station_ids)
        )
        if self.trace is not None:
            self.trace.record(
                self._step,
                "broadcast",
                type=type(message).__name__,
                stations=len(station_ids),
                receivers=len(receivers),
            )
        if meter:
            self.serialization_seconds += perf_counter() - t0
        for oid in sorted(receivers):
            self._deliver(oid, message)
        return len(station_ids)

    def _deliver(self, oid: ObjectId, message: object) -> bool:
        """One receiver's downlink hop: loss roll, sequencing, handover.

        Receivers without an attached radio are skipped before any loss
        roll -- there is no radio to miss the message, so no drop is
        counted and no randomness is consumed.  Loss rolls and sequence
        allocation happen at send time; under modeled latency the
        surviving hop is parked in the pipeline and the receiver observes
        the sequence number when the envelope opens.
        """
        client = self._clients.get(oid)
        if client is None:
            return False
        dropped = self.loss is not None and self.loss.drop_delivery(message, receiver=oid)
        seq = self.next_downlink_seq(oid) if self.reliability is not None else None
        if dropped:
            return False
        delay = 0 if self.latency is None else self._downlink_delay()
        if delay > 0:
            self._enqueue(
                "downlink", message, SERVER_SENDER, delay, receiver=oid, downlink_seq=seq
            )
            return True
        if seq is not None:
            observe = getattr(client, "observe_downlink_seq", None)
            if observe is not None:
                observe(seq)
        client.on_downlink(message)
        return True
