"""Simulated wireless transport between the server and moving objects.

The transport realizes the paper's asymmetric communication model: objects
uplink to the server through their covering base station; the server reaches
objects either through a one-to-one downlink message or by broadcasting
through the minimal set of base stations covering a grid-cell region.  Every
object inside a broadcasting station's coverage circle *hears* the broadcast
(and pays receive energy) whether or not the content is relevant -- the
over-hearing the paper identifies as MobiEyes' main energy overhead.

Delivery is synchronous within a time step, which matches the paper's
assumption that protocol exchanges complete within the 30-second step.

One modeling note: the server's *minimal station cover* of a monitoring
region picks stations whose coverage circles intersect every region cell,
which does not guarantee every *point* of every cell is inside a chosen
circle.  We treat broadcasts as reliably delivered to every object located
in the target region's cells (the intended recipients) while objects inside
the chosen stations' circles additionally over-hear the message; both
groups pay receive energy.  This keeps the paper's message counts (one per
chosen station) without introducing delivery gaps the paper does not model.
"""

from __future__ import annotations

from typing import Iterable, Protocol

from repro.geometry import Point
from repro.grid import CellIndex, CellRange, Grid
from repro.mobility.model import ObjectId
from repro.network.basestation import BaseStationId, BaseStationLayout
from repro.network.loss import LossModel
from repro.network.messaging import MessageLedger
from repro.sim.trace import TraceLog


class DownlinkReceiver(Protocol):
    """A moving object's radio: receives downlink messages."""

    def on_downlink(self, message: object) -> None: ...


class UplinkReceiver(Protocol):
    """The server's radio: receives uplink messages."""

    def on_uplink(self, message: object) -> None: ...


class CoverageIndex:
    """Fast lookup of the objects covered by stations or grid-cell regions.

    Objects are bucketed once per step both by base-station lattice tile
    (a station's coverage circle only overlaps its tile and the eight
    neighbours, so circle lookups touch a constant number of buckets) and
    by grid cell (region delivery is a direct bucket union).
    """

    def __init__(self, layout: BaseStationLayout, grid: Grid) -> None:
        self.layout = layout
        self.grid = grid
        self._tile_buckets: dict[tuple[int, int], list[tuple[ObjectId, Point]]] = {}
        self._cell_buckets: dict[CellIndex, list[ObjectId]] = {}
        # Per-object cell lookup, maintained only when a sharded server
        # needs to route uplinks by sender cell (off by default: the
        # monolithic server never asks, and the extra dict write per
        # object would sit on the hot path for nothing).
        self.track_cells = False
        self._cell_of: dict[ObjectId, CellIndex] = {}

    def rebuild(self, positions: Iterable[tuple[ObjectId, Point]]) -> None:
        """Re-bucket the object positions for the new step."""
        self._tile_buckets.clear()
        self._cell_buckets.clear()
        tile_of = self.layout.tile_of_point
        cell_of = self.grid.cell_index
        if self.track_cells:
            self._cell_of.clear()
            for oid, pos in positions:
                cell = cell_of(pos)
                self._tile_buckets.setdefault(tile_of(pos), []).append((oid, pos))
                self._cell_buckets.setdefault(cell, []).append(oid)
                self._cell_of[oid] = cell
            return
        for oid, pos in positions:
            self._tile_buckets.setdefault(tile_of(pos), []).append((oid, pos))
            self._cell_buckets.setdefault(cell_of(pos), []).append(oid)

    def cell_of(self, oid: ObjectId) -> CellIndex:
        """The grid cell an object was in at the last rebuild (requires
        ``track_cells``)."""
        return self._cell_of[oid]

    def covered_by_stations(self, station_ids: Iterable[BaseStationId]) -> set[ObjectId]:
        """Objects inside any of the stations' coverage circles."""
        out: set[ObjectId] = set()
        for bsid in station_ids:
            station = self.layout.get(bsid)
            ti, tj = self.layout.tile_of_station(bsid)
            coverage = station.coverage
            for di in (-1, 0, 1):
                for dj in (-1, 0, 1):
                    bucket = self._tile_buckets.get((ti + di, tj + dj))
                    if not bucket:
                        continue
                    for oid, pos in bucket:
                        if coverage.contains(pos):
                            out.add(oid)
        return out

    def in_cells(self, cells: Iterable[CellIndex]) -> set[ObjectId]:
        """Objects currently located in the given grid cells."""
        out: set[ObjectId] = set()
        for cell in cells:
            bucket = self._cell_buckets.get(cell)
            if bucket:
                out.update(bucket)
        return out


class SimulatedTransport:
    """Routes protocol messages, accounting them in a message ledger.

    When ``loss`` is a :class:`~repro.faults.injector.FaultInjector`
    (recognized by its ``policy`` attribute) the transport activates the
    real reliability machinery: messages whose class declares
    ``reliable = True`` go through the ack/retransmit layer instead of
    the loss-exemption shortcut, and every downlink delivered to (or
    dropped for) a registered client bumps that client's sequence number
    so receivers can detect the traffic they missed.
    """

    def __init__(
        self,
        layout: BaseStationLayout,
        grid: Grid,
        ledger: MessageLedger,
        trace: TraceLog | None = None,
        loss: LossModel | None = None,
    ) -> None:
        self.layout = layout
        self.ledger = ledger
        self.trace = trace
        self.loss = loss
        self.reliability = None
        if getattr(loss, "policy", None) is not None:
            from repro.faults.reliability import ReliabilityLayer

            self.reliability = ReliabilityLayer(self, loss)
        self.coverage = CoverageIndex(layout, grid)
        self._clients: dict[ObjectId, DownlinkReceiver] = {}
        self._server: UplinkReceiver | None = None
        self._step = 0
        self._downlink_seq: dict[ObjectId, int] = {}
        # Sharded-server support: when on, the coverage index keeps a
        # per-object cell lookup so uplinks can be routed by sender cell.
        self._route_cells = False

    # ------------------------------------------------------------- wiring

    @property
    def step(self) -> int:
        """The simulation step the transport is currently in."""
        return self._step

    def attach_server(self, server: UplinkReceiver) -> None:
        """Register the server as the uplink sink."""
        self._server = server

    def attach_client(self, oid: ObjectId, client: DownlinkReceiver) -> None:
        """Register an object's radio for downlink delivery."""
        self._clients[oid] = client

    def detach_client(self, oid: ObjectId) -> None:
        """Remove an object's radio."""
        self._clients.pop(oid, None)

    def enable_cell_routing(self) -> None:
        """Keep per-object cells in the coverage index (sharded server)."""
        self._route_cells = True
        self.coverage.track_cells = True

    def sender_cell(self, oid: ObjectId) -> CellIndex:
        """The grid cell of an uplink sender this step (requires
        :meth:`enable_cell_routing`)."""
        return self.coverage.cell_of(oid)

    def uplink_endpoint(self, message: object) -> int:
        """The server-side endpoint an uplink lands on: the shard id under
        a sharded server, always ``0`` for the monolith.  The reliability
        layer keys its per-sender sequence streams by endpoint so each
        shard sees a gap-free stream."""
        route = getattr(self._server, "shard_for_uplink", None)
        if route is None:
            return 0
        return route(message)

    def begin_step(self, step: int, positions: Iterable[tuple[ObjectId, Point]]) -> None:
        """Refresh the coverage index for the new step's object positions."""
        self._step = step
        if self.loss is not None:
            self.loss.begin_step(step)
        if self._route_cells:
            # Survives the fastpath swapping in its own coverage index.
            self.coverage.track_cells = True
        self.coverage.rebuild(positions)

    def next_downlink_seq(self, oid: ObjectId) -> int:
        """Allocate the next slot in one receiver's downlink sequence."""
        seq = self._downlink_seq.get(oid, 0) + 1
        self._downlink_seq[oid] = seq
        return seq

    # ------------------------------------------------------------ traffic

    def uplink(self, message: object) -> bool:
        """Object -> server message through the covering base station.

        Returns whether the message reached the server (and, for reliable
        messages under fault injection, was acknowledged back).
        """
        if self._server is None:
            raise RuntimeError("no server attached to transport")
        if self.reliability is not None and getattr(message, "reliable", False):
            return self.reliability.reliable_uplink(message)
        bits = message.bits  # type: ignore[attr-defined]
        sender = getattr(message, "oid", None)
        self.ledger.record_uplink(type(message).__name__, bits, sender=sender)
        if self.trace is not None:
            self.trace.record(self._step, "uplink", type=type(message).__name__, oid=sender)
        if self.loss is not None and self.loss.drop_uplink(message):
            return False  # sent (and accounted) but lost in transit
        self._server.on_uplink(message)
        return True

    def send(self, oid: ObjectId, message: object) -> bool:
        """Server -> one object (counted as a single downlink message).

        Returns whether the receiver got the message (acknowledged, for
        reliable messages under fault injection).
        """
        if self.reliability is not None and getattr(message, "reliable", False):
            return self.reliability.reliable_send(oid, message)
        bits = message.bits  # type: ignore[attr-defined]
        self.ledger.record_downlink(type(message).__name__, bits, receivers=(oid,), broadcasts=1)
        if self.trace is not None:
            self.trace.record(self._step, "send", type=type(message).__name__, oid=oid)
        return self._deliver(oid, message)

    def broadcast(self, region: Iterable[CellIndex], message: object) -> int:
        """Server -> the objects of a grid-cell region.

        One wireless message per station of the minimal cover; every object
        located in the region's cells receives the message, and objects
        inside the chosen stations' circles over-hear it (receive energy
        only).  Returns the number of broadcast messages sent.
        """
        if not isinstance(region, CellRange):
            region = list(region)
        station_ids = self.layout.minimal_cover(region)
        if not station_ids:
            return 0
        receivers = self.coverage.covered_by_stations(station_ids)
        receivers |= self.coverage.in_cells(region)
        bits = message.bits  # type: ignore[attr-defined]
        self.ledger.record_downlink(
            type(message).__name__, bits, receivers=receivers, broadcasts=len(station_ids)
        )
        if self.trace is not None:
            self.trace.record(
                self._step,
                "broadcast",
                type=type(message).__name__,
                stations=len(station_ids),
                receivers=len(receivers),
            )
        for oid in sorted(receivers):
            self._deliver(oid, message)
        return len(station_ids)

    def _deliver(self, oid: ObjectId, message: object) -> bool:
        """One receiver's downlink hop: loss roll, sequencing, handover.

        Receivers without an attached radio are skipped before any loss
        roll -- there is no radio to miss the message, so no drop is
        counted and no randomness is consumed.
        """
        client = self._clients.get(oid)
        if client is None:
            return False
        dropped = self.loss is not None and self.loss.drop_delivery(message, receiver=oid)
        if self.reliability is not None:
            seq = self.next_downlink_seq(oid)
            if not dropped:
                observe = getattr(client, "observe_downlink_seq", None)
                if observe is not None:
                    observe(seq)
        if dropped:
            return False
        client.on_downlink(message)
        return True
