"""Experiment harness: registry, shared runner, per-figure modules."""

from repro.experiments.registry import EXPERIMENTS, TITLES, all_experiment_ids, run_experiment
from repro.experiments.runner import (
    DEFAULT_STEPS,
    DEFAULT_WARMUP,
    ExperimentResult,
    default_params,
    run_centralized,
    run_mobieyes,
)

__all__ = [
    "DEFAULT_STEPS",
    "DEFAULT_WARMUP",
    "EXPERIMENTS",
    "ExperimentResult",
    "TITLES",
    "all_experiment_ids",
    "default_params",
    "run_centralized",
    "run_experiment",
    "run_mobieyes",
]
