"""One module per reproduced paper figure, plus design ablations."""
