"""Ablation: the dead-reckoning threshold delta.

The paper introduces delta (Section 3.4) but never sweeps it.  This
ablation quantifies the trade-off it controls: a larger delta suppresses
velocity-change relays (fewer messages) at the cost of stale focal-object
predictions on the moving objects (higher result error).
"""

from __future__ import annotations

from repro.experiments.runner import (
    DEFAULT_STEPS,
    DEFAULT_WARMUP,
    ExperimentResult,
    default_params,
    run_mobieyes,
)

EXP_ID = "ablation-delta"
TITLE = "Dead-reckoning threshold: messages vs result error"

DELTAS = (0.0, 0.25, 0.5, 1.0, 2.0)  # miles


def run(
    scale: float | None = None,
    steps: int = DEFAULT_STEPS,
    warmup: int = DEFAULT_WARMUP,
) -> ExperimentResult:
    """Run the experiment; returns the reproduced table."""
    params = default_params(scale)
    rows = []
    for delta in DELTAS:
        system = run_mobieyes(
            params, steps, warmup, dead_reckoning_threshold=delta, track_accuracy=True
        )
        rows.append(
            (
                delta,
                system.metrics.messages_per_second(),
                system.metrics.uplink_messages_per_second(),
                system.metrics.mean_result_error(),
            )
        )
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=("delta", "msgs/s", "uplink/s", "error"),
        rows=tuple(rows),
        notes="expected: messages fall and error rises as delta grows",
    )
