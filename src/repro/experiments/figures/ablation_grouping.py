"""Ablation: query grouping under a skewed focal-object distribution.

Section 4.1 motivates grouping with skewed query-per-focal-object
distributions (popular focal objects attract many queries).  We draw focal
objects from a zipf so that grouping has sharing to exploit, then compare
grouping on/off on broadcast traffic, uplink result reports, and object-side
containment evaluations.
"""

from __future__ import annotations

from repro.experiments.runner import (
    DEFAULT_STEPS,
    DEFAULT_WARMUP,
    ExperimentResult,
    default_params,
    run_mobieyes,
)

EXP_ID = "ablation-grouping"
TITLE = "Query grouping on/off under zipf focal skew"

FOCAL_SKEW = 1.2


def run(
    scale: float | None = None,
    steps: int = DEFAULT_STEPS,
    warmup: int = DEFAULT_WARMUP,
) -> ExperimentResult:
    """Run the experiment; returns the reproduced table."""
    params = default_params(scale)
    rows = []
    for grouping in (False, True):
        system = run_mobieyes(
            params, steps, warmup, grouping=grouping, focal_skew=FOCAL_SKEW
        )
        rows.append(
            (
                "on" if grouping else "off",
                system.metrics.messages_per_second(),
                system.metrics.downlink_messages_per_second(),
                system.metrics.uplink_messages_per_second(),
                system.metrics.total_evaluated_queries(),
                system.metrics.mean_lqt_size(),
            )
        )
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=("grouping", "msgs/s", "downlink/s", "uplink/s", "evals", "lqt"),
        rows=tuple(rows),
        notes="expected: grouping cuts broadcasts and object-side evaluations under skew",
    )
