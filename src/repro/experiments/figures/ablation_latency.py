"""Ablation: result staleness under modeled delivery latency.

The paper reasons about propagation delay analytically (dead reckoning
exists because velocity broadcasts take time to arrive) but simulates
instantaneous delivery.  This ablation turns the deferred message
pipeline on and sweeps the per-hop delivery delay: every uplink and
every per-receiver downlink hop takes ``L`` whole steps (plus optional
seeded jitter), so reports, installs, and broadcasts all lag reality by
the pipeline's depth.

Expected shape: zero latency reproduces the exact results (the inline
path is bit-identical to the historical transport); with positive
latency the mean result error against the instantaneous oracle grows
with the delay -- the results the server holds are a faithful snapshot
of a world ``O(RTT)`` steps old -- while staying far from total failure
because dead reckoning keeps the in-between positions predictable.  The
mean in-flight envelope count grows with the delay (Little's law: depth
is roughly rate times delay), and the measured per-envelope delivery
delay equals the configured hop latency when jitter is off.
"""

from __future__ import annotations

from repro.core import MobiEyesConfig, MobiEyesSystem
from repro.experiments.runner import (
    DEFAULT_STEPS,
    DEFAULT_WARMUP,
    ExperimentResult,
    default_params,
)
from repro.sim.rng import SimulationRng
from repro.workload import generate_workload

EXP_ID = "ablation-latency"
TITLE = "Result staleness vs per-hop delivery latency (deferred pipeline)"

LATENCY_STEPS = (0, 1, 2, 4)
JITTER_POINTS = ((2, 1),)  # (base latency, jitter) rows after the fixed sweep


def _run_one(params, steps: int, warmup: int, latency: int, jitter: int) -> MobiEyesSystem:
    rng = SimulationRng(params.seed)
    workload = generate_workload(params, rng.fork(1))
    config = MobiEyesConfig(
        uod=params.uod,
        alpha=params.alpha,
        step_seconds=params.time_step_seconds,
        base_station_side=params.base_station_side,
        uplink_latency_steps=latency,
        downlink_latency_steps=latency,
        latency_jitter_steps=jitter,
        latency_seed=params.seed,
    )
    system = MobiEyesSystem(
        config,
        list(workload.objects),
        rng.fork(2),
        velocity_changes_per_step=params.velocity_changes_per_step,
        track_accuracy=True,
        warmup_steps=warmup,
    )
    system.install_queries(workload.query_specs)
    system.run(steps)
    return system


def _row(system: MobiEyesSystem, latency: int, jitter: int) -> tuple:
    metrics = system.metrics
    delay = metrics.mean_delivery_delay_steps()
    return (
        latency,
        jitter,
        metrics.mean_result_error(),
        round(metrics.mean_inflight_messages(), 3),
        round(delay, 3) if delay is not None else 0.0,
        system.metrics.messages_per_second(),
    )


def run(
    scale: float | None = None,
    steps: int = DEFAULT_STEPS,
    warmup: int = DEFAULT_WARMUP,
) -> ExperimentResult:
    """Run the experiment; returns the reproduced table."""
    params = default_params(scale)
    rows = []
    for latency in LATENCY_STEPS:
        system = _run_one(params, steps, warmup, latency, 0)
        rows.append(_row(system, latency, 0))
    for latency, jitter in JITTER_POINTS:
        system = _run_one(params, steps, warmup, latency, jitter)
        rows.append(_row(system, latency, jitter))
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=("latency-steps", "jitter", "error", "mean-inflight", "delivery-delay", "msgs/s"),
        rows=tuple(rows),
        notes="expected: zero latency is exact (inline path); error grows with the "
        "per-hop delay but stays bounded (dead reckoning); in-flight depth tracks "
        "the delay; measured delivery delay equals the configured hop latency at "
        "jitter 0",
    )
