"""Ablation: protocol robustness under wireless message loss.

The paper assumes reliable delivery.  This ablation measures the
query-result error under three failure models:

- ``iid``: independent Bernoulli loss on uplink messages and per-receiver
  downlink deliveries (the plain :class:`~repro.network.loss.LossModel`,
  which keeps control-plane messages loss-exempt).  Staleness heals at
  the next velocity-change broadcast or cell crossing, so the error
  should grow gracefully (sub-linearly) with the loss rate.
- ``burst``: Gilbert-Elliott burst channels with the *same stationary
  mean* loss rate, run through the fault-injection subsystem -- reliable
  messages are really retransmitted (and paid for) instead of exempted,
  and the recovery protocol (sequence gaps, heartbeats, resync) heals
  the bursts.
- ``disconnect``: no channel loss at all; every 7th object drops off the
  air for the middle third of the run, exercising carrier sensing, the
  server's soft-state leases, and resync-on-reconnect.
"""

from __future__ import annotations

from repro.core import MobiEyesConfig, MobiEyesSystem
from repro.experiments.runner import (
    DEFAULT_STEPS,
    DEFAULT_WARMUP,
    ExperimentResult,
    default_params,
)
from repro.faults import (
    DisconnectWindow,
    FaultInjector,
    FaultSchedule,
    GilbertElliottChannel,
)
from repro.network.loss import LossModel
from repro.sim.rng import SimulationRng
from repro.workload import generate_workload

EXP_ID = "ablation-loss"
TITLE = "Result error vs wireless message loss (iid, burst, disconnections)"

LOSS_RATES = (0.0, 0.05, 0.1, 0.2, 0.4)
BURST_RATES = (0.05, 0.1)


def _burst_channel(rng: SimulationRng, mean_rate: float) -> GilbertElliottChannel:
    """A Gilbert-Elliott channel whose stationary mean equals ``mean_rate``
    (10% of time in the bad state, clean good state)."""
    return GilbertElliottChannel(
        rng,
        p_good_to_bad=0.05,
        p_bad_to_good=0.45,
        loss_good=0.0,
        loss_bad=min(1.0, 10.0 * mean_rate),
    )


def _run_one(params, steps: int, warmup: int, loss, arm=None) -> MobiEyesSystem:
    rng = SimulationRng(params.seed)
    workload = generate_workload(params, rng.fork(1))
    config = MobiEyesConfig(
        uod=params.uod,
        alpha=params.alpha,
        step_seconds=params.time_step_seconds,
        base_station_side=params.base_station_side,
    )
    system = MobiEyesSystem(
        config,
        list(workload.objects),
        rng.fork(2),
        velocity_changes_per_step=params.velocity_changes_per_step,
        track_accuracy=True,
        warmup_steps=warmup,
        loss=loss,
    )
    system.install_queries(workload.query_specs)
    if arm is not None:
        arm()  # channels attach after installation (deployment is clean)
    system.run(steps)
    return system


def run(
    scale: float | None = None,
    steps: int = DEFAULT_STEPS,
    warmup: int = DEFAULT_WARMUP,
) -> ExperimentResult:
    """Run the experiment; returns the reproduced table."""
    params = default_params(scale)
    rows = []
    # Independent loss baseline (rows first: downstream tooling slices on
    # the "model" column, order keeps old eyeballs working too).
    for rate in LOSS_RATES:
        rng = SimulationRng(params.seed)
        loss = LossModel(rng.fork(3), uplink_loss_rate=rate, downlink_loss_rate=rate)
        system = _run_one(params, steps, warmup, loss)
        rows.append(
            (
                "iid",
                rate,
                system.metrics.mean_result_error(),
                loss.dropped_uplinks,
                loss.dropped_deliveries,
                system.metrics.messages_per_second(),
            )
        )
    # Burst loss through the fault-injection subsystem (matched means).
    for rate in BURST_RATES:
        rng = SimulationRng(params.seed)
        channel_rng = rng.fork(3)
        injector = FaultInjector(channel_rng)

        def arm(injector=injector, channel_rng=channel_rng, rate=rate):
            injector.uplink_channel = _burst_channel(channel_rng, rate)
            injector.downlink_channel = _burst_channel(channel_rng, rate)

        system = _run_one(params, steps, warmup, injector, arm=arm)
        rows.append(
            (
                "burst",
                rate,
                system.metrics.mean_result_error(),
                injector.dropped_uplinks,
                injector.dropped_deliveries,
                system.metrics.messages_per_second(),
            )
        )
    # Scheduled disconnections: every 7th object off the air for the
    # middle third of the run, no channel loss.
    rng = SimulationRng(params.seed)
    workload_oids = [obj.oid for obj in generate_workload(params, rng.fork(1)).objects]
    schedule = FaultSchedule(
        disconnects=tuple(
            DisconnectWindow(oid=oid, start=max(1, steps // 3), end=max(2, 2 * steps // 3))
            for oid in sorted(workload_oids)
            if oid % 7 == 0
        )
    )
    injector = FaultInjector(SimulationRng(params.seed).fork(3), schedule=schedule)
    system = _run_one(params, steps, warmup, injector)
    rows.append(
        (
            "disconnect",
            0.0,
            system.metrics.mean_result_error(),
            injector.dropped_uplinks,
            injector.dropped_deliveries,
            system.metrics.messages_per_second(),
        )
    )
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=("model", "loss-rate", "error", "lost-uplinks", "lost-deliveries", "msgs/s"),
        rows=tuple(rows),
        notes="expected: error grows gracefully with loss; zero loss is exact; "
        "burst/disconnect rows run through the fault-injection subsystem",
    )
