"""Ablation: protocol robustness under wireless message loss.

The paper assumes reliable delivery.  This ablation injects independent
Bernoulli loss on uplink messages and per-receiver downlink deliveries and
measures the resulting query-result error.  Staleness heals at the next
velocity-change broadcast or cell crossing, so the error should grow
gracefully (sub-linearly) with the loss rate rather than collapse.
"""

from __future__ import annotations

from repro.core import MobiEyesConfig, MobiEyesSystem
from repro.experiments.runner import (
    DEFAULT_STEPS,
    DEFAULT_WARMUP,
    ExperimentResult,
    default_params,
)
from repro.network.loss import LossModel
from repro.sim.rng import SimulationRng
from repro.workload import generate_workload

EXP_ID = "ablation-loss"
TITLE = "Result error vs wireless message loss rate"

LOSS_RATES = (0.0, 0.05, 0.1, 0.2, 0.4)


def run(
    scale: float | None = None,
    steps: int = DEFAULT_STEPS,
    warmup: int = DEFAULT_WARMUP,
) -> ExperimentResult:
    """Run the experiment; returns the reproduced table."""
    params = default_params(scale)
    rows = []
    for rate in LOSS_RATES:
        rng = SimulationRng(params.seed)
        workload = generate_workload(params, rng.fork(1))
        config = MobiEyesConfig(
            uod=params.uod,
            alpha=params.alpha,
            step_seconds=params.time_step_seconds,
            base_station_side=params.base_station_side,
        )
        loss = LossModel(rng.fork(3), uplink_loss_rate=rate, downlink_loss_rate=rate)
        system = MobiEyesSystem(
            config,
            list(workload.objects),
            rng.fork(2),
            velocity_changes_per_step=params.velocity_changes_per_step,
            track_accuracy=True,
            warmup_steps=warmup,
            loss=loss,
        )
        system.install_queries(workload.query_specs)
        system.run(steps)
        rows.append(
            (
                rate,
                system.metrics.mean_result_error(),
                loss.dropped_uplinks,
                loss.dropped_deliveries,
                system.metrics.messages_per_second(),
            )
        )
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=("loss-rate", "error", "lost-uplinks", "lost-deliveries", "msgs/s"),
        rows=tuple(rows),
        notes="expected: error grows gracefully with loss; zero loss is exact",
    )
