"""Ablation: robustness to the mobility model.

The paper evaluates under its random-velocity-change model.  This ablation
re-runs MobiEyes (EQP and LQP) and the naive baseline under the standard
*random waypoint* model and checks that the qualitative story survives:
EQP stays exact, LQP stays cheap, and MobiEyes keeps its messaging
advantage over naive central reporting.
"""

from __future__ import annotations

from repro.baselines import (
    CentralizedConfig,
    CentralizedSystem,
    IndexingMode,
    ReportingMode,
)
from repro.core import MobiEyesConfig, MobiEyesSystem, PropagationMode
from repro.experiments.runner import (
    DEFAULT_STEPS,
    DEFAULT_WARMUP,
    ExperimentResult,
    default_params,
)
from repro.mobility import MotionModel, RandomWaypointModel
from repro.sim.rng import SimulationRng
from repro.workload import generate_workload

EXP_ID = "ablation-mobility"
TITLE = "Mobility-model robustness: velocity-change vs random waypoint"


def _build_motion(kind: str, objects, params, rng):
    if kind == "waypoint":
        return RandomWaypointModel(objects, params.uod, rng)
    return MotionModel(
        objects,
        params.uod,
        rng,
        velocity_changes_per_step=params.velocity_changes_per_step,
    )


def run(
    scale: float | None = None,
    steps: int = DEFAULT_STEPS,
    warmup: int = DEFAULT_WARMUP,
) -> ExperimentResult:
    """Run the experiment; returns the reproduced table."""
    params = default_params(scale)
    rows = []
    for kind in ("velocity-change", "waypoint"):
        rng = SimulationRng(params.seed)
        workload = generate_workload(params, rng.fork(1))

        def fresh_objects():
            wl = generate_workload(params, SimulationRng(params.seed).fork(1))
            return list(wl.objects)

        results = {}
        for label, propagation in (("eqp", PropagationMode.EAGER), ("lqp", PropagationMode.LAZY)):
            objects = fresh_objects()
            system = MobiEyesSystem(
                MobiEyesConfig(
                    uod=params.uod,
                    alpha=params.alpha,
                    step_seconds=params.time_step_seconds,
                    base_station_side=params.base_station_side,
                    propagation=propagation,
                ),
                objects,
                rng.fork(2),
                track_accuracy=True,
                warmup_steps=warmup,
                motion=_build_motion(kind, objects, params, rng.fork(3)),
            )
            system.install_queries(workload.query_specs)
            system.run(steps)
            results[label] = system

        objects = fresh_objects()
        naive = CentralizedSystem(
            CentralizedConfig(
                uod=params.uod,
                step_seconds=params.time_step_seconds,
                reporting=ReportingMode.NAIVE,
                indexing=IndexingMode.QUERIES,
            ),
            objects,
            rng.fork(2),
            warmup_steps=warmup,
            motion=_build_motion(kind, objects, params, rng.fork(3)),
        )
        naive.install_queries(workload.query_specs)
        naive.run(steps)

        rows.append(
            (
                kind,
                naive.metrics.messages_per_second(),
                results["eqp"].metrics.messages_per_second(),
                results["lqp"].metrics.messages_per_second(),
                results["eqp"].metrics.mean_result_error(),
                results["lqp"].metrics.mean_result_error(),
            )
        )
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=("mobility", "naive", "eqp", "lqp", "eqp-error", "lqp-error"),
        rows=tuple(rows),
        notes="expected: EQP exact and MobiEyes cheaper than naive under both models",
    )
