"""Ablation: eager vs lazy propagation at a fixed alpha.

Figures 1/2/5-7 show EQP and LQP across sweeps; this ablation isolates the
trade at the default operating point: messages saved vs accuracy lost.
"""

from __future__ import annotations

from repro.core import PropagationMode
from repro.experiments.runner import (
    DEFAULT_STEPS,
    DEFAULT_WARMUP,
    ExperimentResult,
    default_params,
    run_mobieyes,
)

EXP_ID = "ablation-propagation"
TITLE = "Eager vs lazy query propagation at defaults"


def run(
    scale: float | None = None,
    steps: int = DEFAULT_STEPS,
    warmup: int = DEFAULT_WARMUP,
) -> ExperimentResult:
    """Run the experiment; returns the reproduced table."""
    params = default_params(scale)
    rows = []
    for mode in (PropagationMode.EAGER, PropagationMode.LAZY):
        system = run_mobieyes(params, steps, warmup, propagation=mode, track_accuracy=True)
        rows.append(
            (
                mode.value,
                system.metrics.messages_per_second(),
                system.metrics.uplink_messages_per_second(),
                system.metrics.downlink_messages_per_second(),
                system.metrics.mean_result_error(),
            )
        )
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=("propagation", "msgs/s", "uplink/s", "downlink/s", "error"),
        rows=tuple(rows),
        notes="expected: lazy trades a small error for fewer (mostly uplink) messages",
    )
