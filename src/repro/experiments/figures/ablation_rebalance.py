"""Ablation: load-aware repartitioning under a flash-crowd hotspot.

The paper's server is monolithic; this repo shards it into column
stripes, which makes the stripe boundaries a load-balancing knob.  This
ablation crosses a workload skew (``hotspot_fraction``: the share of the
population compressed into the left 20% x-strip) with the online
rebalancing policy (:class:`repro.core.RebalancePolicy`, deterministic
``ops`` metric) and reports the per-shard load split each combination
ends up with.

Expected shape: on the uniform workload the static stripes are already
near-balanced and the policy stays quiet (zero moves -- the hysteresis
dead band is doing its job).  Under the flash crowd the static split
degrades sharply (the leftmost shards absorb the hotspot) while the
rebalanced run narrows the stripes over the crowd, cutting the max/mean
ops imbalance.  In every row the rebalanced run's result sets are
bit-identical to the static run's: repartitioning moves load, never
results.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import replace

from repro.core import MobiEyesConfig, MobiEyesSystem
from repro.experiments.runner import (
    DEFAULT_STEPS,
    DEFAULT_WARMUP,
    ExperimentResult,
    default_params,
)
from repro.sim.rng import SimulationRng
from repro.workload import SimulationParameters, generate_workload

EXP_ID = "ablation-rebalance"
TITLE = "Shard load balance vs workload skew, static vs rebalanced stripes"

SHARDS = 4
HOTSPOT_FRACTIONS = (0.0, 0.5)
REBALANCE_EVERY = 4


def _run_one(
    params: SimulationParameters, steps: int, warmup: int, rebalance: bool
) -> MobiEyesSystem:
    rng = SimulationRng(params.seed)
    workload = generate_workload(params, rng.fork(1))
    config = MobiEyesConfig(
        uod=params.uod,
        alpha=params.alpha,
        step_seconds=params.time_step_seconds,
        base_station_side=params.base_station_side,
        shards=SHARDS,
        rebalance_every_steps=REBALANCE_EVERY if rebalance else 0,
        rebalance_metric="ops",
    )
    system = MobiEyesSystem(
        config,
        list(workload.objects),
        rng.fork(2),
        velocity_changes_per_step=params.velocity_changes_per_step,
        warmup_steps=warmup,
    )
    system.install_queries(workload.query_specs)
    system.run(steps)
    return system


def _result_hash(system: MobiEyesSystem) -> str:
    canonical = {str(qid): sorted(members) for qid, members in sorted(system.results().items())}
    return hashlib.sha256(json.dumps(canonical, sort_keys=True).encode()).hexdigest()


def run(
    scale: float | None = None,
    steps: int = DEFAULT_STEPS,
    warmup: int = DEFAULT_WARMUP,
) -> ExperimentResult:
    """Run the experiment; returns the reproduced table."""
    base = default_params(scale)
    rows = []
    for fraction in HOTSPOT_FRACTIONS:
        params = replace(base, hotspot_fraction=fraction)
        static = _run_one(params, steps, warmup, rebalance=False)
        rebalanced = _run_one(params, steps, warmup, rebalance=True)
        for label, system in (("static", static), ("rebalanced", rebalanced)):
            loads = system.server.shard_loads()
            ops = [row["ops"] for row in loads]
            mean_ops = sum(ops) / len(ops)
            moves = sum(1 for op in system.rebalance_log if op["cols_moved"])
            rows.append(
                (
                    fraction,
                    label,
                    moves,
                    system.server.partitioner.epoch,
                    round(max(ops) / mean_ops, 3) if mean_ops else 1.0,
                    max(ops),
                    _result_hash(system) == _result_hash(static),
                )
            )
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=(
            "hotspot",
            "stripes",
            "moves",
            "epoch",
            "imbalance-ops",
            "max-ops",
            "results-match-static",
        ),
        rows=tuple(rows),
        notes="expected: zero moves on the uniform workload (hysteresis dead "
        "band); under the flash crowd the policy narrows the hot stripes and "
        "cuts the max/mean ops imbalance vs the static row; results-match-"
        "static is True everywhere (repartitioning moves load, not results)",
    )
