"""Analysis experiment: the closed-form LQT-size model vs simulation.

Validates :class:`repro.analysis.lqt_model.LqtSizeModel` -- the analytical
form behind Figs. 10-12 -- against the simulated mean LQT size across the
alpha sweep.
"""

from __future__ import annotations

from repro.analysis import LqtSizeModel
from repro.experiments.figures.fig10_lqt_vs_alpha import ALPHA_FACTORS
from repro.experiments.runner import (
    DEFAULT_STEPS,
    DEFAULT_WARMUP,
    ExperimentResult,
    default_params,
    run_mobieyes,
)

EXP_ID = "analysis-lqt"
TITLE = "Analytical LQT-size model vs simulated mean LQT size"


def run(
    scale: float | None = None,
    steps: int = DEFAULT_STEPS,
    warmup: int = DEFAULT_WARMUP,
) -> ExperimentResult:
    """Run the experiment; returns the reproduced table."""
    params = default_params(scale)
    model = LqtSizeModel.from_params(params)
    rows = []
    for factor in ALPHA_FACTORS:
        alpha = params.alpha * factor
        system = run_mobieyes(params, steps, warmup, alpha=alpha)
        rows.append(
            (
                alpha,
                system.metrics.mean_lqt_size(),
                model.expected_lqt_size(alpha),
            )
        )
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=("alpha", "simulated", "model"),
        rows=tuple(rows),
        notes="closed form: nmq * selectivity * (2(alpha + r))^2 / A",
    )
