"""Analysis experiment: the analytical alpha model vs simulation.

The paper omits its analytical model for the optimal alpha "for space
restrictions"; we reconstruct it in :mod:`repro.analysis.alpha_model` and
validate it here by comparing the model's predicted messages/second curve
(and its argmin) against the simulated Figure 4 sweep.
"""

from __future__ import annotations

from repro.analysis import AlphaCostModel
from repro.experiments.figures.fig04_messaging_vs_alpha import ALPHA_FACTORS
from repro.experiments.runner import (
    DEFAULT_STEPS,
    DEFAULT_WARMUP,
    ExperimentResult,
    default_params,
    run_mobieyes,
)

EXP_ID = "analysis-alpha"
TITLE = "Analytical alpha model vs simulated messaging cost"


def run(
    scale: float | None = None,
    steps: int = DEFAULT_STEPS,
    warmup: int = DEFAULT_WARMUP,
) -> ExperimentResult:
    """Run the experiment; returns the reproduced table."""
    params = default_params(scale)
    model = AlphaCostModel.from_params(params)
    rows = []
    for factor in ALPHA_FACTORS:
        alpha = params.alpha * factor
        system = run_mobieyes(params, steps, warmup, alpha=alpha)
        rows.append(
            (
                alpha,
                system.metrics.messages_per_second(),
                model.total_rate(alpha),
                model.uplink_rate(alpha),
                model.downlink_rate(alpha),
            )
        )
    best_alpha, best_rate = model.optimal_alpha()
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=("alpha", "simulated", "model-total", "model-uplink", "model-downlink"),
        rows=tuple(rows),
        notes=f"model argmin: alpha*={best_alpha:.2f} at {best_rate:.2f} msgs/s",
    )
