"""Figure 1: impact of distributed query processing on server load.

The paper plots server load (log scale, time spent executing server-side
logic per time step) against the number of queries, for the centralized
object-index and query-index approaches and for MobiEyes with eager and
lazy query propagation.

Expected shape: MobiEyes sits up to two orders of magnitude below the
centralized approaches; the object index is nearly flat in the number of
queries; the query index grows with it; LQP <= EQP.
"""

from __future__ import annotations

from repro.baselines import IndexingMode
from repro.core import PropagationMode
from repro.experiments.runner import (
    DEFAULT_STEPS,
    DEFAULT_WARMUP,
    ExperimentResult,
    default_params,
    run_centralized,
    run_mobieyes,
    sweep_fractions,
    with_queries,
)

EXP_ID = "fig01"
TITLE = "Server load (s/step) vs number of queries"

QUERY_FRACTIONS = (0.01, 0.05, 0.10)  # the paper's nmq = no/100 .. no/10


def run(
    scale: float | None = None,
    steps: int = DEFAULT_STEPS,
    warmup: int = DEFAULT_WARMUP,
) -> ExperimentResult:
    """Run the experiment; returns the reproduced table."""
    params = default_params(scale)
    rows = []
    for nmq in sweep_fractions(params, QUERY_FRACTIONS):
        p = with_queries(params, nmq)
        object_index = run_centralized(p, steps, warmup, indexing=IndexingMode.OBJECTS)
        query_index = run_centralized(p, steps, warmup, indexing=IndexingMode.QUERIES)
        eqp = run_mobieyes(p, steps, warmup)
        lqp = run_mobieyes(p, steps, warmup, propagation=PropagationMode.LAZY)
        rows.append(
            (
                nmq,
                object_index.metrics.mean_server_seconds(),
                query_index.metrics.mean_server_seconds(),
                eqp.metrics.mean_server_seconds(),
                lqp.metrics.mean_server_seconds(),
            )
        )
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=("nmq", "object-index", "query-index", "mobieyes-eqp", "mobieyes-lqp"),
        rows=tuple(rows),
        notes="paper shape: MobiEyes up to ~2 orders of magnitude below centralized",
    )
