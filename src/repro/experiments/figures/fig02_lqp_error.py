"""Figure 2: error associated with lazy query propagation.

The paper plots the average query-result error (missing fraction) under
lazy propagation against the number of objects changing their velocity
vector per time step, for several grid cell sizes alpha.

Expected shape: error decreases as velocity changes become more frequent
(each change broadcasts query descriptors, healing missed installs) and
increases as alpha shrinks (more cell crossings => more missed installs).
"""

from __future__ import annotations

from dataclasses import replace

from repro.core import PropagationMode
from repro.experiments.runner import (
    DEFAULT_STEPS,
    DEFAULT_WARMUP,
    ExperimentResult,
    default_params,
    run_mobieyes,
)

EXP_ID = "fig02"
TITLE = "LQP result error vs velocity changes per step"

#: nmo sweep as fractions of the object population (paper: no/100 .. no/10)
NMO_FRACTIONS = (0.01, 0.04, 0.10)
#: alpha values relative to the default (paper sweeps 2, 4, 8 around 5)
ALPHA_FACTORS = (0.4, 0.8, 1.6)


def run(
    scale: float | None = None,
    steps: int = DEFAULT_STEPS,
    warmup: int = DEFAULT_WARMUP,
) -> ExperimentResult:
    """Run the experiment; returns the reproduced table."""
    params = default_params(scale)
    alphas = [params.alpha * f for f in ALPHA_FACTORS]
    rows = []
    for fraction in NMO_FRACTIONS:
        nmo = max(1, round(params.num_objects * fraction))
        p = replace(params, velocity_changes_per_step=nmo)
        errors = []
        for alpha in alphas:
            system = run_mobieyes(
                p,
                steps,
                warmup,
                propagation=PropagationMode.LAZY,
                alpha=alpha,
                track_accuracy=True,
            )
            errors.append(system.metrics.mean_result_error())
        rows.append((nmo, *errors))
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=("nmo", *(f"error(alpha={a:g})" for a in alphas)),
        rows=tuple(rows),
        notes="paper shape: error falls with nmo, rises as alpha shrinks",
    )
