"""Figure 3: effect of alpha on server load.

The paper plots server load against the grid cell size alpha for MobiEyes,
with the (alpha-independent) centralized approaches as reference lines.

Expected shape: a U -- small alpha means frequent cell crossings (more
mediation), large alpha means large monitoring regions (more broadcast
work); MobiEyes stays below both centralized baselines throughout.
"""

from __future__ import annotations

from repro.baselines import IndexingMode
from repro.core import PropagationMode
from repro.experiments.runner import (
    DEFAULT_STEPS,
    DEFAULT_WARMUP,
    ExperimentResult,
    default_params,
    run_centralized,
    run_mobieyes,
)

EXP_ID = "fig03"
TITLE = "Server load (s/step) vs grid cell size alpha"

ALPHA_FACTORS = (0.2, 0.5, 1.0, 2.0, 3.2)  # paper sweeps 0.5-16 mi around 5


def run(
    scale: float | None = None,
    steps: int = DEFAULT_STEPS,
    warmup: int = DEFAULT_WARMUP,
) -> ExperimentResult:
    """Run the experiment; returns the reproduced table."""
    params = default_params(scale)
    object_index = run_centralized(
        params, steps, warmup, indexing=IndexingMode.OBJECTS
    ).metrics.mean_server_seconds()
    query_index = run_centralized(
        params, steps, warmup, indexing=IndexingMode.QUERIES
    ).metrics.mean_server_seconds()
    rows = []
    for factor in ALPHA_FACTORS:
        alpha = params.alpha * factor
        eqp = run_mobieyes(params, steps, warmup, alpha=alpha)
        lqp = run_mobieyes(params, steps, warmup, alpha=alpha, propagation=PropagationMode.LAZY)
        rows.append(
            (
                alpha,
                eqp.metrics.mean_server_seconds(),
                lqp.metrics.mean_server_seconds(),
                object_index,
                query_index,
            )
        )
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=("alpha", "mobieyes-eqp", "mobieyes-lqp", "object-index", "query-index"),
        rows=tuple(rows),
        notes="paper shape: U in alpha; MobiEyes below both baselines",
    )
