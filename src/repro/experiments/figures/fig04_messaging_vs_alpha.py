"""Figure 4: effect of alpha on messaging cost.

The paper plots wireless messages per second against alpha for several
query counts.

Expected shape: a U -- small alpha causes frequent cell-change uplinks;
large alpha inflates monitoring regions and thus the number of broadcasts
needed per focal-object change; the minimum falls in a mid range
(paper: alpha in [4, 6] at full scale).
"""

from __future__ import annotations

from repro.experiments.runner import (
    DEFAULT_STEPS,
    DEFAULT_WARMUP,
    ExperimentResult,
    default_params,
    run_mobieyes,
    sweep_fractions,
    with_queries,
)

EXP_ID = "fig04"
TITLE = "Messages/second vs grid cell size alpha"

ALPHA_FACTORS = (0.2, 0.5, 1.0, 2.0, 3.2)
QUERY_FRACTIONS = (0.01, 0.05, 0.10)


def run(
    scale: float | None = None,
    steps: int = DEFAULT_STEPS,
    warmup: int = DEFAULT_WARMUP,
) -> ExperimentResult:
    """Run the experiment; returns the reproduced table."""
    params = default_params(scale)
    query_counts = sweep_fractions(params, QUERY_FRACTIONS)
    rows = []
    for factor in ALPHA_FACTORS:
        alpha = params.alpha * factor
        per_count = []
        for nmq in query_counts:
            system = run_mobieyes(with_queries(params, nmq), steps, warmup, alpha=alpha)
            per_count.append(system.metrics.messages_per_second())
        rows.append((alpha, *per_count))
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=("alpha", *(f"msgs/s(nmq={n})" for n in query_counts)),
        rows=tuple(rows),
        notes="paper shape: U in alpha with a mid-range minimum",
    )
