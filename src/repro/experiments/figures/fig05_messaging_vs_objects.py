"""Figure 5: effect of the number of objects on messaging cost.

The paper plots total wireless messages per second against the object
population for the naive and central-optimal reporting scenarios and for
MobiEyes with eager and lazy propagation, keeping the ratio of velocity
changes to population constant.

Expected shape: naive is worst and linear in the population; EQP tracks
central-optimal with a roughly constant gap; LQP scales best and beats
central-optimal for smaller query counts.
The centralized runs use the (cheap) query-index engine: the indexing
choice does not affect message counts, only server load.
"""

from __future__ import annotations

from dataclasses import replace

from repro.baselines import IndexingMode, ReportingMode
from repro.core import PropagationMode
from repro.experiments.runner import (
    DEFAULT_STEPS,
    DEFAULT_WARMUP,
    ExperimentResult,
    default_params,
    run_centralized,
    run_mobieyes,
)

EXP_ID = "fig05"
TITLE = "Messages/second vs number of objects"

#: population sweep as fractions of the base population (paper: 1k..10k)
POPULATION_FRACTIONS = (0.25, 0.5, 1.0)
#: query count as a fraction of the *base* population (one curve per value)
QUERY_FRACTIONS = (0.01, 0.10)


def _sized_params(params, population_fraction: float, base_queries: int):
    no = max(2, round(params.num_objects * population_fraction))
    ratio = params.velocity_changes_per_step / params.num_objects
    return replace(
        params,
        num_objects=no,
        num_queries=min(no, base_queries),
        velocity_changes_per_step=max(1, round(no * ratio)),
    )


def run(
    scale: float | None = None,
    steps: int = DEFAULT_STEPS,
    warmup: int = DEFAULT_WARMUP,
) -> ExperimentResult:
    """Run the experiment; returns the reproduced table."""
    params = default_params(scale)
    rows = []
    for q_fraction in QUERY_FRACTIONS:
        base_queries = max(1, round(params.num_objects * q_fraction))
        for p_fraction in POPULATION_FRACTIONS:
            p = _sized_params(params, p_fraction, base_queries)
            naive = run_centralized(
                p, steps, warmup, reporting=ReportingMode.NAIVE, indexing=IndexingMode.QUERIES
            )
            optimal = run_centralized(
                p,
                steps,
                warmup,
                reporting=ReportingMode.CENTRAL_OPTIMAL,
                indexing=IndexingMode.QUERIES,
            )
            eqp = run_mobieyes(p, steps, warmup)
            lqp = run_mobieyes(p, steps, warmup, propagation=PropagationMode.LAZY)
            rows.append(
                (
                    p.num_queries,
                    p.num_objects,
                    naive.metrics.messages_per_second(),
                    optimal.metrics.messages_per_second(),
                    eqp.metrics.messages_per_second(),
                    lqp.metrics.messages_per_second(),
                )
            )
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=("nmq", "no", "naive", "central-optimal", "mobieyes-eqp", "mobieyes-lqp"),
        rows=tuple(rows),
        notes="paper shape: naive worst/linear; EQP ~constant gap to optimal; LQP scales best",
    )
