"""Figure 6: uplink component of the messaging cost (log scale).

Same sweep as Figure 5, but reporting only object->server messages.

Expected shape: MobiEyes-LQP cuts uplink traffic dramatically (only focal
objects talk to the server), which the paper highlights as crucial for
asymmetric links where uplink bandwidth is scarce.
The centralized runs use the (cheap) query-index engine: the indexing
choice does not affect message counts, only server load.
"""

from __future__ import annotations

from repro.baselines import IndexingMode, ReportingMode
from repro.core import PropagationMode
from repro.experiments.figures.fig05_messaging_vs_objects import (
    POPULATION_FRACTIONS,
    _sized_params,
)
from repro.experiments.runner import (
    DEFAULT_STEPS,
    DEFAULT_WARMUP,
    ExperimentResult,
    default_params,
    run_centralized,
    run_mobieyes,
)

EXP_ID = "fig06"
TITLE = "Uplink messages/second vs number of objects"

QUERY_FRACTION = 0.10


def run(
    scale: float | None = None,
    steps: int = DEFAULT_STEPS,
    warmup: int = DEFAULT_WARMUP,
) -> ExperimentResult:
    """Run the experiment; returns the reproduced table."""
    params = default_params(scale)
    base_queries = max(1, round(params.num_objects * QUERY_FRACTION))
    rows = []
    for p_fraction in POPULATION_FRACTIONS:
        p = _sized_params(params, p_fraction, base_queries)
        naive = run_centralized(
                p, steps, warmup, reporting=ReportingMode.NAIVE, indexing=IndexingMode.QUERIES
            )
        optimal = run_centralized(
                p,
                steps,
                warmup,
                reporting=ReportingMode.CENTRAL_OPTIMAL,
                indexing=IndexingMode.QUERIES,
            )
        eqp = run_mobieyes(p, steps, warmup)
        lqp = run_mobieyes(p, steps, warmup, propagation=PropagationMode.LAZY)
        rows.append(
            (
                p.num_objects,
                naive.metrics.uplink_messages_per_second(),
                optimal.metrics.uplink_messages_per_second(),
                eqp.metrics.uplink_messages_per_second(),
                lqp.metrics.uplink_messages_per_second(),
            )
        )
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=("no", "naive", "central-optimal", "mobieyes-eqp", "mobieyes-lqp"),
        rows=tuple(rows),
        notes="paper shape: LQP uplink far below all others (log scale)",
    )
