"""Figure 7: effect of the number of velocity-vector changes per step.

The paper plots messages per second against ``nmo`` (objects changing
velocity per step) for the four approaches.

Expected shape: the gap between MobiEyes-EQP and central-optimal narrows
as nmo grows (both must relay more velocity changes, but MobiEyes' fixed
cell-change overhead is amortized); LQP stays best for small query counts.
The centralized runs use the (cheap) query-index engine: the indexing
choice does not affect message counts, only server load.
"""

from __future__ import annotations

from dataclasses import replace

from repro.baselines import IndexingMode, ReportingMode
from repro.core import PropagationMode
from repro.experiments.runner import (
    DEFAULT_STEPS,
    DEFAULT_WARMUP,
    ExperimentResult,
    default_params,
    run_centralized,
    run_mobieyes,
    with_queries,
)

EXP_ID = "fig07"
TITLE = "Messages/second vs velocity changes per step"

NMO_FRACTIONS = (0.01, 0.04, 0.10)
QUERY_FRACTION = 0.05


def run(
    scale: float | None = None,
    steps: int = DEFAULT_STEPS,
    warmup: int = DEFAULT_WARMUP,
) -> ExperimentResult:
    """Run the experiment; returns the reproduced table."""
    params = default_params(scale)
    params = with_queries(params, max(1, round(params.num_objects * QUERY_FRACTION)))
    rows = []
    for fraction in NMO_FRACTIONS:
        nmo = max(1, round(params.num_objects * fraction))
        p = replace(params, velocity_changes_per_step=nmo)
        naive = run_centralized(
                p, steps, warmup, reporting=ReportingMode.NAIVE, indexing=IndexingMode.QUERIES
            )
        optimal = run_centralized(
                p,
                steps,
                warmup,
                reporting=ReportingMode.CENTRAL_OPTIMAL,
                indexing=IndexingMode.QUERIES,
            )
        eqp = run_mobieyes(p, steps, warmup)
        lqp = run_mobieyes(p, steps, warmup, propagation=PropagationMode.LAZY)
        rows.append(
            (
                nmo,
                naive.metrics.messages_per_second(),
                optimal.metrics.messages_per_second(),
                eqp.metrics.messages_per_second(),
                lqp.metrics.messages_per_second(),
            )
        )
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=("nmo", "naive", "central-optimal", "mobieyes-eqp", "mobieyes-lqp"),
        rows=tuple(rows),
        notes="paper shape: EQP-to-optimal gap narrows as nmo grows",
    )
