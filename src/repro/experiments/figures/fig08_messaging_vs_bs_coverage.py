"""Figure 8: effect of base-station coverage area on messaging cost.

The paper plots messages per second against the base-station coverage area
(parameterized here by the lattice side length ``alen``) for several query
counts.

Expected shape: larger coverage shrinks the number of stations needed per
monitoring-region broadcast, so the message count falls -- until regions
almost always fit inside a single station's coverage, after which the
effect disappears (the curve flattens).
"""

from __future__ import annotations

from repro.experiments.runner import (
    DEFAULT_STEPS,
    DEFAULT_WARMUP,
    ExperimentResult,
    default_params,
    run_mobieyes,
    sweep_fractions,
    with_queries,
)

EXP_ID = "fig08"
TITLE = "Messages/second vs base-station side length"

SIDE_FACTORS = (0.5, 1.0, 2.0, 4.0, 8.0)  # paper sweeps alen = 5..80 around 10
QUERY_FRACTIONS = (0.01, 0.10)


def run(
    scale: float | None = None,
    steps: int = DEFAULT_STEPS,
    warmup: int = DEFAULT_WARMUP,
) -> ExperimentResult:
    """Run the experiment; returns the reproduced table."""
    params = default_params(scale)
    query_counts = sweep_fractions(params, QUERY_FRACTIONS)
    rows = []
    for factor in SIDE_FACTORS:
        side = params.base_station_side * factor
        per_count = []
        for nmq in query_counts:
            system = run_mobieyes(
                with_queries(params, nmq), steps, warmup, base_station_side=side
            )
            per_count.append(system.metrics.messages_per_second())
        rows.append((side, *per_count))
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=("alen", *(f"msgs/s(nmq={n})" for n in query_counts)),
        rows=tuple(rows),
        notes="paper shape: falls with coverage, then flattens",
    )
