"""Figure 9: per-object power consumption due to communication.

The paper simulates message *sizes* and charges transmit/receive energy
with the GSM/GPRS radio model, then plots the average per-object power
against the number of queries for the naive and central-optimal scenarios
and MobiEyes.

Expected shape: naive is worst (every object transmits every step, and
transmitting costs ~20x receiving); MobiEyes is competitive at small query
counts but is overtaken by central-optimal as queries grow, because objects
over-hear broadcasts about queries that are irrelevant to them.
The centralized runs use the (cheap) query-index engine: the indexing
choice does not affect message counts, only server load.
"""

from __future__ import annotations

from repro.baselines import IndexingMode, ReportingMode
from repro.experiments.runner import (
    DEFAULT_STEPS,
    DEFAULT_WARMUP,
    ExperimentResult,
    default_params,
    run_centralized,
    run_mobieyes,
    sweep_fractions,
    with_queries,
)

EXP_ID = "fig09"
TITLE = "Per-object communication power (W) vs number of queries"

QUERY_FRACTIONS = (0.01, 0.05, 0.10)


def run(
    scale: float | None = None,
    steps: int = DEFAULT_STEPS,
    warmup: int = DEFAULT_WARMUP,
) -> ExperimentResult:
    """Run the experiment; returns the reproduced table."""
    params = default_params(scale)
    rows = []
    for nmq in sweep_fractions(params, QUERY_FRACTIONS):
        p = with_queries(params, nmq)
        naive = run_centralized(
                p, steps, warmup, reporting=ReportingMode.NAIVE, indexing=IndexingMode.QUERIES
            )
        optimal = run_centralized(
                p,
                steps,
                warmup,
                reporting=ReportingMode.CENTRAL_OPTIMAL,
                indexing=IndexingMode.QUERIES,
            )
        mobieyes = run_mobieyes(p, steps, warmup)
        rows.append(
            (
                nmq,
                naive.metrics.mean_power_watts_per_object(),
                optimal.metrics.mean_power_watts_per_object(),
                mobieyes.metrics.mean_power_watts_per_object(),
            )
        )
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=("nmq", "naive", "central-optimal", "mobieyes"),
        rows=tuple(rows),
        notes="paper shape: naive worst; central-optimal overtakes MobiEyes at large nmq",
    )
