"""Figure 10: effect of alpha on the average LQT size.

The paper plots the average number of queries a moving object evaluates
per step (its LQT size) against alpha, for several query counts.

Expected shape: grows super-linearly (the paper says exponentially) with
alpha -- monitoring regions are ~(alpha + 2r)^2 so the number of objects
covered grows quadratically-plus -- while staying small (< 10) at defaults.
"""

from __future__ import annotations

from repro.experiments.runner import (
    DEFAULT_STEPS,
    DEFAULT_WARMUP,
    ExperimentResult,
    default_params,
    run_mobieyes,
    sweep_fractions,
    with_queries,
)

EXP_ID = "fig10"
TITLE = "Average LQT size vs grid cell size alpha"

ALPHA_FACTORS = (0.2, 0.5, 1.0, 2.0, 3.2)
QUERY_FRACTIONS = (0.01, 0.05, 0.10)


def run(
    scale: float | None = None,
    steps: int = DEFAULT_STEPS,
    warmup: int = DEFAULT_WARMUP,
) -> ExperimentResult:
    """Run the experiment; returns the reproduced table."""
    params = default_params(scale)
    query_counts = sweep_fractions(params, QUERY_FRACTIONS)
    rows = []
    for factor in ALPHA_FACTORS:
        alpha = params.alpha * factor
        per_count = []
        for nmq in query_counts:
            system = run_mobieyes(with_queries(params, nmq), steps, warmup, alpha=alpha)
            per_count.append(system.metrics.mean_lqt_size())
        rows.append((alpha, *per_count))
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=("alpha", *(f"lqt(nmq={n})" for n in query_counts)),
        rows=tuple(rows),
        notes="paper shape: super-linear growth in alpha; < ~10 at defaults",
    )
