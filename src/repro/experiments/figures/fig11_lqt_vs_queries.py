"""Figure 11: effect of the total number of queries on the LQT size.

Same measure as Figure 10 but swept over the query count for several
alphas.

Expected shape: linear in the number of queries (each query adds its
monitoring-region footprint independently).
"""

from __future__ import annotations

from repro.experiments.runner import (
    DEFAULT_STEPS,
    DEFAULT_WARMUP,
    ExperimentResult,
    default_params,
    run_mobieyes,
    sweep_fractions,
    with_queries,
)

EXP_ID = "fig11"
TITLE = "Average LQT size vs number of queries"

ALPHA_FACTORS = (0.5, 1.0, 2.0)
QUERY_FRACTIONS = (0.01, 0.02, 0.05, 0.10)


def run(
    scale: float | None = None,
    steps: int = DEFAULT_STEPS,
    warmup: int = DEFAULT_WARMUP,
) -> ExperimentResult:
    """Run the experiment; returns the reproduced table."""
    params = default_params(scale)
    alphas = [params.alpha * f for f in ALPHA_FACTORS]
    rows = []
    for nmq in sweep_fractions(params, QUERY_FRACTIONS):
        p = with_queries(params, nmq)
        per_alpha = []
        for alpha in alphas:
            system = run_mobieyes(p, steps, warmup, alpha=alpha)
            per_alpha.append(system.metrics.mean_lqt_size())
        rows.append((nmq, *per_alpha))
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=("nmq", *(f"lqt(alpha={a:g})" for a in alphas)),
        rows=tuple(rows),
        notes="paper shape: linear growth in nmq",
    )
