"""Figure 12: effect of the query radius on the LQT size.

The paper multiplies every query radius by a *radius factor* and plots the
average LQT size against the factor.

Expected shape: larger radii grow monitoring regions and thus LQT sizes,
but the effect is step-like: a radius change only matters once it crosses
a grid-cell boundary (the monitoring region is quantized to cells of side
alpha), so nearby factors can produce identical sizes.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.runner import (
    DEFAULT_STEPS,
    DEFAULT_WARMUP,
    ExperimentResult,
    default_params,
    run_mobieyes,
)

EXP_ID = "fig12"
TITLE = "Average LQT size vs query radius factor"

RADIUS_FACTORS = (0.5, 1.0, 2.0, 4.0, 8.0)


def run(
    scale: float | None = None,
    steps: int = DEFAULT_STEPS,
    warmup: int = DEFAULT_WARMUP,
) -> ExperimentResult:
    """Run the experiment; returns the reproduced table."""
    params = default_params(scale)
    rows = []
    for factor in RADIUS_FACTORS:
        p = replace(params, radius_factor=factor)
        system = run_mobieyes(p, steps, warmup)
        rows.append((factor, system.metrics.mean_lqt_size()))
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=("radius-factor", "mean-lqt-size"),
        rows=tuple(rows),
        notes="paper shape: grows with radius, visibly only past cell-size steps",
    )
