"""Figure 13: effect of the safe-period optimization.

The paper plots the average per-object query-processing load against alpha
with the safe-period optimization on and off.

Expected shape: at large alpha monitoring regions are wide, objects sit far
from focal objects, safe periods are long, and most evaluations are
skipped -- a large win.  At very small alpha the safe period is almost
always shorter than the evaluation period and the bookkeeping is pure
overhead (a slight loss).

Besides wall time (hardware-dependent) the table reports the deterministic
count of containment evaluations actually performed.
"""

from __future__ import annotations

from repro.experiments.runner import (
    DEFAULT_STEPS,
    DEFAULT_WARMUP,
    ExperimentResult,
    default_params,
    run_mobieyes,
)

EXP_ID = "fig13"
TITLE = "Per-object query-processing load vs alpha, safe period on/off"

ALPHA_FACTORS = (0.2, 0.5, 1.0, 2.0, 3.2)


def run(
    scale: float | None = None,
    steps: int = DEFAULT_STEPS,
    warmup: int = DEFAULT_WARMUP,
) -> ExperimentResult:
    """Run the experiment; returns the reproduced table."""
    params = default_params(scale)
    rows = []
    for factor in ALPHA_FACTORS:
        alpha = params.alpha * factor
        base = run_mobieyes(params, steps, warmup, alpha=alpha, safe_period=False)
        safe = run_mobieyes(params, steps, warmup, alpha=alpha, safe_period=True)
        rows.append(
            (
                alpha,
                base.metrics.mean_object_processing_seconds(),
                safe.metrics.mean_object_processing_seconds(),
                base.metrics.total_evaluated_queries(),
                safe.metrics.total_evaluated_queries(),
                safe.metrics.total_skipped_by_safe_period(),
            )
        )
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=(
            "alpha",
            "proc-s(off)",
            "proc-s(on)",
            "evals(off)",
            "evals(on)",
            "skipped(on)",
        ),
        rows=tuple(rows),
        notes="paper shape: big win at large alpha, slight overhead at tiny alpha",
    )
