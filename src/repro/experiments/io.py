"""Serialization of experiment results (CSV / JSON).

Experiment tables are plain data; these helpers let the CLI (and users'
own analysis scripts) persist them for downstream plotting without any
dependency on a dataframe library.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

from repro.experiments.runner import ExperimentResult


def result_to_csv(result: ExperimentResult) -> str:
    """Render the result table as CSV (header row + data rows).

    The experiment id, title, and notes travel in ``#``-prefixed comment
    lines so the file remains self-describing yet loadable by any CSV
    reader that skips comments.
    """
    buffer = io.StringIO()
    buffer.write(f"# experiment: {result.exp_id}\n")
    buffer.write(f"# title: {result.title}\n")
    if result.notes:
        buffer.write(f"# notes: {result.notes}\n")
    writer = csv.writer(buffer)
    writer.writerow(result.headers)
    for row in result.rows:
        writer.writerow(["" if value is None else value for value in row])
    return buffer.getvalue()


def result_to_json(result: ExperimentResult) -> str:
    """Render the result as a JSON document."""
    return json.dumps(
        {
            "experiment": result.exp_id,
            "title": result.title,
            "notes": result.notes,
            "headers": list(result.headers),
            "rows": [list(row) for row in result.rows],
        },
        indent=2,
    )


def result_from_json(text: str) -> ExperimentResult:
    """Inverse of :func:`result_to_json`."""
    data = json.loads(text)
    return ExperimentResult(
        exp_id=data["experiment"],
        title=data["title"],
        notes=data.get("notes", ""),
        headers=tuple(data["headers"]),
        rows=tuple(tuple(row) for row in data["rows"]),
    )


def save_result(result: ExperimentResult, path: str | Path) -> Path:
    """Write the result to ``path``; the suffix picks the format
    (``.csv`` or ``.json``)."""
    path = Path(path)
    if path.suffix == ".csv":
        text = result_to_csv(result)
    elif path.suffix == ".json":
        text = result_to_json(result)
    else:
        raise ValueError(f"unsupported format {path.suffix!r}; use .csv or .json")
    path.write_text(text)
    return path
