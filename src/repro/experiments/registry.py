"""Registry of reproducible experiments: one per paper figure + ablations."""

from __future__ import annotations

from typing import Callable, Protocol

from repro.experiments.figures import (
    ablation_dead_reckoning,
    ablation_grouping,
    ablation_latency,
    ablation_message_loss,
    ablation_mobility,
    ablation_propagation,
    ablation_rebalance,
    analysis_lqt_size,
    analysis_optimal_alpha,
    fig01_server_load_vs_queries,
    fig02_lqp_error,
    fig03_server_load_vs_alpha,
    fig04_messaging_vs_alpha,
    fig05_messaging_vs_objects,
    fig06_uplink_vs_objects,
    fig07_messaging_vs_velocity_changes,
    fig08_messaging_vs_bs_coverage,
    fig09_power_vs_queries,
    fig10_lqt_vs_alpha,
    fig11_lqt_vs_queries,
    fig12_lqt_vs_radius,
    fig13_safe_period,
)
from repro.experiments.runner import ExperimentResult


class ExperimentModule(Protocol):
    """The shape of a figure module: an id, a title, and a run function."""

    EXP_ID: str
    TITLE: str

    def run(self, scale: float | None = ..., steps: int = ..., warmup: int = ...) -> ExperimentResult: ...


_MODULES = (
    fig01_server_load_vs_queries,
    fig02_lqp_error,
    fig03_server_load_vs_alpha,
    fig04_messaging_vs_alpha,
    fig05_messaging_vs_objects,
    fig06_uplink_vs_objects,
    fig07_messaging_vs_velocity_changes,
    fig08_messaging_vs_bs_coverage,
    fig09_power_vs_queries,
    fig10_lqt_vs_alpha,
    fig11_lqt_vs_queries,
    fig12_lqt_vs_radius,
    fig13_safe_period,
    ablation_dead_reckoning,
    ablation_grouping,
    ablation_propagation,
    ablation_message_loss,
    ablation_mobility,
    ablation_latency,
    ablation_rebalance,
    analysis_optimal_alpha,
    analysis_lqt_size,
)

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    module.EXP_ID: module.run for module in _MODULES
}

TITLES: dict[str, str] = {module.EXP_ID: module.TITLE for module in _MODULES}


def run_experiment(exp_id: str, **kwargs) -> ExperimentResult:
    """Run one registered experiment by id (e.g. ``fig04``)."""
    try:
        runner = EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}") from None
    return runner(**kwargs)


def all_experiment_ids() -> list[str]:
    """Ids of every registered experiment."""
    return list(EXPERIMENTS)
