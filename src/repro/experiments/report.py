"""EXPERIMENTS.md generator: run every registered experiment and write a
paper-vs-measured report.

Invoked as ``python -m repro report [--output EXPERIMENTS.md]``.  For each
experiment the report records what the paper's figure shows, the table our
harness measured, and the qualitative comparison the benchmark suite
asserts (benchmarks/ re-checks the same shapes on every run).
"""

from __future__ import annotations

import platform
import sys
import time
from typing import TextIO

from repro.experiments.registry import EXPERIMENTS, TITLES
from repro.experiments.runner import DEFAULT_STEPS, DEFAULT_WARMUP
from repro.workload import bench_scale_from_env, paper_defaults

#: What the paper's figure shows, per experiment, and how our measurement
#: is expected to compare.  The benchmark suite asserts these shapes.
PAPER_EXPECTATIONS: dict[str, str] = {
    "fig01": (
        "Paper (Fig. 1): server load vs number of queries, log scale. MobiEyes "
        "sits up to two orders of magnitude below the centralized approaches; "
        "the object index is nearly flat in nmq; the query index grows with nmq "
        "and beats the object index only for small nmq; LQP <= EQP."
    ),
    "fig02": (
        "Paper (Fig. 2): average result error under lazy query propagation. "
        "Error decreases with more velocity changes per step (each broadcast "
        "heals missed installs) and increases as alpha shrinks (more missed "
        "cell crossings)."
    ),
    "fig03": (
        "Paper (Fig. 3): server load vs alpha. A U-shape -- too-small alpha "
        "causes frequent cell-crossing mediation, too-large alpha inflates "
        "monitoring regions -- while MobiEyes stays below both baselines."
    ),
    "fig04": (
        "Paper (Fig. 4): messages/second vs alpha, one curve per query count. "
        "A U-shape with the minimum in a mid range (paper: alpha in [4, 6] at "
        "full scale); more queries cost more messages at every alpha."
    ),
    "fig05": (
        "Paper (Fig. 5): messages/second vs number of objects. Naive reporting "
        "is worst and linear in the population; EQP tracks central-optimal "
        "with a roughly constant gap; LQP scales best and beats central-"
        "optimal for small query counts."
    ),
    "fig06": (
        "Paper (Fig. 6): uplink messages/second vs number of objects, log "
        "scale. MobiEyes-LQP cuts uplink traffic far below every other "
        "approach -- crucial for asymmetric links."
    ),
    "fig07": (
        "Paper (Fig. 7): messages/second vs velocity changes per step. The "
        "EQP-to-central-optimal gap narrows as nmo grows; LQP stays best for "
        "small query counts."
    ),
    "fig08": (
        "Paper (Fig. 8): messages/second vs base-station coverage. Larger "
        "coverage reduces broadcasts per monitoring region until regions fit "
        "in one station's area, then the effect disappears."
    ),
    "fig09": (
        "Paper (Fig. 9): per-object communication power vs query count. Naive "
        "is worst (transmit-heavy); MobiEyes is competitive at small nmq but "
        "central-optimal overtakes it as queries grow (broadcast over-hearing)."
    ),
    "fig10": (
        "Paper (Fig. 10): average LQT size vs alpha; grows super-linearly "
        "('exponentially') with alpha, stays under ~10 at the defaults."
    ),
    "fig11": (
        "Paper (Fig. 11): average LQT size vs query count; linear growth."
    ),
    "fig12": (
        "Paper (Fig. 12): average LQT size vs query-radius factor; grows with "
        "the radius, but only visibly when the change exceeds the cell size "
        "(monitoring regions are quantized to alpha-cells)."
    ),
    "fig13": (
        "Paper (Fig. 13): per-object query-processing load vs alpha, safe "
        "period on/off. Large savings at large alpha (long safe periods), "
        "slight overhead at very small alpha."
    ),
    "ablation-delta": (
        "Extension (paper Section 3.4 introduces delta but never sweeps it): "
        "a larger dead-reckoning threshold trades messages for result error."
    ),
    "ablation-grouping": (
        "Extension (paper Section 4.1): with a zipf-skewed query-per-focal "
        "distribution, grouping cuts broadcasts, result-report uplinks (query "
        "bitmap), and object-side containment evaluations."
    ),
    "ablation-propagation": (
        "Extension: the EQP/LQP trade at the default operating point -- lazy "
        "saves messages (mostly uplink) for a small, measured error."
    ),
    "ablation-loss": (
        "Extension (the paper assumes reliable delivery): independent "
        "Bernoulli loss degrades accuracy gracefully (zero loss is exact); "
        "Gilbert-Elliott burst channels and scheduled disconnections run "
        "through the fault-injection subsystem's reliability + recovery "
        "machinery."
    ),
    "ablation-mobility": (
        "Extension: the paper's random-velocity-change model vs the standard "
        "random-waypoint model -- EQP stays exact and MobiEyes keeps its "
        "messaging advantage under both."
    ),
    "ablation-latency": (
        "Extension (the paper reasons about propagation delay analytically "
        "but simulates instantaneous delivery): per-hop delivery latency "
        "through the deferred message pipeline. Zero latency is exact (the "
        "inline path is bit-identical); positive latency makes results lag "
        "the oracle by the pipeline depth, with the error bounded by dead "
        "reckoning and the in-flight depth tracking the delay."
    ),
    "ablation-rebalance": (
        "Extension (the paper's server is monolithic; this repo shards it "
        "into column stripes): workload skew vs online stripe rebalancing. "
        "On the uniform workload the policy stays quiet (hysteresis dead "
        "band); under a flash crowd the static stripes degrade while the "
        "rebalanced run narrows the hot stripes and cuts the max/mean ops "
        "imbalance -- with result sets bit-identical to the static run "
        "(repartitioning moves load, never results)."
    ),
    "analysis-alpha": (
        "Extension (the paper omits its analytical optimal-alpha model 'for "
        "space restrictions'): our reconstructed model's messages/second "
        "curve and argmin versus the simulated sweep."
    ),
    "analysis-lqt": (
        "Extension: the closed-form expected-LQT-size model behind Figs. "
        "10-12 versus the simulated mean LQT size."
    ),
}


def write_report(
    out: TextIO,
    scale: float | None = None,
    steps: int = DEFAULT_STEPS,
    warmup: int = DEFAULT_WARMUP,
) -> None:
    """Run every experiment and write the markdown report to ``out``."""
    effective_scale = scale if scale is not None else bench_scale_from_env()
    params = paper_defaults().scaled(effective_scale)
    out.write("# EXPERIMENTS — paper vs. measured\n\n")
    out.write(
        "Generated by `python -m repro report`. Every table below is produced "
        "by the same registered experiment the benchmark suite runs "
        "(`benchmarks/test_<id>_*.py`), which also *asserts* the qualitative "
        "shape described in each 'paper' paragraph.\n\n"
    )
    out.write("## Measurement setup\n\n")
    out.write(
        f"- workload scale: **{effective_scale:g}** of Table 1 "
        f"(= {params.num_objects} objects, {params.num_queries} queries, "
        f"{params.velocity_changes_per_step} velocity changes/step on "
        f"{params.area_sq_miles:,.0f} mi^2; densities and ratios match the "
        "paper's setup; set `REPRO_SCALE=paper` for full scale)\n"
        f"- steps per run: {steps} (first {warmup} excluded as warm-up)\n"
        f"- python: {sys.version.split()[0]} on {platform.machine()}\n"
        "- absolute numbers are host- and scale-dependent; the *shapes* "
        "(who wins, what grows, where the knees are) are the reproduction "
        "targets\n\n"
    )
    out.write(
        "Table 1 itself is reproduced as code: `repro.workload.params` "
        "(`python -m repro params`).\n\n"
    )
    for exp_id, runner in EXPERIMENTS.items():
        started = time.perf_counter()
        result = runner(scale=scale, steps=steps, warmup=warmup)
        elapsed = time.perf_counter() - started
        out.write(f"## {exp_id}: {TITLES[exp_id]}\n\n")
        expectation = PAPER_EXPECTATIONS.get(exp_id)
        if expectation:
            out.write(f"{expectation}\n\n")
        out.write("Measured:\n\n```\n")
        out.write(result.table())
        out.write(f"\n```\n\n({elapsed:.1f}s)\n\n")
