"""Shared experiment runner.

Every figure-reproduction in :mod:`repro.experiments.figures` builds systems
through these helpers so that MobiEyes and the baselines always see the same
workload (same seed => same objects, same queries) and the same measurement
window (a warm-up prefix is excluded, as the paper measures steady state).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.baselines import CentralizedConfig, CentralizedSystem, IndexingMode, ReportingMode
from repro.core import MobiEyesConfig, MobiEyesSystem, PropagationMode
from repro.metrics.collectors import MetricsLog
from repro.metrics.report import format_table
from repro.sim.rng import SimulationRng
from repro.workload import SimulationParameters, bench_defaults, generate_workload

DEFAULT_STEPS = 24
DEFAULT_WARMUP = 4


@dataclass(frozen=True)
class ExperimentResult:
    """One reproduced table/figure: an id, a title, and tabular data."""

    exp_id: str
    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple, ...]
    notes: str = ""

    def table(self) -> str:
        """Render the result as an aligned plain-text table."""
        text = format_table(self.headers, self.rows, title=f"[{self.exp_id}] {self.title}")
        if self.notes:
            text += f"\n  note: {self.notes}"
        return text

    def column(self, header: str) -> list:
        """The values of one column, by header name."""
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]


def default_params(scale: float | None = None) -> SimulationParameters:
    """Scaled Table 1 defaults (REPRO_SCALE-aware when ``scale`` is None)."""
    if scale is None:
        return bench_defaults()
    from repro.workload import paper_defaults

    return paper_defaults().scaled(scale)


def sweep_fractions(params: SimulationParameters, fractions: Sequence[float]) -> list[int]:
    """Query-count sweep points as fractions of the object population.

    The paper sweeps ``nmq`` from ``no/100`` to ``no/10``; expressing sweep
    points as fractions keeps the same ratios at any benchmark scale.
    """
    return sorted({max(1, round(params.num_objects * f)) for f in fractions})


def run_mobieyes(
    params: SimulationParameters,
    steps: int = DEFAULT_STEPS,
    warmup: int = DEFAULT_WARMUP,
    propagation: PropagationMode = PropagationMode.EAGER,
    alpha: float | None = None,
    base_station_side: float | None = None,
    grouping: bool = True,
    safe_period: bool = False,
    dead_reckoning_threshold: float = 0.0,
    track_accuracy: bool = False,
    focal_skew: float | None = None,
    seed_offset: int = 0,
) -> MobiEyesSystem:
    """Build, install, and run a MobiEyes system on the Table 1 workload."""
    rng = SimulationRng(params.seed + seed_offset)
    workload = generate_workload(params, rng.fork(1), focal_skew=focal_skew)
    config = MobiEyesConfig(
        uod=params.uod,
        alpha=alpha if alpha is not None else params.alpha,
        step_seconds=params.time_step_seconds,
        base_station_side=(
            base_station_side if base_station_side is not None else params.base_station_side
        ),
        propagation=propagation,
        dead_reckoning_threshold=dead_reckoning_threshold,
        grouping=grouping,
        safe_period=safe_period,
    )
    system = MobiEyesSystem(
        config,
        list(workload.objects),
        rng.fork(2),
        velocity_changes_per_step=params.velocity_changes_per_step,
        track_accuracy=track_accuracy,
        warmup_steps=warmup,
    )
    system.install_queries(workload.query_specs)
    system.run(steps)
    return system


def run_centralized(
    params: SimulationParameters,
    steps: int = DEFAULT_STEPS,
    warmup: int = DEFAULT_WARMUP,
    reporting: ReportingMode = ReportingMode.NAIVE,
    indexing: IndexingMode = IndexingMode.OBJECTS,
    dead_reckoning_threshold: float = 0.0,
    track_accuracy: bool = False,
    seed_offset: int = 0,
) -> CentralizedSystem:
    """Build, install, and run a centralized baseline on the same workload."""
    rng = SimulationRng(params.seed + seed_offset)
    workload = generate_workload(params, rng.fork(1))
    config = CentralizedConfig(
        uod=params.uod,
        step_seconds=params.time_step_seconds,
        reporting=reporting,
        indexing=indexing,
        dead_reckoning_threshold=dead_reckoning_threshold,
        oracle_alpha=params.alpha,
    )
    system = CentralizedSystem(
        config,
        list(workload.objects),
        rng.fork(2),
        velocity_changes_per_step=params.velocity_changes_per_step,
        track_accuracy=track_accuracy,
        warmup_steps=warmup,
    )
    system.install_queries(workload.query_specs)
    system.run(steps)
    return system


def with_queries(params: SimulationParameters, num_queries: int) -> SimulationParameters:
    """A copy of the parameters with a different query count."""
    return replace(params, num_queries=min(num_queries, params.num_objects))


def metrics_of(system: MobiEyesSystem | CentralizedSystem) -> MetricsLog:
    """The metrics log of a system (either engine)."""
    return system.metrics
