"""Vectorized hot-path engine for MobiEyes (``engine="vectorized"``).

The reference engine is deliberately per-object pure Python; at paper scale
(Table 1: 10,000 objects, 1,000 queries) its three hot loops dominate the
wall clock: object movement, the per-step coverage-index rebuild, and the
object-side LQT evaluation.  This package keeps the *protocol* untouched --
every message still flows through :class:`~repro.core.client.MobiEyesClient`
and :class:`~repro.core.transport.SimulatedTransport`, so ledgers, traces,
and the loss model see bit-identical traffic -- but replaces the hot-loop
*computation* with structure-of-arrays numpy kernels:

- :class:`~repro.fastpath.store.ObjectStateStore`: positions, velocities,
  speed bounds, grid cells, and lattice tiles in contiguous ``float64`` /
  ``int64`` arrays.
- :class:`~repro.fastpath.motion.VectorizedMotionModel`: movement as two
  fused array operations; boundary reflections fall back to the scalar
  kernel for the handful of out-of-bounds objects so arithmetic matches the
  reference bit for bit.
- :class:`~repro.fastpath.coverage.VectorizedCoverageIndex`: cell/tile
  bucketing as a single stable ``argsort`` group-by; station-coverage
  lookups as array distance masks.
- :class:`~repro.fastpath.evaluator.BatchEvaluator`: all LQT entries
  system-wide gathered once per evaluation step into per-focal batches;
  ``dist^2 vs reach^2``, containment, safe periods, and enter/leave deltas
  as array expressions; differential reports dispatched through the
  unchanged client/transport message path.

numpy is an *optional* dependency: the reference engine never imports it,
and requesting ``engine="vectorized"`` without numpy raises a clear error.
"""

from __future__ import annotations

from functools import lru_cache


@lru_cache(maxsize=1)
def numpy_available() -> bool:
    """Whether numpy can be imported (the fast path is usable)."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def require_numpy():
    """Import and return numpy, raising a helpful error when absent."""
    try:
        import numpy
    except ImportError as exc:  # pragma: no cover - depends on environment
        raise RuntimeError(
            "MobiEyesConfig(engine='vectorized') requires numpy; install the "
            "'fast' extra (pip install .[fast]) or use engine='reference'"
        ) from exc
    return numpy


__all__ = ["numpy_available", "require_numpy"]
