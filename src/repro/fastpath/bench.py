"""Benchmark trajectory harness: reference vs. vectorized engine.

``python -m repro bench`` runs a fixed scenario matrix through *both*
engines on the identical workload (same seed, same objects, same queries)
and writes a ``BENCH_<tag>.json`` artifact with per-phase wall time,
steps/sec, and result-set hashes.  Matching hashes are the cheap in-artifact
witness that the vectorized engine produced exactly the reference results;
the exhaustive proof is the differential test suite
(``tests/test_fastpath_differential.py``).

Scenario matrix (full mode, paper scale -- Table 1's 10,000 objects and
1,000 queries, 200 measured steps):

- ``dense``: the headline hot-path scenario.  Query radii scaled 3x
  (Fig. 12's ``radius_factor``) and speeds scaled to 0.1x so monitoring
  regions are large and stable: LQT evaluation work dominates and the
  per-object protocol chatter (which both engines share unchanged) stays
  small.  This is where the batched evaluator shines.
- ``paper``: untouched Table 1 defaults.  Deliberately the honest row --
  the shared scalar protocol path (broadcast fan-out, uplink handling)
  dominates at high mobility, so the end-to-end speedup is modest even
  though the vectorized phases themselves are far faster.

``--smoke`` shrinks both scenarios (``REPRO_SCALE``-aware, default 0.02)
for CI; the artifact shape is identical.

Timing protocol: each engine runs ``warmup_steps`` first (query install
storm plus the first full evaluation), then the measured window is timed.
Per-phase accumulators are zeroed after warmup, so ``phase_seconds`` and
``steps_per_sec`` describe steady state only.
"""

from __future__ import annotations

import hashlib
import json
import sys
import time
from dataclasses import dataclass, replace
from pathlib import Path

from repro.core import MobiEyesConfig, MobiEyesSystem
from repro.fastpath import numpy_available
from repro.sim.engine import PHASE_ORDER
from repro.sim.rng import SimulationRng
from repro.workload import (
    SimulationParameters,
    bench_scale_from_env,
    generate_workload,
    paper_defaults,
)

DEFAULT_STEPS = 200
DEFAULT_WARMUP = 5
SMOKE_STEPS = 30
SMOKE_WARMUP = 3
SMOKE_SCALE = 0.02

ENGINES = ("reference", "vectorized")


@dataclass(frozen=True)
class BenchScenario:
    """One row of the benchmark matrix: a workload plus system knobs."""

    name: str
    description: str
    params: SimulationParameters
    steps: int = DEFAULT_STEPS
    warmup: int = DEFAULT_WARMUP
    grouping: bool = True
    safe_period: bool = False
    dead_reckoning_threshold: float = 0.0
    track_accuracy: bool = False
    uplink_latency: int = 0
    downlink_latency: int = 0
    latency_jitter: int = 0
    # Engines this scenario runs (the xl preset is vectorized-only: the
    # reference engine cannot finish 100k objects in smoke time).
    engines: tuple[str, ...] = ENGINES


def dense_params(scale: float = 1.0) -> SimulationParameters:
    """Large, slow-moving monitoring regions: the evaluation-bound workload."""
    params = paper_defaults()
    params = replace(
        params,
        radius_factor=3.0,
        max_speeds=tuple(s * 0.1 for s in params.max_speeds),
    )
    return params.scaled(scale) if scale != 1.0 else params


def skewed_params(scale: float = 1.0) -> SimulationParameters:
    """The flash-crowd workload: half the population in the left fifth.

    Built on :func:`dense_params` (slow speeds keep the crowd where it was
    placed for the whole run) with ``hotspot_fraction=0.5``: half the
    objects compress into the left 20% of the x-axis, so the column-stripe
    partitioner's leftmost shards absorb most of the uplink and evaluation
    load.  This is the scenario online rebalancing exists for -- the
    ``shard_loads`` imbalance is real, persistent, and stripe-aligned.
    """
    return replace(dense_params(scale), hotspot_fraction=0.5, hotspot_width=0.2)


def xl_params() -> SimulationParameters:
    """The ``--scale xl`` workload: 100,000 objects, 5,000 queries.

    Ten times the paper's area and population (densities preserved), with
    the query count capped at 5,000 -- the ROADMAP's "city-scale" stress
    point.  Only the vectorized engine (and, in useful time, the parallel
    shard executor) gets through it.
    """
    params = paper_defaults().scaled(10.0)
    return replace(params, num_queries=5_000)


def scenario_matrix(
    smoke: bool = False, latency: int = 0, jitter: int = 0, preset: str = "default"
) -> list[BenchScenario]:
    """The fixed scenarios a bench run executes, in order.

    ``latency`` applies the same per-link delay to the uplink and the
    downlink of every scenario (``jitter`` adds the seeded random extra),
    exercising the deferred delivery pipeline under benchmark load.

    ``preset="xl"`` replaces the matrix with the single 100k-object
    :func:`xl_params` scenario (vectorized-only, a handful of measured
    steps); it keeps its fixed size regardless of ``smoke``.

    ``preset="skewed"`` replaces the matrix with the single flash-crowd
    :func:`skewed_params` scenario (both engines, ``smoke``-scaled like
    the default matrix) -- the rebalancing A/B scenario.
    """
    if preset == "xl":
        return [
            BenchScenario(
                name="xl",
                description=(
                    "100k objects / 5k queries (paper x10, densities "
                    "preserved): the parallel-executor stress scenario"
                ),
                params=xl_params(),
                steps=4,
                warmup=1,
                dead_reckoning_threshold=1.0,
                uplink_latency=latency,
                downlink_latency=latency,
                latency_jitter=jitter,
                engines=("vectorized",),
            )
        ]
    if preset not in ("default", "skewed"):
        raise ValueError(f"unknown scenario preset {preset!r}")
    if smoke:
        scale = bench_scale_from_env(default=SMOKE_SCALE)
        steps, warmup = SMOKE_STEPS, SMOKE_WARMUP
    else:
        scale, steps, warmup = 1.0, DEFAULT_STEPS, DEFAULT_WARMUP
    skewed = BenchScenario(
        name="skewed",
        description=(
            "dense workload with a flash crowd: half the objects in the "
            "left 20% x-strip (the rebalancing scenario)"
        ),
        params=skewed_params(scale),
        steps=steps,
        warmup=warmup,
        dead_reckoning_threshold=1.0,
        uplink_latency=latency,
        downlink_latency=latency,
        latency_jitter=jitter,
    )
    if preset == "skewed":
        return [skewed]
    return [
        BenchScenario(
            name="dense",
            description=(
                "radius_factor=3, speeds x0.1: large stable monitoring "
                "regions, LQT evaluation dominates"
            ),
            params=dense_params(scale),
            steps=steps,
            warmup=warmup,
            dead_reckoning_threshold=1.0,
            uplink_latency=latency,
            downlink_latency=latency,
            latency_jitter=jitter,
        ),
        BenchScenario(
            name="paper",
            description="untouched Table 1 defaults (protocol-bound at full mobility)",
            params=paper_defaults().scaled(scale) if scale != 1.0 else paper_defaults(),
            steps=steps,
            warmup=warmup,
            dead_reckoning_threshold=1.0,
            uplink_latency=latency,
            downlink_latency=latency,
            latency_jitter=jitter,
        ),
        skewed,
    ]


def _instrument(system: MobiEyesSystem) -> dict[str, float]:
    """Wrap every engine phase callback with a wall-clock accumulator.

    Arms the transport's serialization meter and reports the time spent
    constructing and metering wire messages (ledger records, envelope
    assembly, batch encoding) as its own ``serialization`` row; each
    phase's row is its wall time *minus* the serialization share, so
    ``reporting`` isolates candidate scanning and report computation from
    the protocol encoding cost it triggers.
    """
    totals = {name: 0.0 for name in PHASE_ORDER}
    totals["serialization"] = 0.0
    transport = system.transport
    transport.meter_serialization = True
    phases = system.engine._phases
    for name in PHASE_ORDER:
        wrapped = []
        for callback in phases[name]:

            def timed(clock, _cb=callback, _name=name):
                ser0 = transport.serialization_seconds
                started = time.perf_counter()
                _cb(clock)
                elapsed = time.perf_counter() - started
                ser = transport.serialization_seconds - ser0
                totals[_name] += elapsed - ser
                totals["serialization"] += ser

            wrapped.append(timed)
        phases[name] = wrapped
    return totals


def result_hash(system: MobiEyesSystem) -> str:
    """Order-independent digest of every query's current result set."""
    payload = sorted(
        (int(qid), tuple(sorted(int(oid) for oid in members)))
        for qid, members in system.results().items()
    )
    return hashlib.sha256(repr(payload).encode("ascii")).hexdigest()


def run_engine(
    scenario: BenchScenario,
    engine: str,
    shards: int = 1,
    workers: int = 0,
    executor: str = "thread",
    checkpoint_every: int = 0,
    rebalance_every: int = 0,
    rebalance_metric: str = "seconds",
) -> dict:
    """Build, warm up, and time one engine on a scenario's workload.

    With ``checkpoint_every > 0`` the system snapshots itself on that
    cadence during the measured window, and after the run the last
    checkpoint is serialized, restored into a fresh system, and resumed
    to the end step; the report's ``checkpoint`` section records the
    snapshot cost and whether the resumed run matched bit-for-bit.

    With ``rebalance_every > 0`` (and ``shards > 1``) the load-aware
    rebalancing policy runs on that cadence; the report gains the applied
    ``rebalance_log``, the final ``partition_bounds``/``partition_epoch``,
    and the transport's ``stale_epoch_reroutes`` counter.
    """
    params = scenario.params
    rng = SimulationRng(params.seed)
    workload = generate_workload(params, rng.fork(1))
    config = MobiEyesConfig(
        uod=params.uod,
        alpha=params.alpha,
        step_seconds=params.time_step_seconds,
        base_station_side=params.base_station_side,
        dead_reckoning_threshold=scenario.dead_reckoning_threshold,
        grouping=scenario.grouping,
        safe_period=scenario.safe_period,
        engine=engine,
        shards=shards,
        shard_workers=workers if shards > 1 else 0,
        shard_executor=executor,
        uplink_latency_steps=scenario.uplink_latency,
        downlink_latency_steps=scenario.downlink_latency,
        latency_jitter_steps=scenario.latency_jitter,
        latency_seed=params.seed,
        checkpoint_every_steps=checkpoint_every,
        rebalance_every_steps=rebalance_every if shards > 1 else 0,
        rebalance_metric=rebalance_metric,
    )
    built = time.perf_counter()
    system = MobiEyesSystem(
        config,
        list(workload.objects),
        rng.fork(2),
        velocity_changes_per_step=params.velocity_changes_per_step,
        track_accuracy=scenario.track_accuracy,
        warmup_steps=scenario.warmup,
    )
    # Context-managed so a mid-run exception still tears down the shard
    # executor (a leaked process pool outlives the bench otherwise).
    with system:
        return _run_engine_timed(system, scenario, workload, build_seconds=built)


def _run_engine_timed(
    system: MobiEyesSystem, scenario: BenchScenario, workload, build_seconds: float
) -> dict:
    config = system.config
    shards = config.shards
    workers = config.shard_workers
    executor = config.shard_executor
    engine = config.engine
    checkpoint_every = config.checkpoint_every_steps
    rebalance_every = config.rebalance_every_steps
    built = build_seconds
    system.install_queries(workload.query_specs)
    build_seconds = time.perf_counter() - built

    phase_seconds = _instrument(system)
    started = time.perf_counter()
    system.run(scenario.warmup)
    warmup_seconds = time.perf_counter() - started
    for name in phase_seconds:
        phase_seconds[name] = 0.0

    started = time.perf_counter()
    system.run(scenario.steps)
    wall_seconds = time.perf_counter() - started

    # Server seconds over the measured window, both ways: the aggregate
    # sums per-shard CPU time (double-counting concurrent work under a
    # parallel executor), the critical path credits each parallel region
    # with its slowest worker only -- the modeled wall time on idle cores.
    measured = system.metrics._measured()
    server_aggregate = sum(s.server_seconds for s in measured)
    server_critical = sum(s.server_critical_seconds for s in measured)

    report = {
        "engine": engine,
        "workers": workers if shards > 1 else 0,
        "executor": executor if shards > 1 and workers > 0 else None,
        "build_seconds": round(build_seconds, 4),
        "warmup_seconds": round(warmup_seconds, 4),
        "wall_seconds": round(wall_seconds, 4),
        "steps_per_sec": round(scenario.steps / wall_seconds, 4),
        "ms_per_step": round(1000.0 * wall_seconds / scenario.steps, 3),
        "server_aggregate_seconds": round(server_aggregate, 4),
        "server_critical_seconds": round(server_critical, 4),
        "phase_seconds": {name: round(spent, 4) for name, spent in phase_seconds.items()},
        "result_hash": result_hash(system),
        "uplink_messages": system.ledger.uplink_count,
        "downlink_messages": system.ledger.downlink_count,
        "energy_joules": round(system.ledger.total_energy(), 6),
        "pending_messages_at_end": system.transport.pending_count(),
    }
    shard_loads = getattr(system.server, "shard_loads", None)
    if shard_loads is not None:
        report["shard_loads"] = [
            {**row, "seconds": round(row["seconds"], 4)} for row in shard_loads()
        ]
        report["load_balance"] = load_balance(report["shard_loads"])
        report["partition_bounds"] = list(system.server.partitioner.bounds)
        report["partition_epoch"] = system.server.partition_epoch
    if rebalance_every and shards > 1:
        report["rebalance_log"] = list(system.rebalance_log)
        report["stale_epoch_reroutes"] = system.transport.stale_epoch_reroutes
    if checkpoint_every:
        report["checkpoint"] = _checkpoint_roundtrip(system, report)
    return report


def _checkpoint_roundtrip(system: MobiEyesSystem, report: dict) -> dict:
    """Serialize the run's last cadence checkpoint, restore it into a
    fresh system, resume to the end step, and compare the observables.

    ``roundtrip_match`` is the bit-identity witness: the resumed run must
    reproduce the original's result hash, message counts, energy, and
    in-flight queue depth exactly.  ``None`` means the cadence never
    fired (run shorter than the interval).
    """
    from repro.core.snapshot import from_bytes, restore

    cp = system._last_checkpoint
    out: dict = {"checkpoints_taken": system._checkpoints_taken}
    if cp is None:
        out["roundtrip_match"] = None
        return out
    started = time.perf_counter()
    blob = cp.to_bytes()
    # Context-managed: a resume that raises must not leak the restored
    # system's shard executor.
    with restore(from_bytes(blob)) as resumed:
        resumed_steps = system.clock.step - resumed.clock.step
        resumed.run(resumed_steps)
        out["checkpoint_bytes"] = len(blob)
        out["restored_from_step"] = cp.payload["step"]
        out["resumed_steps"] = resumed_steps
        out["restore_resume_seconds"] = round(time.perf_counter() - started, 4)
        out["roundtrip_match"] = (
            result_hash(resumed) == report["result_hash"]
            and resumed.ledger.uplink_count == report["uplink_messages"]
            and resumed.ledger.downlink_count == report["downlink_messages"]
            and round(resumed.ledger.total_energy(), 6) == report["energy_joules"]
            and resumed.transport.pending_count() == report["pending_messages_at_end"]
        )
    return out


def load_balance(shard_loads: list[dict]) -> dict:
    """Balance summary over the per-shard lifetime load counters.

    ``imbalance`` is max/mean over the deterministic ``ops`` counters:
    1.0 is a perfect split, ``num_shards`` is the degenerate case of all
    load on one shard.  The seconds-based view reports the same split in
    wall time: ``aggregate_seconds`` sums every shard (double-counting
    concurrent work), ``critical_seconds`` is the slowest shard -- the
    floor any parallel schedule of this partitioning can reach -- and
    ``imbalance_seconds`` is the critical-path max/mean.
    """
    ops = [row["ops"] for row in shard_loads]
    seconds = [row["seconds"] for row in shard_loads]
    mean_ops = sum(ops) / max(1, len(ops))
    mean_seconds = sum(seconds) / max(1, len(seconds))
    return {
        "num_shards": len(shard_loads),
        "min_ops": min(ops),
        "max_ops": max(ops),
        "mean_ops": round(mean_ops, 1),
        "imbalance": round(max(ops) / mean_ops, 3) if mean_ops else 1.0,
        "aggregate_seconds": round(sum(seconds), 4),
        "min_seconds": round(min(seconds), 4),
        "max_seconds": round(max(seconds), 4),
        "critical_seconds": round(max(seconds), 4),
        "imbalance_seconds": round(max(seconds) / mean_seconds, 3) if mean_seconds else 1.0,
    }


def run_scenario(
    scenario: BenchScenario,
    log=print,
    shards: int = 1,
    workers: int = 0,
    executor: str = "thread",
    checkpoint_every: int = 0,
    rebalance_every: int = 0,
    rebalance_metric: str = "seconds",
) -> dict:
    """Run one scenario through every available engine.

    With ``workers > 0`` (and ``shards > 1``) each engine runs twice --
    serial coordinator, then pooled -- and the row gains the parallel
    columns: ``parallel_speedup`` (serial aggregate server seconds over
    pooled critical-path seconds -- the span speedup a multicore host
    realizes as wall time), ``parallel_wall_speedup`` (pooled over serial
    steps/sec on *this* host), and ``parallel_match`` (bit-identity of
    result hash, message counts, and energy).

    With ``rebalance_every > 0`` (and ``shards > 1``) each engine *also*
    runs a static-stripes twin first, and the rebalanced run gains a
    ``rebalance`` block: static vs rebalanced ``imbalance_seconds`` (the
    A/B the CI gate reads), the ops-based view, the throughput ratio, and
    a result-hash match flag -- repartitioning moves load, never results.
    """
    params = scenario.params
    row: dict = {
        "name": scenario.name,
        "description": scenario.description,
        "num_objects": params.num_objects,
        "num_queries": params.num_queries,
        "velocity_changes_per_step": params.velocity_changes_per_step,
        "radius_factor": params.radius_factor,
        "max_speeds": list(params.max_speeds),
        "alpha": params.alpha,
        "seed": params.seed,
        "measured_steps": scenario.steps,
        "warmup_steps": scenario.warmup,
        "grouping": scenario.grouping,
        "safe_period": scenario.safe_period,
        "dead_reckoning_threshold": scenario.dead_reckoning_threshold,
        "shards": shards,
        "workers": workers if shards > 1 else 0,
        "executor": executor if shards > 1 and workers > 0 else None,
        "latency": {
            "uplink_steps": scenario.uplink_latency,
            "downlink_steps": scenario.downlink_latency,
            "jitter_steps": scenario.latency_jitter,
        },
        "engines": {},
    }
    pooled = shards > 1 and workers > 0
    parallel_speedups: dict[str, float] = {}
    for engine in scenario.engines:
        if engine == "vectorized" and not numpy_available():
            row["engines"][engine] = {"skipped": "numpy not installed"}
            log(f"  {scenario.name}/{engine}: skipped (numpy not installed)")
            continue
        log(
            f"  {scenario.name}/{engine}: {params.num_objects} objects, "
            f"{params.num_queries} queries, {scenario.steps} steps ..."
        )
        serial = None
        if pooled:
            # The parallel baseline: same shard count, serial coordinator.
            serial = run_engine(scenario, engine, shards=shards)
        static = None
        if rebalance_every and shards > 1:
            # The rebalance baseline: identical run, frozen stripes.
            static = run_engine(
                scenario, engine, shards=shards, workers=workers, executor=executor
            )
        result = run_engine(
            scenario,
            engine,
            shards=shards,
            workers=workers,
            executor=executor,
            checkpoint_every=checkpoint_every,
            rebalance_every=rebalance_every,
            rebalance_metric=rebalance_metric,
        )
        row["engines"][engine] = result
        if static is not None:
            static_balance = static["load_balance"]
            balanced = result["load_balance"]
            moves = sum(1 for op in result.get("rebalance_log", []) if op["cols_moved"])
            result["rebalance"] = {
                "every_steps": rebalance_every,
                "metric": rebalance_metric,
                "moves": moves,
                "static_imbalance_seconds": static_balance["imbalance_seconds"],
                "rebalanced_imbalance_seconds": balanced["imbalance_seconds"],
                "improved": balanced["imbalance_seconds"]
                < static_balance["imbalance_seconds"],
                "static_imbalance_ops": static_balance["imbalance"],
                "rebalanced_imbalance_ops": balanced["imbalance"],
                "static_steps_per_sec": static["steps_per_sec"],
                "steps_per_sec_ratio": (
                    round(result["steps_per_sec"] / static["steps_per_sec"], 3)
                    if static["steps_per_sec"] > 0
                    else None
                ),
                # Repartitioning moves state between shards, never the
                # protocol outcome: the rebalanced run's results must equal
                # the static run's bit for bit.
                "results_match_static": result["result_hash"] == static["result_hash"],
            }
            verdict = "improved" if result["rebalance"]["improved"] else "NOT IMPROVED"
            log(
                f"  {scenario.name}/{engine}: rebalance {moves} move(s), "
                f"imbalance_seconds {static_balance['imbalance_seconds']:.3f}x -> "
                f"{balanced['imbalance_seconds']:.3f}x ({verdict}, "
                f"wall ratio {result['rebalance']['steps_per_sec_ratio']}x)"
            )
        log(
            f"  {scenario.name}/{engine}: {result['steps_per_sec']:.2f} steps/s "
            f"({result['ms_per_step']:.1f} ms/step)"
        )
        if serial is not None:
            critical = result.get("server_critical_seconds") or 0.0
            aggregate = serial.get("server_aggregate_seconds") or 0.0
            parallel = {
                "serial_steps_per_sec": serial["steps_per_sec"],
                "serial_server_aggregate_seconds": serial["server_aggregate_seconds"],
                "parallel_match": (
                    result["result_hash"] == serial["result_hash"]
                    and result["uplink_messages"] == serial["uplink_messages"]
                    and result["downlink_messages"] == serial["downlink_messages"]
                    and result["energy_joules"] == serial["energy_joules"]
                ),
            }
            if critical > 0 and aggregate > 0:
                parallel["parallel_speedup"] = round(aggregate / critical, 3)
                parallel_speedups[engine] = parallel["parallel_speedup"]
            if serial["steps_per_sec"] > 0:
                parallel["parallel_wall_speedup"] = round(
                    result["steps_per_sec"] / serial["steps_per_sec"], 3
                )
            result["parallel"] = parallel
            match = "bit-identical" if parallel["parallel_match"] else "DIVERGED"
            log(
                f"  {scenario.name}/{engine}: parallel x{workers} {executor} vs serial: "
                f"span speedup {parallel.get('parallel_speedup', 'n/a')}x, "
                f"wall {parallel.get('parallel_wall_speedup', 'n/a')}x ({match})"
            )
        balance = result.get("load_balance")
        if balance is not None:
            log(
                f"  {scenario.name}/{engine}: {balance['num_shards']} shards, "
                f"ops {balance['min_ops']}..{balance['max_ops']} "
                f"(imbalance {balance['imbalance']:.3f}x, "
                f"seconds {balance['imbalance_seconds']:.3f}x)"
            )
        roundtrip = result.get("checkpoint")
        if roundtrip is not None:
            if roundtrip["roundtrip_match"] is None:
                log(
                    f"  {scenario.name}/{engine}: checkpoint cadence never fired "
                    f"(run shorter than the interval)"
                )
            else:
                verdict = "bit-identical" if roundtrip["roundtrip_match"] else "DIVERGED"
                log(
                    f"  {scenario.name}/{engine}: checkpoint roundtrip from step "
                    f"{roundtrip['restored_from_step']} "
                    f"({roundtrip['checkpoint_bytes']} bytes, "
                    f"{roundtrip['resumed_steps']} steps resumed): {verdict}"
                )
    if parallel_speedups:
        # The row-level column prefers the vectorized engine (the one the
        # CI gate reads); the per-engine values stay under engines.*.
        row["parallel_speedup"] = parallel_speedups.get(
            "vectorized", next(iter(parallel_speedups.values()))
        )
        row["parallel_match"] = all(
            result.get("parallel", {}).get("parallel_match", True)
            for result in row["engines"].values()
            if "skipped" not in result
        )
    ref = row["engines"].get("reference", {})
    vec = row["engines"].get("vectorized", {})
    if "steps_per_sec" in ref and "steps_per_sec" in vec:
        row["speedup"] = round(vec["steps_per_sec"] / ref["steps_per_sec"], 3)
        row["results_match"] = ref["result_hash"] == vec["result_hash"]
        ref_rep = ref.get("phase_seconds", {}).get("reporting", 0.0)
        vec_rep = vec.get("phase_seconds", {}).get("reporting", 0.0)
        if ref_rep > 0 and vec_rep > 0:
            row["reporting_speedup"] = round(ref_rep / vec_rep, 3)
    return row


class BenchRegression(RuntimeError):
    """Raised when a bench run falls below the baseline by more than the
    allowed throughput margin (the artifact is still written first)."""


def compare_reports(
    new: dict,
    baseline: dict,
    threshold: float = 0.2,
    phase_threshold: float = 0.25,
    phase_floor: float = 0.1,
) -> list[str]:
    """Regression-gate a fresh bench report against a baseline artifact.

    Three gates per matched scenario/engine pair:

    - throughput: ``steps_per_sec`` dropped by more than ``threshold``
      (fraction) relative to the baseline;
    - per-phase time: any phase present in both reports regressed by more
      than ``phase_threshold`` (fraction).  Phases below ``phase_floor``
      seconds in the baseline are skipped, and the absolute growth must
      itself exceed the floor, so timer noise on near-zero phases cannot
      fail a run;
    - determinism: ``result_hash`` and message counts must match the
      baseline exactly (same workload seed, so any drift is a semantic
      regression, not noise).

    Pairs are matched by scenario name and engine; a pair is only
    compared when mode, shards, and latency settings agree, so a
    baseline recorded under different knobs silently gates nothing.
    """
    failures: list[str] = []
    # Reports written before the shard/latency/workers knobs existed lack
    # the keys; they were all single-shard, zero-latency, serial runs.
    if new.get("mode") != baseline.get("mode") or (new.get("shards") or 1) != (
        baseline.get("shards") or 1
    ):
        return failures
    if (new.get("workers") or 0) != (baseline.get("workers") or 0):
        return failures
    # Checkpoint cadence perturbs wall time (each snapshot deepcopies the
    # full system), so timings only gate against a same-cadence baseline.
    if (new.get("checkpoint_every") or 0) != (baseline.get("checkpoint_every") or 0):
        return failures
    # Rebalancing perturbs wall time (twin runs) *and* message counts
    # (directive downlinks), so it only gates against a same-knob baseline.
    if (new.get("rebalance_every") or 0) != (baseline.get("rebalance_every") or 0):
        return failures
    # Service-runtime and elastic scale-out knobs (soak-style runs folded
    # into a bench report): a changing fleet and queued ingest perturb
    # both timings and message counts, so these also gate only against a
    # same-knob baseline.  Baselines written before the knobs existed
    # carry none of the keys -- every such report was a finite,
    # fixed-fleet, no-ingest run, which the falsy defaults reproduce, so
    # an old BENCH_local.json keeps gating unchanged.
    for knob in ("elastic_max_shards", "elastic_schedule", "ingest_budget_per_step"):
        if (new.get(knob) or 0) != (baseline.get(knob) or 0):
            return failures
    baseline_rows = {row["name"]: row for row in baseline.get("scenarios", [])}
    for row in new.get("scenarios", []):
        base_row = baseline_rows.get(row["name"])
        if base_row is None:
            continue
        if row.get("latency") != base_row.get(
            "latency", {"uplink_steps": 0, "downlink_steps": 0, "jitter_steps": 0}
        ):
            continue
        for engine, result in row.get("engines", {}).items():
            base_result = base_row.get("engines", {}).get(engine, {})
            new_rate = result.get("steps_per_sec")
            base_rate = base_result.get("steps_per_sec")
            if new_rate is None or base_rate is None or base_rate <= 0:
                continue
            floor = (1.0 - threshold) * base_rate
            if new_rate < floor:
                failures.append(
                    f"{row['name']}/{engine}: {new_rate:.2f} steps/s is below "
                    f"{floor:.2f} (baseline {base_rate:.2f} - {threshold:.0%})"
                )
            new_hash = result.get("result_hash")
            base_hash = base_result.get("result_hash")
            if new_hash and base_hash and new_hash != base_hash:
                failures.append(
                    f"{row['name']}/{engine}: result_hash {new_hash[:16]}... "
                    f"differs from baseline {base_hash[:16]}..."
                )
            for counter in ("uplink_messages", "downlink_messages"):
                new_count = result.get(counter)
                base_count = base_result.get(counter)
                if new_count is not None and base_count is not None and new_count != base_count:
                    failures.append(
                        f"{row['name']}/{engine}: {counter} {new_count} "
                        f"!= baseline {base_count}"
                    )
            base_phases = base_result.get("phase_seconds", {})
            for phase, new_spent in result.get("phase_seconds", {}).items():
                base_spent = base_phases.get(phase)
                if base_spent is None or base_spent < phase_floor:
                    continue
                limit = (1.0 + phase_threshold) * base_spent
                if new_spent > limit and new_spent - base_spent > phase_floor:
                    failures.append(
                        f"{row['name']}/{engine}: phase {phase} {new_spent:.2f}s "
                        f"exceeds {limit:.2f}s (baseline {base_spent:.2f}s "
                        f"+ {phase_threshold:.0%})"
                    )
    return failures


def run_bench(
    tag: str | None = None,
    smoke: bool = False,
    out_dir: str | Path | None = None,
    log=print,
    shards: int = 1,
    latency: int = 0,
    jitter: int = 0,
    compare: str | Path | None = None,
    compare_threshold: float = 0.2,
    workers: int = 0,
    executor: str = "thread",
    scale: str = "default",
    checkpoint_every: int = 0,
    rebalance_every: int = 0,
    rebalance_metric: str = "seconds",
) -> Path:
    """Run the full matrix and write ``BENCH_<tag>.json``; returns the path.

    With ``compare`` pointing at a previous ``BENCH_*.json``, the fresh
    report is regression-gated against it after being written:
    :class:`BenchRegression` is raised if any matched scenario/engine lost
    more than ``compare_threshold`` of its baseline steps/sec.
    """
    if tag is None:
        tag = "smoke" if smoke else "local"
    # Fail fast on an unwritable destination -- before minutes of scenarios.
    dest = Path(out_dir if out_dir is not None else Path.cwd())
    dest.mkdir(parents=True, exist_ok=True)
    baseline = None
    if compare is not None:
        baseline = json.loads(Path(compare).read_text(encoding="ascii"))
    scenarios = scenario_matrix(smoke=smoke, latency=latency, jitter=jitter, preset=scale)
    log(
        f"bench: {len(scenarios)} scenario(s), mode={'smoke' if smoke else 'full'}"
        + (f", scale={scale}" if scale != "default" else "")
        + (f", shards={shards}" if shards > 1 else "")
        + (f", workers={workers} ({executor})" if workers and shards > 1 else "")
        + (f", latency={latency}" if latency else "")
        + (f", jitter={jitter}" if jitter else "")
        + (f", checkpoint_every={checkpoint_every}" if checkpoint_every else "")
        + (
            f", rebalance_every={rebalance_every} ({rebalance_metric})"
            if rebalance_every
            else ""
        )
    )
    report = {
        "tag": tag,
        "mode": "smoke" if smoke else "full",
        "python": sys.version.split()[0],
        "numpy_available": numpy_available(),
        "shards": shards,
        "workers": workers if shards > 1 else 0,
        "executor": executor if shards > 1 and workers > 0 else None,
        "scale": scale,
        "latency": {"uplink_steps": latency, "downlink_steps": latency, "jitter_steps": jitter},
        "checkpoint_every": checkpoint_every,
        "rebalance_every": rebalance_every,
        "rebalance_metric": rebalance_metric if rebalance_every else None,
        "created_unix": int(time.time()),
        "scenarios": [
            run_scenario(
                scenario,
                log=log,
                shards=shards,
                workers=workers,
                executor=executor,
                checkpoint_every=checkpoint_every,
                rebalance_every=rebalance_every,
                rebalance_metric=rebalance_metric,
            )
            for scenario in scenarios
        ],
    }
    path = dest / f"BENCH_{tag}.json"
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="ascii")
    for row in report["scenarios"]:
        if "speedup" in row:
            match = "results match" if row["results_match"] else "RESULTS DIFFER"
            log(f"  {row['name']}: vectorized {row['speedup']}x vs reference ({match})")
        if "parallel_speedup" in row:
            match = "bit-identical" if row["parallel_match"] else "DIVERGED"
            log(
                f"  {row['name']}: parallel span speedup {row['parallel_speedup']}x "
                f"vs serial coordinator ({match})"
            )
    log(f"bench: wrote {path}")
    # A diverged checkpoint roundtrip is a correctness failure, not a
    # perf regression -- fail the run (the artifact is already written).
    broken = [
        f"{row['name']}/{engine}"
        for row in report["scenarios"]
        for engine, result in row["engines"].items()
        if result.get("checkpoint", {}).get("roundtrip_match") is False
    ]
    if broken:
        raise BenchRegression(
            "checkpoint roundtrip diverged: " + ", ".join(broken)
        )
    if baseline is not None:
        failures = compare_reports(report, baseline, threshold=compare_threshold)
        if failures:
            raise BenchRegression(
                f"bench regression vs {compare}: " + "; ".join(failures)
            )
        log(f"bench: within {compare_threshold:.0%} of baseline {compare}")
    return path
