"""Array-backed coverage index (vectorized engine).

The reference :class:`~repro.core.transport.CoverageIndex` re-buckets every
object into per-tile and per-cell dict lists each step.  The vectorized
index instead sorts the population once per step with a *stable* argsort on
the flattened tile / cell keys: a bucket is then a contiguous slice of the
sorted arrays, found with two binary searches, and station-coverage checks
become one array distance mask per tile row.

Stability matters for more than determinism: within a bucket the stable
sort preserves population order, which is exactly the order the reference
index appends to its dict lists.  Receiver *sets* are therefore built with
the same insertion sequence in both engines, so iterating them (e.g. the
per-receiver loss draws in ``SimulatedTransport.broadcast``) consumes the
random stream identically.
"""

from __future__ import annotations

from typing import Iterable

from repro.fastpath.store import ObjectStateStore
from repro.grid import CellIndex, CellRange, CellRangeUnion, Grid
from repro.mobility.model import ObjectId
from repro.network.basestation import BaseStationId, BaseStationLayout


class VectorizedCoverageIndex:
    """Drop-in for ``CoverageIndex`` backed by an :class:`ObjectStateStore`.

    ``rebuild`` ignores the ``positions`` iterable (the store already holds
    the positions) but keeps the signature so
    :meth:`~repro.core.transport.SimulatedTransport.begin_step` works
    unchanged.
    """

    def __init__(self, layout: BaseStationLayout, grid: Grid, store: ObjectStateStore) -> None:
        self.layout = layout
        self.grid = grid
        self.store = store
        # Accepted for interface parity with the reference index; the cell
        # arrays are maintained unconditionally, so nothing extra to track.
        self.track_cells = False
        np = store.np
        self._empty = np.empty(0, dtype=np.int64)
        self._tile_keys = self._empty
        self._tile_x = self._empty
        self._tile_y = self._empty
        self._tile_oids = self._empty
        self._tile_rows = self._empty  # store rows in tile-sorted order
        self._cell_oids: list[ObjectId] = []
        self._cell_rows = self._empty  # store rows in cell-sorted order
        self._cell_keys = self._empty  # flattened cell keys, sorted

    def rebuild(self, positions: Iterable[tuple[ObjectId, object]] = ()) -> None:
        """Re-bucket the population for the new step (one argsort each way)."""
        store = self.store
        np = store.np
        store.refresh_derived(self.grid, self.layout)

        tile_key = store.tile_i * self.layout.tile_rows + store.tile_j
        order = np.argsort(tile_key, kind="stable")
        self._tile_keys = tile_key[order]
        self._tile_x = store.x[order]
        self._tile_y = store.y[order]
        self._tile_oids = store.oids[order]
        self._tile_rows = order

        cell_key = store.cell_i * self.grid.n_rows + store.cell_j
        order = np.argsort(cell_key, kind="stable")
        self._cell_rows = order
        self._cell_keys = cell_key[order]
        self._cell_oids = store.oids[order].tolist()

    def cell_of(self, oid: ObjectId) -> CellIndex:
        """The grid cell an object was in at the last rebuild."""
        row = self.store.row_of[oid]
        return (int(self.store.cell_i[row]), int(self.store.cell_j[row]))

    def covered_by_stations(self, station_ids: Iterable[BaseStationId]) -> set[ObjectId]:
        """Objects inside any of the stations' coverage circles."""
        np = self.store.np
        layout = self.layout
        tile_rows = layout.tile_rows
        keys = self._tile_keys
        out: set[ObjectId] = set()
        for bsid in station_ids:
            coverage = layout.get(bsid).coverage
            cx, cy = coverage.cx, coverage.cy
            r_sq = coverage.r * coverage.r
            ti, tj = layout.tile_of_station(bsid)
            jlo = max(tj - 1, 0)
            jhi = min(tj + 1, tile_rows - 1)
            cols = [col for col in (ti - 1, ti, ti + 1) if 0 <= col < layout.tile_cols]
            # One batched binary search for all candidate tile columns.
            bounds = np.searchsorted(
                keys,
                [col * tile_rows + jlo for col in cols]
                + [col * tile_rows + jhi + 1 for col in cols],
            )
            ncols = len(cols)
            for k in range(ncols):
                lo = int(bounds[k])
                hi = int(bounds[k + ncols])
                if lo == hi:
                    continue
                dx = self._tile_x[lo:hi] - cx
                dy = self._tile_y[lo:hi] - cy
                inside = dx * dx + dy * dy <= r_sq
                out.update(self._tile_oids[lo:hi][inside].tolist())
        return out

    def receiver_mask(
        self,
        station_ids: Iterable[BaseStationId],
        region: "CellRange | CellRangeUnion | Iterable[CellIndex]",
    ):
        """Boolean store-row mask of one broadcast's receivers.

        Same membership as ``covered_by_stations(station_ids) |
        in_cells(region)``, but produced as an array mask without building
        the intermediate Python sets -- the fan-out applies broadcasts in
        bulk, so it never needs the receivers in set form.
        """
        np = self.store.np
        mask = np.zeros(self.store.n, dtype=bool)
        layout = self.layout
        tile_rows = layout.tile_rows
        keys = self._tile_keys
        trows = self._tile_rows
        # One batched binary search for every station's candidate tile
        # columns, then one concatenated distance pass over all slices --
        # the covers are small, so per-station array ops would drown in
        # fixed numpy overhead.
        lo_keys: list[int] = []
        hi_keys: list[int] = []
        spans: list[tuple[int, float, float, float]] = []  # (#cols, cx, cy, r^2)
        for bsid in station_ids:
            coverage = layout.get(bsid).coverage
            ti, tj = layout.tile_of_station(bsid)
            jlo = max(tj - 1, 0)
            jhi = min(tj + 1, tile_rows - 1)
            ncols = 0
            for col in (ti - 1, ti, ti + 1):
                if 0 <= col < layout.tile_cols:
                    lo_keys.append(col * tile_rows + jlo)
                    hi_keys.append(col * tile_rows + jhi + 1)
                    ncols += 1
            spans.append((ncols, coverage.cx, coverage.cy, coverage.r * coverage.r))
        bounds = keys.searchsorted(lo_keys + hi_keys).tolist()
        nkeys = len(lo_keys)
        slices: list[tuple[int, int]] = []
        cxs: list[float] = []
        cys: list[float] = []
        rsqs: list[float] = []
        k = 0
        for ncols, cx, cy, r_sq in spans:
            for _ in range(ncols):
                lo = bounds[k]
                hi = bounds[k + nkeys]
                k += 1
                if lo != hi:
                    slices.append((lo, hi))
                    cxs.append(cx)
                    cys.append(cy)
                    rsqs.append(r_sq)
        if slices:
            xs = np.concatenate([self._tile_x[lo:hi] for lo, hi in slices])
            ys = np.concatenate([self._tile_y[lo:hi] for lo, hi in slices])
            rows = np.concatenate([trows[lo:hi] for lo, hi in slices])
            lens = [hi - lo for lo, hi in slices]
            dx = xs - np.repeat(cxs, lens)
            dy = ys - np.repeat(cys, lens)
            inside = dx * dx + dy * dy <= np.repeat(rsqs, lens)
            mask[rows[inside]] = True
        if type(region) is CellRange:
            rects = (region,)
        elif type(region) is CellRangeUnion:
            rects = (region.first, region.second)
        else:
            rects = None
        n_rows = self.grid.n_rows
        ckeys = self._cell_keys
        crows = self._cell_rows
        if rects is not None:
            # A rect's keys are contiguous per i-column: one batched binary
            # search yields every column's sorted-run bounds at once.
            search = ckeys.searchsorted
            for rect in rects:
                span = rect.hi_j - rect.lo_j + 1
                lo_keys = [i * n_rows + rect.lo_j for i in range(rect.lo_i, rect.hi_i + 1)]
                bounds = search(lo_keys + [k + span for k in lo_keys]).tolist()
                nc = len(lo_keys)
                for k in range(nc):
                    lo = bounds[k]
                    hi = bounds[k + nc]
                    if lo != hi:
                        mask[crows[lo:hi]] = True
        else:
            for i, j in region:
                key = i * n_rows + j
                lo = int(np.searchsorted(ckeys, key))
                hi = int(np.searchsorted(ckeys, key + 1))
                if lo != hi:
                    mask[crows[lo:hi]] = True
        return mask

    def in_cells(self, cells: Iterable[CellIndex]) -> set[ObjectId]:
        """Objects currently located in the given grid cells."""
        np = self.store.np
        n_rows = self.grid.n_rows
        keys = self._cell_keys
        oids = self._cell_oids
        if type(cells) is CellRange:
            # Monitoring regions arrive as rectangular cell ranges: build
            # the wanted keys with one outer sum, in the range's own
            # iteration order (i-outer, j-inner) so the bucket visit order
            # -- and with it the receiver-set insertion sequence -- is the
            # same as iterating the range cell by cell.
            ii = np.arange(cells.lo_i, cells.hi_i + 1, dtype=np.int64) * n_rows
            jj = np.arange(cells.lo_j, cells.hi_j + 1, dtype=np.int64)
            wanted = (ii[:, None] + jj).ravel()
            ncells = int(wanted.size)
            if not ncells:
                return set()
            bounds = np.searchsorted(keys, np.concatenate([wanted, wanted + 1]))
        else:
            flat = [i * n_rows + j for i, j in cells]
            if not flat:
                return set()
            ncells = len(flat)
            bounds = np.searchsorted(keys, flat + [k + 1 for k in flat])
        # One batched binary search: each cell's bucket is the contiguous
        # run [key, key + 1) of the sorted keys.
        blist = bounds.tolist()
        out: set[ObjectId] = set()
        for k in range(ncells):
            lo = blist[k]
            hi = blist[k + ncells]
            if lo != hi:
                out.update(oids[lo:hi])
        return out
