"""Batched LQT evaluation (vectorized engine).

The reference engine evaluates each object's local query table entry by
entry inside :meth:`~repro.core.client.MobiEyesClient.evaluation_phase`.
The :class:`BatchEvaluator` instead keeps *every* LQT entry system-wide in
one persistent structure-of-arrays **arena**, computes the geometry --
dead-reckoned focal positions, ``dist^2`` against ``reach^2``, circle
containment, safe-period bounds, and enter/leave deltas -- as flat array
expressions once per evaluation step, and dispatches the resulting
differential reports through the unchanged client/transport message path.

The arena is maintained event-driven rather than rebuilt per evaluation:

- every client's :class:`~repro.core.tables.LocalQueryTable` notifies the
  evaluator on install/remove (``lqt_changed``); the client's entries are
  then *tombstoned* (``alive`` mask cleared) and re-appended at the arena
  tail on the next evaluation.  Untouched clients cost nothing.
- when the dead fraction grows past the live population the arena is
  compacted in place (one boolean-index copy; block offsets are plain
  integers patched in a single pass).
- in-place replacement of an entry's ``focal_state`` -- velocity broadcasts
  and existing-entry refreshes, which do *not* bump the table version --
  fires ``state_changed``; when the entry is the first of its focal group
  the cached per-group dead-reckoning basis (position, velocity, record
  time) is rewritten in place.  Other in-place mutations need no hook:
  ``ptm`` is re-read per evaluation when safe periods are on, ``is_target``
  is dual-written by the delta pass itself, ``focal_max_speed`` rewrites
  always carry the focal object's immutable ``max_speed``, and
  ``mon_region`` is not consulted by evaluation.

Exactness contract (checked by the differential test suite): for any
configuration the batch pass produces the same per-entry ``is_target`` and
``ptm`` updates and the same uplink messages in the same order as running
the reference ``evaluation_phase`` client by client.  The key observations
that make a system-wide batch legal:

- evaluation-phase uplinks (``ResultChangeReport``) never trigger downlink
  traffic, so one client's reports cannot influence another client's
  evaluation within the same phase;
- within a focal group the reference predicts the focal position from the
  *first non-skipped* entry's motion state and reuses it for the group
  (with safe periods off that is always the first entry, which is what the
  cached basis columns hold);
- entries are sorted by reach descending, so the grouping short-circuit
  ("beyond a larger region's reach implies outside all smaller ones") is a
  prefix property computable with a segmented cumulative sum;
- reports are dispatched per client in ascending object id -- the
  reference processing order -- so loss-model draws consume the random
  stream identically.

The evaluation stats counters (``evaluated_queries``,
``skipped_by_safe_period``, ``skipped_by_grouping``) are kept as
system-wide aggregates on the evaluator rather than per-client counters;
:meth:`~repro.fastpath.runtime.FastpathRuntime.drain_eval_counts` folds
them into the per-step metrics, which is where the reference engine's
per-client counters get summed anyway.

Static (fixed-region) entries take the scalar
``_process_static_entries`` path in their original stream position; their
regions are arbitrary shapes and there are typically few of them.
"""

from __future__ import annotations

from itertools import compress
from typing import TYPE_CHECKING

from repro.fastpath import require_numpy
from repro.geometry import Circle, Point

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.client import MobiEyesClient
    from repro.core.config import MobiEyesConfig
    from repro.core.tables import LqtEntry
    from repro.fastpath.store import ObjectStateStore
    from repro.mobility.model import ObjectId


class _Block:
    """Arena footprint of one client's local query table.

    ``ent_lo``/``g_lo`` are the client's first entry / group slot; its
    ``n`` entries and ``n_g`` moving groups are contiguous from there.
    ``units`` preserves the client's stream order -- ``("m", i)`` is the
    i-th moving group, ``("s", i)`` the i-th static group -- which drives
    report emission.  ``first_local`` maps the qid of each moving group's
    first entry to the group's local index, for the focal-state hook.
    """

    __slots__ = (
        "ent_lo",
        "n",
        "g_lo",
        "n_g",
        "n_static",
        "units",
        "keys",
        "static_units",
        "first_local",
    )


class BatchEvaluator:
    """One-shot batched evaluation of all clients' local query tables."""

    def __init__(self, config: "MobiEyesConfig", store: "ObjectStateStore") -> None:
        np = require_numpy()
        self.np = np
        self.config = config
        self.store = store
        self.grouping = config.grouping
        self.sp_on = config.safe_period
        # System-wide aggregates, drained into the step metrics.
        self.evaluated_queries = 0
        self.skipped_by_safe_period = 0
        self.skipped_by_grouping = 0
        # Entry-dimension arena columns (amortized-doubling capacity).
        self._ecap = 1024
        self._gcap = 512
        f64 = np.float64
        i64 = np.int64
        self.e_reach = np.empty(self._ecap, f64)
        self.e_fmax = np.empty(self._ecap, f64)
        self.e_own = np.empty(self._ecap, f64)  # owner max speed (safe period)
        self.e_circ = np.empty(self._ecap, bool)
        self.e_targ = np.empty(self._ecap, bool)
        self.e_alive = np.empty(self._ecap, bool)
        self.e_row = np.empty(self._ecap, i64)  # owner's store row
        self.e_group = np.empty(self._ecap, i64)
        self.e_refs: list = []  # LqtEntry per slot, aligned with the columns
        # Group-dimension columns.
        self.g_start = np.empty(self._gcap, i64)
        self.g_alive = np.empty(self._gcap, bool)
        self.g_oid = np.empty(self._gcap, i64)  # owning client's object id
        # Cached dead-reckoning basis of the group's first entry.
        self.g_sx = np.empty(self._gcap, f64)
        self.g_sy = np.empty(self._gcap, f64)
        self.g_svx = np.empty(self._gcap, f64)
        self.g_svy = np.empty(self._gcap, f64)
        self.g_srec = np.empty(self._gcap, f64)
        self.n_ent = 0
        self.n_grp = 0
        self.dead_ent = 0
        # Compact once this many slots are tombstoned *and* the dead
        # outnumber the alive 2:1; tests lower it to force compaction on
        # tiny workloads.
        self.compact_threshold = 2048
        self.static_ent = 0  # live static entries across all blocks
        self._blocks: dict = {}
        self._stale: set = set()
        self._static_oids: set = set()
        self._clients: dict = {}

    # ----------------------------------------------------------- watching

    def attach(self, clients: "list[MobiEyesClient]") -> None:
        """Register as watcher of every client's LQT.

        Clients that already hold entries (installed before attachment) are
        marked stale so the first evaluation picks them up.
        """
        for client in clients:
            self._clients[client.oid] = client
            client.lqt.watch(self, client.oid)
            if len(client.lqt):
                self._stale.add(client.oid)

    def lqt_changed(self, oid: "ObjectId") -> None:
        """Table hook: an install/remove invalidated the client's block."""
        self._stale.add(oid)

    def state_changed(self, oid: "ObjectId", entry: "LqtEntry") -> None:
        """Table hook: ``entry.focal_state`` was replaced in place."""
        if oid in self._stale:
            return  # the block will be rebuilt with the fresh state anyway
        block = self._blocks.get(oid)
        if block is None:
            return
        li = block.first_local.get(entry.qid)
        if li is None:
            return  # not a group's prediction basis
        g = block.g_lo + li
        state = entry.focal_state
        pos = state.pos
        vel = state.vel
        self.g_sx[g] = pos.x
        self.g_sy[g] = pos.y
        self.g_svx[g] = vel.x
        self.g_svy[g] = vel.y
        self.g_srec[g] = state.recorded_at

    # -------------------------------------------------- arena maintenance

    def _grow_ent(self, need: int) -> None:
        np = self.np
        cap = self._ecap
        while cap < need:
            cap *= 2
        n = self.n_ent
        for name in (
            "e_reach",
            "e_fmax",
            "e_own",
            "e_circ",
            "e_targ",
            "e_alive",
            "e_row",
            "e_group",
        ):
            old = getattr(self, name)
            new = np.empty(cap, old.dtype)
            new[:n] = old[:n]
            setattr(self, name, new)
        self._ecap = cap

    def _grow_grp(self, need: int) -> None:
        np = self.np
        cap = self._gcap
        while cap < need:
            cap *= 2
        n = self.n_grp
        for name in ("g_start", "g_alive", "g_oid", "g_sx", "g_sy", "g_svx", "g_svy", "g_srec"):
            old = getattr(self, name)
            new = np.empty(cap, old.dtype)
            new[:n] = old[:n]
            setattr(self, name, new)
        self._gcap = cap

    def _refresh(self) -> None:
        """Tombstone and re-append the blocks of every stale client."""
        stale = self._stale
        if not stale:
            return
        blocks = self._blocks
        # Focal-state params seen during this refresh, keyed by state
        # identity: a broadcast shares one MotionState across its
        # receivers, so most rebuilds hit the cache.
        seen: dict[int, tuple] = {}
        for oid in stale:
            block = blocks.pop(oid, None)
            if block is not None:
                lo = block.ent_lo
                self.e_alive[lo : lo + block.n] = False
                self.g_alive[block.g_lo : block.g_lo + block.n_g] = False
                self.dead_ent += block.n
                if block.static_units:
                    self._static_oids.discard(oid)
                    self.static_ent -= block.n_static
            client = self._clients[oid]
            if len(client.lqt):
                self._append(client, seen)
        stale.clear()

    def lqt_total(self) -> int:
        """Total LQT entries system-wide, without forcing a refresh.

        Live arena entries plus static entries, corrected by the pending
        (stale) clients' current-vs-cached table sizes.
        """
        total = self.n_ent - self.dead_ent + self.static_ent
        for oid in self._stale:
            block = self._blocks.get(oid)
            cached = (block.n + block.n_static) if block is not None else 0
            total += len(self._clients[oid].lqt) - cached
        return total

    def _append(self, client: "MobiEyesClient", seen: dict) -> None:
        """Append the client's current LQT at the arena tail."""
        np = self.np
        lqt = client.lqt
        refs: list = []
        grp_first: list = []
        counts: list[int] = []
        keys: list = []
        units: list[tuple[str, int]] = []
        statics: list[list] = []
        if self.grouping:
            # Inline by_focal(): group by focal oid in insertion order,
            # reach-descending (stable) within each group.
            groups: dict = {}
            for entry in lqt._entries.values():
                g = groups.get(entry.oid)
                if g is None:
                    groups[entry.oid] = [entry]
                else:
                    g.append(entry)
            for group in groups.values():
                if len(group) > 1:
                    group.sort(key=lambda e: -e.reach)
            streams = groups.items()
        else:
            streams = ((entry.oid, (entry,)) for entry in lqt._entries.values())
        for key, group in streams:
            if group[0].is_static:
                units.append(("s", len(statics)))
                statics.append(list(group))
                continue
            units.append(("m", len(counts)))
            counts.append(len(group))
            keys.append(key)
            grp_first.append(group[0])
            refs.extend(group)

        n = len(refs)
        n_g = len(counts)
        lo = self.n_ent
        g_lo = self.n_grp
        if lo + n > self._ecap:
            self._grow_ent(lo + n)
        if g_lo + n_g > self._gcap:
            self._grow_grp(g_lo + n_g)
        if n:
            hi = lo + n
            gh = g_lo + n_g
            self.e_reach[lo:hi] = [e.reach for e in refs]
            self.e_fmax[lo:hi] = [e.focal_max_speed for e in refs]
            self.e_own[lo:hi] = client.obj.max_speed
            # Within-reach implies inside only when the reach IS the circle
            # radius (the origin-bound circles the query layer validates);
            # anything else takes the scalar containment fallback.
            self.e_circ[lo:hi] = [
                type(e.region) is Circle and e.reach == e.region.r for e in refs
            ]
            self.e_targ[lo:hi] = [e.is_target for e in refs]
            self.e_row[lo:hi] = self.store.row_of[client.oid]
            self.e_alive[lo:hi] = True
            if n_g == n:  # all groups are singletons (the common case)
                slots = np.arange(lo, hi, dtype=np.int64)
                self.e_group[lo:hi] = np.arange(g_lo, gh, dtype=np.int64)
                self.g_start[g_lo:gh] = slots
            else:
                carr = np.asarray(counts, dtype=np.int64)
                gofs = np.zeros(n_g, dtype=np.int64)
                np.cumsum(carr[:-1], out=gofs[1:])
                self.e_group[lo:hi] = np.repeat(
                    np.arange(g_lo, gh, dtype=np.int64), carr
                )
                self.g_start[g_lo:gh] = lo + gofs
            self.g_alive[g_lo:gh] = True
            self.g_oid[g_lo:gh] = client.oid
            params: list[tuple] = []
            add = params.append
            for e in grp_first:
                state = e.focal_state
                t = seen.get(id(state))
                if t is None:
                    pos = state.pos
                    vel = state.vel
                    t = (pos.x, pos.y, vel.x, vel.y, state.recorded_at)
                    seen[id(state)] = t
                add(t)
            sx, sy, svx, svy, srec = zip(*params)
            self.g_sx[g_lo:gh] = sx
            self.g_sy[g_lo:gh] = sy
            self.g_svx[g_lo:gh] = svx
            self.g_svy[g_lo:gh] = svy
            self.g_srec[g_lo:gh] = srec
            self.e_refs.extend(refs)

        block = _Block()
        block.ent_lo = lo
        block.n = n
        block.g_lo = g_lo
        block.n_g = n_g
        block.n_static = sum(len(group) for group in statics)
        block.units = units
        block.keys = keys
        block.static_units = statics
        block.first_local = {e.qid: j for j, e in enumerate(grp_first)}
        self._blocks[client.oid] = block
        if statics:
            self._static_oids.add(client.oid)
            self.static_ent += block.n_static
        self.n_ent = lo + n
        self.n_grp = g_lo + n_g

    def _compact(self) -> None:
        """Squeeze tombstoned slots out of the arena (order-preserving)."""
        np = self.np
        n = self.n_ent
        g = self.n_grp
        ea = self.e_alive[:n]
        ga = self.g_alive[:g]
        ecum = np.cumsum(ea)
        gcum = np.cumsum(ga)
        new_n = int(ecum[-1]) if n else 0
        new_g = int(gcum[-1]) if g else 0
        for name in ("e_reach", "e_fmax", "e_own", "e_circ", "e_targ", "e_row"):
            arr = getattr(self, name)
            arr[:new_n] = arr[:n][ea]
        compact_groups = self.e_group[:n][ea]
        self.e_group[:new_n] = gcum[compact_groups] - 1
        alive_starts = self.g_start[:g][ga]
        self.g_start[:new_g] = ecum[alive_starts] - 1
        for name in ("g_oid", "g_sx", "g_sy", "g_svx", "g_svy", "g_srec"):
            arr = getattr(self, name)
            arr[:new_g] = arr[:g][ga]
        # ``ea`` is a *view* of ``e_alive``: consume it before the alive
        # flags are reset below, or the compress mask is corrupted.
        self.e_refs = list(compress(self.e_refs, ea.tolist()))
        self.e_alive[:new_n] = True
        self.g_alive[:new_g] = True
        ecum_l = ecum  # new index of an alive slot i is ecum[i] - 1
        for block in self._blocks.values():
            if block.n:
                block.ent_lo = int(ecum_l[block.ent_lo]) - 1
            if block.n_g:
                block.g_lo = int(gcum[block.g_lo]) - 1
        self.n_ent = new_n
        self.n_grp = new_g
        self.dead_ent = 0

    # --------------------------------------------------------------- run

    def run(self, now: float) -> None:
        """Evaluate every client's LQT and uplink differential reports."""
        self._refresh()
        if (
            self.dead_ent > self.compact_threshold
            and self.dead_ent * 2 > self.n_ent - self.dead_ent
        ):
            self._compact()

        dirty: set = set()
        static_changes: dict[tuple, dict] = {}
        blocks = self._blocks
        clients = self._clients
        # Static (fixed-region) groups: scalar path, every evaluation.
        for oid in sorted(self._static_oids):
            client = clients[oid]
            for si, group in enumerate(blocks[oid].static_units):
                changes = client._process_static_entries(group, now)
                if changes:
                    static_changes[(oid, si)] = changes
                    dirty.add(oid)

        group_changes: dict[int, dict] = {}
        if self.n_ent:
            self._batch(now, dirty, group_changes)

        if not dirty:
            return

        # ---------------------------------------------------- dispatch
        # Reference emission: per client (ascending oid), merge unit
        # changes into a dict keyed by focal object (insertion-ordered,
        # following the unit stream), then send one report per focal group
        # (grouping) or one per query (no grouping).
        grouping = self.grouping
        for oid in sorted(dirty):
            block = blocks[oid]
            client = clients[oid]
            g0 = block.g_lo
            by_focal: dict = {}
            for kind, li in block.units:
                if kind == "m":
                    changes = group_changes.get(g0 + li)
                    key = block.keys[li]
                else:
                    changes = static_changes.get((oid, li))
                    key = None
                if changes:
                    by_focal.setdefault(key, {}).update(changes)
            if grouping:
                for changed in by_focal.values():
                    client._send_result_changes(changed)
            else:
                for changed in by_focal.values():
                    for qid, flag in changed.items():
                        client._send_result_changes({qid: flag})

    # ------------------------------------------------------------- batch

    def _batch(self, now: float, dirty: set, group_changes: dict) -> None:
        """Array pass over the arena; applies entry updates in place."""
        np = self.np
        i64 = np.int64
        n = self.n_ent
        n_g = self.n_grp
        alive = self.e_alive[:n]
        reach = self.e_reach[:n]
        e_group = self.e_group[:n]
        g_start = self.g_start[:n_g]
        rows = self.e_row[:n]
        ox = self.store.x[rows]
        oy = self.store.y[rows]

        # Safe-period skips and the per-group prediction basis: the focal
        # position comes from the first *non-skipped* entry's motion state,
        # so with safe periods on the basis is re-derived every evaluation;
        # with them off it is always the first entry, served by the cached
        # group columns (maintained by the rebuilds and the state hook).
        if self.sp_on:
            refs = self.e_refs
            ptm = np.fromiter((e.ptm for e in refs), np.float64, count=n)
            skip = (ptm > now) & alive
            self.skipped_by_safe_period += int(skip.sum())
            valid = alive & ~skip
            pick = np.where(valid, np.arange(n, dtype=i64), n)
            g_first = np.minimum.reduceat(pick, g_start)
            live_groups = np.nonzero(self.g_alive[:n_g] & (g_first < n))[0]
            px_g = np.zeros(n_g)
            py_g = np.zeros(n_g)
            if live_groups.size:
                seen: dict[int, int] = {}
                sidx: list[int] = []
                xs: list[float] = []
                ys: list[float] = []
                vxs: list[float] = []
                vys: list[float] = []
                recs: list[float] = []
                for ei in g_first[live_groups].tolist():
                    state = refs[ei].focal_state
                    k = seen.get(id(state))
                    if k is None:
                        k = len(xs)
                        seen[id(state)] = k
                        pos = state.pos
                        vel = state.vel
                        xs.append(pos.x)
                        ys.append(pos.y)
                        vxs.append(vel.x)
                        vys.append(vel.y)
                        recs.append(state.recorded_at)
                    sidx.append(k)
                si = np.asarray(sidx, dtype=i64)
                # Exact reference operation order: dt = now - tm, then
                # pos + vel * dt, elementwise in float64.
                sdt = now - np.asarray(recs)[si]
                px_g[live_groups] = np.asarray(xs)[si] + np.asarray(vxs)[si] * sdt
                py_g[live_groups] = np.asarray(ys)[si] + np.asarray(vys)[si] * sdt
        else:
            skip = None
            valid = alive
            g_dt = now - self.g_srec[:n_g]
            px_g = self.g_sx[:n_g] + self.g_svx[:n_g] * g_dt
            py_g = self.g_sy[:n_g] + self.g_svy[:n_g] * g_dt

        dx = ox - px_g[e_group]
        dy = oy - py_g[e_group]
        dist_sq = dx * dx + dy * dy
        beyond = dist_sq > reach * reach

        if self.grouping:
            # Segmented prefix count of (non-skipped) `beyond` strictly
            # before each entry within its group: any hit latches every
            # later (smaller-reach) entry of the group as implied-outside.
            # Tombstoned groups compute garbage that never escapes their
            # own segment and is masked out below.
            b = beyond.astype(i64) if skip is None else (beyond & ~skip).astype(i64)
            excl = np.cumsum(b) - b
            before = excl - excl[g_start[e_group]]
            implied = (before > 0) & valid
        else:
            implied = np.zeros(n, dtype=bool)
        checked = valid & ~implied

        # Containment: for origin-bound circles (the paper's default) the
        # reach equals the radius, so a checked entry within reach is
        # inside by the same squared-space comparison the reference makes.
        inside = checked & ~beyond
        noncircle = inside & ~self.e_circ[:n]
        if noncircle.any():
            predicted_cache: dict[int, Point] = {}
            g_oid = self.g_oid
            e_refs = self.e_refs
            clients = self._clients
            for i in np.nonzero(noncircle)[0].tolist():
                g = int(e_group[i])
                predicted = predicted_cache.get(g)
                if predicted is None:
                    predicted = Point(float(px_g[g]), float(py_g[g]))
                    predicted_cache[g] = predicted
                client = clients[int(g_oid[g])]
                inside[i] = client._contains(e_refs[i], predicted)

        self.evaluated_queries += int(checked.sum())
        if self.grouping:
            self.skipped_by_grouping += int(implied.sum())

        if self.sp_on:
            outside = ~inside & valid
            if outside.any():
                gap = np.sqrt(dist_sq) - reach
                closing = self.e_own[:n] + self.e_fmax[:n]
                with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
                    sp = np.where(
                        gap <= 0.0,
                        0.0,
                        np.where(closing == 0.0, np.inf, gap / closing),
                    )
                write = outside & (sp > self.config.eval_period_hours)
                if write.any():
                    idxs = np.nonzero(write)[0]
                    values = (now + sp[idxs]).tolist()
                    for i, value in zip(idxs.tolist(), values):
                        refs[i].ptm = value

        delta = (inside != self.e_targ[:n]) & valid
        if delta.any():
            idxs = np.nonzero(delta)[0]
            flags = inside[idxs].tolist()
            gsel = e_group[idxs].tolist()
            oids = self.g_oid[e_group[idxs]].tolist()
            e_refs = self.e_refs
            e_targ = self.e_targ
            for i, g, flag, oid in zip(idxs.tolist(), gsel, flags, oids):
                entry = e_refs[i]
                entry.is_target = flag
                e_targ[i] = flag
                group_changes.setdefault(g, {})[entry.qid] = flag
                dirty.add(oid)
