"""Vectorized broadcast fan-out (vectorized engine, fault-free fast path).

Profiling the dense workload shows the reporting phase dominated not by
the reports themselves but by their *reactions*: every server broadcast
is delivered receiver by receiver through ``SimulatedTransport._deliver``
-> ``MobiEyesClient.on_downlink``, ~100 scalar handler invocations per
broadcast.  For the high-volume broadcast types those handlers perform a
per-receiver table poke that can be applied in bulk:

- ``VelocityChangeBroadcast``: rewrite ``focal_state`` / ``ptm`` on each
  receiver's LQT entry for the broadcast's queries.
- ``QueryInstallBroadcast`` / ``QueryUpdateBroadcast``: refresh or drop
  the entry of each holding receiver, install on covered non-holders.
- ``QueryRemoveBroadcast``: drop the entry of each holding receiver.

:class:`BroadcastFanout` keeps a query-id -> holders index (maintained
push-style through the LQT's entry-watcher hooks) so a broadcast touches
exactly the entries it affects, and computes the receiver set as one
boolean store-row mask (:meth:`VectorizedCoverageIndex.receiver_mask`)
instead of a Python set.

Equivalence to the per-receiver loop:

- The per-receiver handlers are mutually independent (each touches only
  its own client's LQT), so applying them grouped by query instead of
  ordered by receiver id is unobservable -- except for the *leave*
  reports an update broadcast provokes, which are collected per receiver
  in descriptor order and emitted in ascending receiver order, exactly
  the reference interleaving of uplinks.
- Message and energy accounting uses the same ledger call with the same
  receiver membership.
- The fan-out declines (falls back to the scalar loop) whenever per-
  receiver semantics matter: loss rolls, reliability sequencing, trace
  logging, deferred delivery, detached radios, or a lazy-propagation
  velocity broadcast carrying descriptors.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING

from repro.core.messages import (
    QueryInstallBroadcast,
    QueryRemoveBroadcast,
    QueryUpdateBroadcast,
    VelocityChangeBroadcast,
)
from repro.core.tables import LqtEntry

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.query import QueryId
    from repro.fastpath.runtime import FastpathRuntime
    from repro.mobility.model import ObjectId


class BroadcastFanout:
    """Bulk application of region broadcasts for one vectorized system."""

    def __init__(self, runtime: "FastpathRuntime") -> None:
        self.runtime = runtime
        system = runtime.system
        self.transport = system.transport
        self.store = runtime.store
        self.np = runtime.np
        self.coverage = runtime.coverage
        self.clients = system.clients
        self.evaluator = runtime.evaluator
        # qid -> {holder oid -> that holder's LqtEntry}.
        self.holders: dict["QueryId", dict["ObjectId", LqtEntry]] = {}
        for client in runtime.clients_in_order:
            for entry in client.lqt.entries():
                self.holders.setdefault(entry.qid, {})[client.oid] = entry
            client.lqt.watch_entries(self, client.oid)
        self._appliers = {
            VelocityChangeBroadcast: self._apply_velocity,
            QueryInstallBroadcast: self._apply_query,
            QueryUpdateBroadcast: self._apply_query,
            QueryRemoveBroadcast: self._apply_remove,
        }

    # --------------------------------------------- LQT entry-watcher hooks

    def entry_installed(self, oid: "ObjectId", entry: LqtEntry) -> None:
        """An LQT gained (or replaced) an entry; index it."""
        self.holders.setdefault(entry.qid, {})[oid] = entry

    def entry_removed(self, oid: "ObjectId", entry: LqtEntry) -> None:
        """An LQT dropped an entry; unindex it."""
        bucket = self.holders.get(entry.qid)
        if bucket is not None:
            bucket.pop(oid, None)
            if not bucket:
                del self.holders[entry.qid]

    # ------------------------------------------------------------ dispatch

    def try_broadcast(self, station_ids, region, message) -> bool:
        """Apply one region broadcast in bulk; False declines to scalar."""
        applier = self._appliers.get(type(message))
        if applier is None:
            return False
        transport = self.transport
        if (
            transport.loss is not None
            or transport.reliability is not None
            or transport.trace is not None
            or transport.latency_active
            or len(transport._clients) != self.store.n
        ):
            return False
        if type(message) is VelocityChangeBroadcast and message.descriptors:
            # Lazy propagation: receivers may install from the expanded
            # descriptors; keep the scalar per-receiver path.
            return False
        mask = self.coverage.receiver_mask(station_ids, region)
        receivers = self.store.oids[mask].tolist()
        meter = transport.meter_serialization
        t0 = perf_counter() if meter else 0.0
        transport.ledger.record_downlink(
            type(message).__name__,
            message.bits,
            receivers=receivers,
            broadcasts=len(station_ids),
        )
        if meter:
            transport.serialization_seconds += perf_counter() - t0
        applier(message, mask, set(receivers))
        return True

    # ------------------------------------------------------------ appliers

    def _apply_velocity(self, message: VelocityChangeBroadcast, mask, recv: set) -> None:
        """Fresh focal motion state for each holding receiver's entries.

        The arena bookkeeping inlines the evaluator's ``state_changed``
        hook: collect the group slots whose cached dead-reckoning basis the
        in-place ``focal_state`` rewrites invalidate, then rewrite them all
        in one shot (every receiver got the same state).
        """
        state = message.state
        ev = self.evaluator
        stale = ev._stale
        blocks = ev._blocks
        slots: list[int] = []
        append = slots.append
        for qid in message.qids:
            bucket = self.holders.get(qid)
            if not bucket:
                continue
            for oid, entry in bucket.items():
                if oid in recv:
                    entry.focal_state = state
                    entry.ptm = 0.0  # prediction basis changed: re-evaluate
                    if oid not in stale:  # else rebuilt with the fresh state
                        block = blocks.get(oid)
                        if block is not None:
                            li = block.first_local.get(qid)
                            if li is not None:  # else not a prediction basis
                                append(block.g_lo + li)
        self._write_basis(slots, state)

    def _write_basis(self, slots: list[int], state) -> None:
        """Rewrite the cached per-group prediction basis of ``slots``."""
        if not slots:
            return
        ev = self.evaluator
        pos = state.pos
        vel = state.vel
        ev.g_sx[slots] = pos.x
        ev.g_sy[slots] = pos.y
        ev.g_svx[slots] = vel.x
        ev.g_svy[slots] = vel.y
        ev.g_srec[slots] = state.recorded_at

    def _apply_remove(self, message: QueryRemoveBroadcast, mask, recv: set) -> None:
        """Drop each removed query from its holding receivers (no leave
        reports: the reference remove handler sends none)."""
        clients = self.clients
        for qid in message.qids:
            bucket = self.holders.get(qid)
            if not bucket:
                continue
            hit = [oid for oid in bucket if oid in recv]
            for oid in hit:  # removal mutates the bucket via the hooks
                clients[oid].lqt.remove(qid)

    def _apply_query(self, message, mask, recv: set) -> None:
        """Install / refresh / drop per the broadcast descriptors."""
        np = self.np
        store = self.store
        clients = self.clients
        runtime = self.runtime
        ev = self.evaluator
        stale = ev._stale
        blocks = ev._blocks
        rows = np.nonzero(mask)[0]
        recv_i = runtime.last_i[rows]
        recv_j = runtime.last_j[rows]
        recv_oids = store.oids[rows].tolist()
        # Leave reports accumulate per receiver in descriptor order and are
        # sent last, ascending by receiver -- the exact uplink sequence of
        # the sorted per-receiver loop (only these reports are externally
        # visible; every other effect is receiver-local).
        leaves: dict["ObjectId", dict["QueryId", bool]] = {}
        for desc in message.queries:
            qid = desc.qid
            region = desc.mon_region
            focal = desc.oid
            bucket = self.holders.get(qid)
            held = list(bucket.items()) if bucket else ()
            slots: list[int] = []
            for oid, entry in held:
                if oid not in recv or oid == focal:
                    continue
                client = clients[oid]
                # `last_cell` equals the runtime's cell mirror at every
                # broadcast moment, and the tuple read beats two array
                # lookups in this scalar loop.
                ci, cj = client.last_cell
                if region.lo_i <= ci <= region.hi_i and region.lo_j <= cj <= region.hi_j:
                    entry.focal_state = desc.focal_state
                    entry.focal_max_speed = desc.focal_max_speed
                    entry.mon_region = region
                    entry.ptm = 0.0  # focal moved: the safe period is void
                    client.lqt.tighten_hull(region)
                    if oid not in stale:  # else rebuilt with the fresh state
                        block = blocks.get(oid)
                        if block is not None:
                            li = block.first_local.get(qid)
                            if li is not None:  # else not a prediction basis
                                slots.append(block.g_lo + li)
                else:
                    removed = client.lqt.remove(qid)
                    if removed is not None and removed.is_target:
                        leaves.setdefault(oid, {})[qid] = False
            self._write_basis(slots, desc.focal_state)
            covered = (
                (recv_i >= region.lo_i)
                & (recv_i <= region.hi_i)
                & (recv_j >= region.lo_j)
                & (recv_j <= region.hi_j)
            )
            if covered.any():
                held_oids = {oid for oid, _ in held}
                for idx in np.nonzero(covered)[0].tolist():
                    oid = recv_oids[idx]
                    if oid == focal or oid in held_oids:
                        continue
                    client = clients[oid]
                    if desc.filter.matches(client.obj.props):
                        client.lqt.install(LqtEntry.from_descriptor(desc))
        for oid in sorted(leaves):
            clients[oid]._send_result_changes(leaves[oid])
