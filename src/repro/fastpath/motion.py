"""Vectorized object movement.

Movement is the paper's simplest hot loop: every object advances along its
velocity vector each step.  The vectorized model computes all new positions
as two fused array operations and falls back to the scalar
:func:`~repro.mobility.motion.reflect_into` for the (few) objects that left
the universe of discourse, so boundary arithmetic matches the reference
implementation bit for bit.  Objects with a zero velocity vector are
masked out entirely -- like the reference, their position *and*
``recorded_at`` stay untouched.

Velocity re-randomization stays scalar: it draws from the shared
:class:`~repro.sim.rng.SimulationRng` in exactly the reference order, which
keeps the two engines' random streams (and therefore their entire
trajectories) identical.
"""

from __future__ import annotations

from typing import Sequence

from repro.fastpath.store import ObjectStateStore
from repro.geometry import Point, Rect, Vector
from repro.mobility.model import MovingObject, ObjectId
from repro.mobility.motion import MotionModel, reflect_into
from repro.sim.rng import SimulationRng


class VectorizedMotionModel(MotionModel):
    """Array-backed drop-in for :class:`~repro.mobility.motion.MotionModel`."""

    def __init__(
        self,
        objects: Sequence[MovingObject],
        uod: Rect,
        rng: SimulationRng,
        velocity_changes_per_step: int = 0,
        store: ObjectStateStore | None = None,
    ) -> None:
        super().__init__(objects, uod, rng, velocity_changes_per_step=velocity_changes_per_step)
        self.store = store if store is not None else ObjectStateStore(self.objects)

    def advance(self, step_hours: float, now_hours: float) -> None:
        """Vectorized equivalent of ``MotionModel.advance``."""
        store = self.store
        np = store.np
        uod = self.uod
        moved = (store.vx != 0.0) | (store.vy != 0.0)
        nx = store.x + store.vx * step_hours
        ny = store.y + store.vy * step_hours
        out = moved & ((nx < uod.lx) | (nx > uod.ux) | (ny < uod.ly) | (ny > uod.uy))
        store.x[moved] = nx[moved]
        store.y[moved] = ny[moved]

        # Scalar reflection for the objects that crossed the boundary: the
        # triangle-wave fold uses float modulo, whose edge cases are easiest
        # to keep identical by running the reference kernel itself.
        out_rows = np.nonzero(out)[0] if out.any() else ()
        for row in out_rows:
            obj = self.objects[row]
            raw = Point(float(nx[row]), float(ny[row]))
            pos, vel = reflect_into(uod, raw, obj.vel)
            store.x[row] = pos.x
            store.y[row] = pos.y
            if vel != obj.vel:
                obj.vel = vel
                store.vx[row] = vel.x
                store.vy[row] = vel.y

        # Write the new positions back into the MovingObject instances (the
        # protocol layer reads ``obj.pos``); tolist() converts to plain
        # Python floats in one C pass.
        objects = self.objects
        xs = store.x.tolist()
        ys = store.y.tolist()
        for row in np.nonzero(moved)[0].tolist():
            obj = objects[row]
            obj.pos = Point(xs[row], ys[row])
            obj.recorded_at = now_hours

        self.changed_last_step = []
        count = min(self.velocity_changes_per_step, len(self.objects))
        if count > 0:
            row_of = self.store.row_of
            for obj in self.rng.sample(self.objects, count):
                self._randomize_velocity(obj, now_hours)
                self.changed_last_step.append(obj.oid)
                self.store.sync_velocity_row(row_of[obj.oid])

    def apply_update(
        self, oid: ObjectId, pos: Point, vel: Vector, now_hours: float
    ) -> MovingObject:
        """Scalar update plus the SoA row sync (the arrays are the source
        of truth for the next vectorized advance)."""
        obj = super().apply_update(oid, pos, vel, now_hours)
        store = self.store
        row = store.row_of[oid]
        store.x[row] = obj.pos.x
        store.y[row] = obj.pos.y
        store.vx[row] = obj.vel.x
        store.vy[row] = obj.vel.y
        return obj
