"""Vectorized ground-truth oracle (``exact_results`` on the fast path).

Mirrors :func:`repro.metrics.accuracy.exact_results` exactly: each query's
absolute region is resolved from the true focal position, the candidate set
is the cell-bucketed population restricted to the cells the region's
bounding rectangle touches, and membership uses the same IEEE comparisons
as ``Circle.contains`` / ``Rect.contains``.

The whole pass is batched across queries: the per-query cell ranges become
one segmented binary search against the cell-sorted key array, the
candidate rows come out of one segmented ``arange`` gather, and circle /
rectangle membership is a single masked array expression over all
(query, candidate) pairs.  Only exotic region shapes and non-trivial
property filters drop to scalar predicates, on their (few) candidates.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.query import MovingQuery, QueryId, TrueFilter
from repro.fastpath.coverage import VectorizedCoverageIndex
from repro.geometry import Circle, Rect
from repro.grid import Grid
from repro.mobility.model import ObjectId


def exact_results_fast(
    coverage: VectorizedCoverageIndex,
    queries: Iterable[MovingQuery],
    grid: Grid,
) -> dict[QueryId, frozenset[ObjectId]]:
    """Evaluate every query against true positions using the store arrays.

    ``coverage`` must have been rebuilt for the current positions (the
    transport does this at the start of every step).
    """
    store = coverage.store
    np = store.np
    n_rows = grid.n_rows
    keys = coverage._cell_keys
    cell_rows = coverage._cell_rows
    objects = store.objects
    row_of = store.row_of

    results: dict[QueryId, frozenset[ObjectId]] = {}
    qs: list[MovingQuery] = []
    regions: list = []
    kind: list[int] = []  # 0 = circle, 1 = rect, 2 = scalar fallback
    p0: list[float] = []
    p1: list[float] = []
    p2: list[float] = []
    p3: list[float] = []
    lo_i: list[int] = []
    hi_i: list[int] = []
    lo_j: list[int] = []
    hi_j: list[int] = []
    for query in queries:
        if query.oid is None:
            region = query.region
        else:
            focal_row = row_of.get(query.oid, -1)
            if focal_row < 0:
                results[query.qid] = frozenset()
                continue
            region = query.region_at(objects[focal_row].pos)
        crange = grid.cells_intersecting(region.bounding_rect())
        qs.append(query)
        regions.append(region)
        lo_i.append(crange.lo_i)
        hi_i.append(crange.hi_i)
        lo_j.append(crange.lo_j)
        hi_j.append(crange.hi_j)
        if type(region) is Circle:
            kind.append(0)
            p0.append(region.cx)
            p1.append(region.cy)
            p2.append(region.r)
            p3.append(0.0)
        elif type(region) is Rect:
            kind.append(1)
            p0.append(region.lx)
            p1.append(region.ux)
            p2.append(region.ly)
            p3.append(region.uy)
        else:
            kind.append(2)
            p0.append(0.0)
            p1.append(0.0)
            p2.append(0.0)
            p3.append(0.0)

    nq = len(qs)
    if not nq:
        return results

    i64 = np.int64
    loi = np.asarray(lo_i, dtype=i64)
    loj = np.asarray(lo_j, dtype=i64)
    hij = np.asarray(hi_j, dtype=i64)
    ncols = np.asarray(hi_i, dtype=i64) - loi + 1
    total_cols = int(ncols.sum())
    qcol = np.repeat(np.arange(nq, dtype=i64), ncols)
    colstart = np.zeros(nq, dtype=i64)
    np.cumsum(ncols[:-1], out=colstart[1:])
    col = loi[qcol] + (np.arange(total_cols, dtype=i64) - colstart[qcol])
    # Each candidate column of a query's cell range is one contiguous run
    # of the cell-sorted keys: [col * n_rows + lo_j, col * n_rows + hi_j].
    klo = col * n_rows + loj[qcol]
    khi = col * n_rows + hij[qcol] + 1
    bounds = np.searchsorted(keys, np.concatenate([klo, khi]))
    lo = bounds[:total_cols]
    hi = bounds[total_cols:]
    lens = hi - lo
    n_cand = int(lens.sum())

    kind_arr = np.asarray(kind, dtype=i64)
    oids = store.oids
    if n_cand:
        candstart = np.zeros(total_cols, dtype=i64)
        np.cumsum(lens[:-1], out=candstart[1:])
        idx = (
            np.arange(n_cand, dtype=i64)
            - np.repeat(candstart, lens)
            + np.repeat(lo, lens)
        )
        rows = cell_rows[idx]
        qcand = np.repeat(qcol, lens)
        x = store.x[rows]
        y = store.y[rows]
        kc = kind_arr[qcand]
        a0 = np.asarray(p0)[qcand]
        a1 = np.asarray(p1)[qcand]
        a2 = np.asarray(p2)[qcand]
        a3 = np.asarray(p3)[qcand]
        dx = x - a0
        dy = y - a1
        circle_mask = dx * dx + dy * dy <= a2 * a2
        rect_mask = (a0 <= x) & (x <= a1) & (a2 <= y) & (y <= a3)
        mask = np.where(kc == 0, circle_mask, rect_mask) & (kc != 2)
        hits = rows[mask]
        qh = qcand[mask]
        # qcand is ascending, so each query's hits are one contiguous run.
        qbounds = np.searchsorted(qh, np.arange(nq + 1, dtype=i64))
        hit_list = hits.tolist()
        hit_oids = oids[hits].tolist()
        qa = qbounds.tolist()
    else:
        hit_list = []
        hit_oids = []
        qa = [0] * (nq + 1)

    for qi, query in enumerate(qs):
        if kind[qi] == 2:
            # Exotic region shape: scalar containment on the candidate rows.
            region = regions[qi]
            members = set()
            query_filter = query.filter
            trivial = type(query_filter) is TrueFilter
            for ci in range(total_cols):
                if int(qcol[ci]) != qi:
                    continue
                for r in cell_rows[int(lo[ci]) : int(hi[ci])].tolist():
                    obj = objects[r]
                    if not region.contains(obj.pos):
                        continue
                    if obj.oid == query.oid:
                        continue
                    if trivial or query_filter.matches(obj.props):
                        members.add(obj.oid)
            results[query.qid] = frozenset(members)
            continue
        a, b = qa[qi], qa[qi + 1]
        query_filter = query.filter
        if type(query_filter) is TrueFilter:
            members = set(hit_oids[a:b])
            members.discard(query.oid)
        else:
            members = set()
            for pos in range(a, b):
                obj = objects[hit_list[pos]]
                if obj.oid != query.oid and query_filter.matches(obj.props):
                    members.add(obj.oid)
        results[query.qid] = frozenset(members)
    return results
