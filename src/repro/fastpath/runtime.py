"""Engine glue: drives the vectorized kernels inside the phase loop.

:class:`FastpathRuntime` owns the shared :class:`ObjectStateStore`, the
vectorized coverage index (installed onto the transport in place of the
dict-based one), and the batch evaluator, and implements the three hot
phases of :class:`~repro.core.system.MobiEyesSystem`:

- *movement*: array kinematics (or a custom scalar motion model followed by
  a whole-store sync), then the transport's step rollover.
- *reporting*: a vectorized cell-crossing scan picks the candidate objects
  (cell changed, or focal and therefore subject to the dead-reckoning
  check); only candidates run their scalar protocol reactions, strictly in
  ascending object-id order so mid-phase broadcasts interleave exactly as
  in the reference loop.  Non-candidates provably do nothing in the
  reference loop, so skipping them is unobservable.
- *evaluation*: one system-wide :class:`BatchEvaluator` pass.

The *delivery* phase is not vectorized: deferred envelopes (nonzero
modeled latency) drain through the transport's scalar handlers, and the
client reactions they trigger -- LQT installs, focal-state flips --
reach the batch evaluator through the same push-based ``attach`` hooks
the reporting phase uses, so a message that arrives late lands in the
arena exactly as if its handler had run inline.

The reporting scan picks dead-reckoning candidates from the system's
``focal_flags`` -- the client-side registry of who believes it has moving
queries -- rather than the server's FOT.  The two agree in fault-free
runs (``FocalRoleNotification`` transitions are synchronous), but lease
suspension removes an object from the FOT while its client still acts
focal; the reference loop drives clients off ``has_mq``, so the scan
must too.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.fastpath.coverage import VectorizedCoverageIndex
from repro.fastpath.evaluator import BatchEvaluator
from repro.fastpath.motion import VectorizedMotionModel
from repro.fastpath.oracle import exact_results_fast
from repro.fastpath.store import ObjectStateStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.query import MovingQuery, QueryId
    from repro.core.system import MobiEyesSystem
    from repro.mobility.model import ObjectId
    from repro.sim.clock import SimulationClock


class FastpathRuntime:
    """Vectorized phase implementations for one MobiEyes system."""

    def __init__(self, system: "MobiEyesSystem") -> None:
        self.system = system
        motion = system.motion
        if isinstance(motion, VectorizedMotionModel):
            self.store = motion.store
            self._sync_after_advance = False
        else:
            # A custom scalar motion model stays authoritative; mirror its
            # population into the store after every advance.
            self.store = ObjectStateStore(motion.objects)
            self._sync_after_advance = True
        np = self.store.np
        self.np = np
        self.coverage = VectorizedCoverageIndex(system.layout, system.grid, self.store)
        self.evaluator = BatchEvaluator(system.config, self.store)
        self.clients_in_order = [system.clients[oid] for oid in system._client_order]
        # From here on every LQT install/remove and focal-state refresh is
        # pushed to the evaluator instead of being polled per evaluation.
        self.evaluator.attach(self.clients_in_order)
        # Mirror of each client's `last_cell`, indexed by store row.  The
        # client attribute only changes inside `_handle_own_cell_change`,
        # which the reporting scan itself invokes, so the mirror cannot
        # drift.
        self.last_i = np.empty(self.store.n, dtype=np.int64)
        self.last_j = np.empty(self.store.n, dtype=np.int64)
        for row, obj in enumerate(self.store.objects):
            cell = system.clients[obj.oid].last_cell
            self.last_i[row] = cell[0]
            self.last_j[row] = cell[1]
        self.processing_seconds = 0.0

    # ------------------------------------------------------------- phases

    def movement_phase(self, clock: "SimulationClock") -> None:
        """Advance kinematics and roll the transport into the new step."""
        self.system.motion.advance(clock.step_hours, clock.now_hours)
        if self._sync_after_advance:
            self.store.sync_from_objects()
        # The vectorized coverage index reads the store directly; no
        # position list is materialized.
        self.system.transport.begin_step(clock.step, ())

    def reporting_phase(self, clock: "SimulationClock") -> None:
        """Run the scalar report logic for the objects that need it."""
        store = self.store
        np = self.np
        now = clock.now_hours
        changed = (store.cell_i != self.last_i) | (store.cell_j != self.last_j)
        candidates = set(store.oids[changed].tolist()) if changed.any() else set()
        candidates.update(self.system.focal_flags)
        if not candidates:
            return
        clients = self.system.clients
        row_of = store.row_of
        cell_i = store.cell_i
        cell_j = store.cell_j
        threshold = self.system.config.dead_reckoning_threshold
        for oid in sorted(candidates):
            client = clients[oid]
            row = row_of[oid]
            new_cell = (int(cell_i[row]), int(cell_j[row]))
            if new_cell != client.last_cell:
                client._handle_own_cell_change(new_cell, now)
                self.last_i[row] = new_cell[0]
                self.last_j[row] = new_cell[1]
            if client.has_mq:
                deviation = client.obj.pos.distance_to(client._relayed_state.predict(now))
                if deviation > threshold:
                    client._relay_motion_state(now)

    def evaluation_phase(self, clock: "SimulationClock") -> None:
        """One batched pass over every client's local query table."""
        started = time.perf_counter()
        self.evaluator.run(clock.now_hours)
        self.processing_seconds += time.perf_counter() - started

    # ------------------------------------------------------------ metrics

    def drain_processing_seconds(self) -> float:
        """Evaluation wall time accumulated since the last measurement."""
        spent = self.processing_seconds
        self.processing_seconds = 0.0
        return spent

    def measurement_counts(self) -> tuple[int, int, int, int, float]:
        """Per-step measurement sample: ``(lqt_total, evaluated,
        skipped_by_safe_period, skipped_by_grouping, processing_seconds)``.

        Replaces the reference engine's walk over every client: LQT sizes
        come from the evaluator's arena accounting, the evaluation counters
        from its system-wide aggregates, and only the (few) clients with
        static entries -- whose scalar path still bumps per-client stats --
        are visited and drained individually.
        """
        ev = self.evaluator
        lqt_total = ev.lqt_total()
        evaluated, skipped_sp, skipped_group = self.drain_eval_counts()
        for oid in ev._static_oids:
            # drain() also zeroes uplinks_sent and processing_seconds;
            # neither accumulates for static clients in fastpath mode (the
            # evaluator calls their scalar path directly), so the dataclass
            # method is as cheap as the old hand-zeroing and stays in sync
            # with any future ClientStats fields.
            c_eval, c_sp, c_group, _ = self.system.clients[oid].stats.drain()
            evaluated += c_eval
            skipped_sp += c_sp
            skipped_group += c_group
        return lqt_total, evaluated, skipped_sp, skipped_group, self.drain_processing_seconds()

    def drain_eval_counts(self) -> tuple[int, int, int]:
        """Aggregate (evaluated, skipped-by-safe-period, skipped-by-grouping)
        counts for the moving entries handled by the batch evaluator.

        The batch pass keeps these as system-wide totals instead of bumping
        10k per-client counters; the metrics layer sums per-client counters
        anyway, so folding the aggregates in at measurement time yields the
        same :class:`~repro.metrics.collectors.StepStats`.
        """
        ev = self.evaluator
        counts = (ev.evaluated_queries, ev.skipped_by_safe_period, ev.skipped_by_grouping)
        ev.evaluated_queries = 0
        ev.skipped_by_safe_period = 0
        ev.skipped_by_grouping = 0
        return counts

    def oracle_results(
        self, queries: "list[MovingQuery]"
    ) -> "dict[QueryId, frozenset[ObjectId]]":
        """Vectorized ground-truth evaluation on the current store state."""
        return exact_results_fast(self.coverage, queries, self.system.grid)
