"""Engine glue: drives the vectorized kernels inside the phase loop.

:class:`FastpathRuntime` owns the shared :class:`ObjectStateStore`, the
vectorized coverage index (installed onto the transport in place of the
dict-based one), and the batch evaluator, and implements the three hot
phases of :class:`~repro.core.system.MobiEyesSystem`:

- *movement*: array kinematics (or a custom scalar motion model followed by
  a whole-store sync), then the transport's step rollover.
- *reporting*: a vectorized cell-crossing scan picks the candidate objects
  (cell changed, or focal and therefore subject to the dead-reckoning
  check); only candidates run their scalar protocol reactions, strictly in
  ascending object-id order so mid-phase broadcasts interleave exactly as
  in the reference loop.  Non-candidates provably do nothing in the
  reference loop, so skipping them is unobservable.
- *evaluation*: one system-wide :class:`BatchEvaluator` pass.

The *delivery* phase is not vectorized: deferred envelopes (nonzero
modeled latency) drain through the transport's scalar handlers, and the
client reactions they trigger -- LQT installs, focal-state flips --
reach the batch evaluator through the same push-based ``attach`` hooks
the reporting phase uses, so a message that arrives late lands in the
arena exactly as if its handler had run inline.

Server-side parallelism composes transparently: when the coordinator
runs a pooled shard executor, the transport routes contiguous runs of
buffered result records through the executor's batch kernel
(fork / per-shard region / ordered barrier) instead of the per-record
scalar apply -- the engine phases above never notice, and both engines
produce bit-identical ledgers at any worker count (differentially
tested in ``tests/test_parallel_executor.py``).

The reporting scan picks dead-reckoning candidates from the system's
``focal_flags`` -- the client-side registry of who believes it has moving
queries -- rather than the server's FOT.  The two agree in fault-free
runs (``FocalRoleNotification`` transitions are synchronous), but lease
suspension removes an object from the FOT while its client still acts
focal; the reference loop drives clients off ``has_mq``, so the scan
must too.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.fastpath.coverage import VectorizedCoverageIndex
from repro.fastpath.evaluator import BatchEvaluator
from repro.fastpath.fanout import BroadcastFanout
from repro.fastpath.motion import VectorizedMotionModel
from repro.fastpath.oracle import exact_results_fast
from repro.fastpath.store import ObjectStateStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.query import MovingQuery, QueryId
    from repro.core.system import MobiEyesSystem
    from repro.mobility.model import ObjectId
    from repro.sim.clock import SimulationClock


class FastpathRuntime:
    """Vectorized phase implementations for one MobiEyes system."""

    def __init__(self, system: "MobiEyesSystem") -> None:
        self.system = system
        motion = system.motion
        if isinstance(motion, VectorizedMotionModel):
            self.store = motion.store
            self._sync_after_advance = False
        else:
            # A custom scalar motion model stays authoritative; mirror its
            # population into the store after every advance.
            self.store = ObjectStateStore(motion.objects)
            self._sync_after_advance = True
        np = self.store.np
        self.np = np
        self.coverage = VectorizedCoverageIndex(system.layout, system.grid, self.store)
        self.evaluator = BatchEvaluator(system.config, self.store)
        self.clients_in_order = [system.clients[oid] for oid in system._client_order]
        # From here on every LQT install/remove and focal-state refresh is
        # pushed to the evaluator instead of being polled per evaluation.
        self.evaluator.attach(self.clients_in_order)
        # Mirror of each client's `last_cell`, indexed by store row.  The
        # client attribute only changes inside `_handle_own_cell_change`,
        # which the reporting scan itself invokes, so the mirror cannot
        # drift.
        self.last_i = np.empty(self.store.n, dtype=np.int64)
        self.last_j = np.empty(self.store.n, dtype=np.int64)
        # Mirror of each client's relayed motion state, for the vectorized
        # dead-reckoning pre-filter; kept current through the client's
        # `_relayed_watcher` hook (fired on every `_set_relayed`).
        self.rel_x = np.empty(self.store.n, dtype=np.float64)
        self.rel_y = np.empty(self.store.n, dtype=np.float64)
        self.rel_vx = np.empty(self.store.n, dtype=np.float64)
        self.rel_vy = np.empty(self.store.n, dtype=np.float64)
        self.rel_rec = np.empty(self.store.n, dtype=np.float64)
        for row, obj in enumerate(self.store.objects):
            client = system.clients[obj.oid]
            cell = client.last_cell
            self.last_i[row] = cell[0]
            self.last_j[row] = cell[1]
            self._relayed_changed(obj.oid, client._relayed_state)
            client._relayed_watcher = self._relayed_changed
        # Bulk application of eligible server broadcasts; the transport
        # falls back to its per-receiver loop whenever the fan-out
        # declines (loss, reliability, tracing, latency, ...).
        self.fanout = BroadcastFanout(self)
        system.transport.fanout = self.fanout
        self.processing_seconds = 0.0

    def _relayed_changed(self, oid: "ObjectId", state) -> None:
        """Client hook: mirror a relayed-state update into the DR columns."""
        row = self.store.row_of[oid]
        pos = state.pos
        vel = state.vel
        self.rel_x[row] = pos.x
        self.rel_y[row] = pos.y
        self.rel_vx[row] = vel.x
        self.rel_vy[row] = vel.y
        self.rel_rec[row] = state.recorded_at

    # ------------------------------------------------------------- phases

    def movement_phase(self, clock: "SimulationClock") -> None:
        """Advance kinematics and roll the transport into the new step."""
        self.system.motion.advance(clock.step_hours, clock.now_hours)
        if self._sync_after_advance:
            self.store.sync_from_objects()
        # The vectorized coverage index reads the store directly; no
        # position list is materialized.
        self.system.transport.begin_step(clock.step, ())

    def reporting_phase(self, clock: "SimulationClock") -> None:
        """Run the scalar report logic for the objects that need it."""
        store = self.store
        np = self.np
        now = clock.now_hours
        changed = (store.cell_i != self.last_i) | (store.cell_j != self.last_j)
        candidates = set(store.oids[changed].tolist()) if changed.any() else set()
        focal = self.system.focal_flags
        if focal:
            # Dead-reckoning pre-filter: a focal candidate whose cell did
            # not change and whose phase-start deviation is within the
            # threshold is a provable no-op in the scalar loop, because its
            # relayed state cannot change before its own turn -- any
            # mid-phase `_set_relayed` (resync, motion-state request, its
            # own cell-change relay) installs a fresh snapshot whose
            # predicted position IS the current position, i.e. deviation
            # zero.  The array expression replays the scalar arithmetic
            # exactly: predict's `pos + vel * dt` and `math.hypot` (the
            # same libm hypot `np.hypot` dispatches to).
            dt = now - self.rel_rec
            dx = store.x - (self.rel_x + self.rel_vx * dt)
            dy = store.y - (self.rel_y + self.rel_vy * dt)
            deviating = np.hypot(dx, dy) > self.system.config.dead_reckoning_threshold
            candidates.update(focal.intersection(store.oids[deviating].tolist()))
        if not candidates:
            return
        clients = self.system.clients
        row_of = store.row_of
        cell_i = store.cell_i
        cell_j = store.cell_j
        threshold = self.system.config.dead_reckoning_threshold
        transport = self.system.transport
        buf = transport.report_buffer
        if buf is None:
            for oid in sorted(candidates):
                client = clients[oid]
                row = row_of[oid]
                new_cell = (int(cell_i[row]), int(cell_j[row]))
                if new_cell != client.last_cell:
                    # Mirror first: the handler sets `last_cell` as its
                    # first statement, so the broadcast fan-out sees the
                    # two in agreement even mid-handler.
                    self.last_i[row] = new_cell[0]
                    self.last_j[row] = new_cell[1]
                    client._handle_own_cell_change(new_cell, now)
                if client.has_mq:
                    deviation = client.obj.pos.distance_to(client._relayed_state.predict(now))
                    if deviation > threshold:
                        client._relay_motion_state(now)
            return
        # One report window per candidate (mirrors the reference engine's
        # per-client window): the candidate's sends are buffered and flush
        # before the next candidate runs.
        flush = transport.flush_reports
        for oid in sorted(candidates):
            client = clients[oid]
            row = row_of[oid]
            new_cell = (int(cell_i[row]), int(cell_j[row]))
            buf.depth = 1
            if new_cell != client.last_cell:
                self.last_i[row] = new_cell[0]
                self.last_j[row] = new_cell[1]
                client._handle_own_cell_change(new_cell, now)
            if client.has_mq:
                deviation = client.obj.pos.distance_to(client._relayed_state.predict(now))
                if deviation > threshold:
                    client._relay_motion_state(now)
            buf.depth = 0
            if buf.kind:
                flush(buf)

    def evaluation_phase(self, clock: "SimulationClock") -> None:
        """One batched pass over every client's local query table."""
        started = time.perf_counter()
        transport = self.system.transport
        buf = transport.report_buffer
        if buf is None:
            self.evaluator.run(clock.now_hours)
        else:
            buf.depth = 1
            try:
                self.evaluator.run(clock.now_hours)
            finally:
                buf.depth = 0
            if buf.kind:
                transport.flush_reports(buf)
        self.processing_seconds += time.perf_counter() - started

    # ------------------------------------------------------------ metrics

    def drain_processing_seconds(self) -> float:
        """Evaluation wall time accumulated since the last measurement."""
        spent = self.processing_seconds
        self.processing_seconds = 0.0
        return spent

    def measurement_counts(self) -> tuple[int, int, int, int, float]:
        """Per-step measurement sample: ``(lqt_total, evaluated,
        skipped_by_safe_period, skipped_by_grouping, processing_seconds)``.

        Replaces the reference engine's walk over every client: LQT sizes
        come from the evaluator's arena accounting, the evaluation counters
        from its system-wide aggregates, and only the (few) clients with
        static entries -- whose scalar path still bumps per-client stats --
        are visited and drained individually.
        """
        ev = self.evaluator
        lqt_total = ev.lqt_total()
        evaluated, skipped_sp, skipped_group = self.drain_eval_counts()
        for oid in ev._static_oids:
            # drain() also zeroes uplinks_sent and processing_seconds;
            # neither accumulates for static clients in fastpath mode (the
            # evaluator calls their scalar path directly), so the dataclass
            # method is as cheap as the old hand-zeroing and stays in sync
            # with any future ClientStats fields.
            c_eval, c_sp, c_group, _ = self.system.clients[oid].stats.drain()
            evaluated += c_eval
            skipped_sp += c_sp
            skipped_group += c_group
        return lqt_total, evaluated, skipped_sp, skipped_group, self.drain_processing_seconds()

    def drain_eval_counts(self) -> tuple[int, int, int]:
        """Aggregate (evaluated, skipped-by-safe-period, skipped-by-grouping)
        counts for the moving entries handled by the batch evaluator.

        The batch pass keeps these as system-wide totals instead of bumping
        10k per-client counters; the metrics layer sums per-client counters
        anyway, so folding the aggregates in at measurement time yields the
        same :class:`~repro.metrics.collectors.StepStats`.
        """
        ev = self.evaluator
        counts = (ev.evaluated_queries, ev.skipped_by_safe_period, ev.skipped_by_grouping)
        ev.evaluated_queries = 0
        ev.skipped_by_safe_period = 0
        ev.skipped_by_grouping = 0
        return counts

    def oracle_results(
        self, queries: "list[MovingQuery]"
    ) -> "dict[QueryId, frozenset[ObjectId]]":
        """Vectorized ground-truth evaluation on the current store state."""
        return exact_results_fast(self.coverage, queries, self.system.grid)
