"""Structure-of-arrays mirror of the moving-object population.

The protocol layer keeps :class:`~repro.mobility.model.MovingObject`
instances authoritative (clients read ``obj.pos`` when building messages),
while the store mirrors the kinematic state in contiguous arrays for the
vectorized kernels.  The mirror is maintained incrementally by the
vectorized motion model; when a custom (scalar) motion model drives the
population, :meth:`ObjectStateStore.sync_from_objects` refreshes it whole.

Grid-cell and lattice-tile indices are derived arrays recomputed once per
step (:meth:`refresh_derived`); their arithmetic mirrors
:meth:`repro.grid.Grid.cell_index` and
:meth:`repro.network.basestation.BaseStationLayout.tile_of_point` exactly
(same IEEE division, same truncation, same clamping), so a vectorized cell
index always equals the scalar one.
"""

from __future__ import annotations

from typing import Sequence

from repro.fastpath import require_numpy
from repro.grid import Grid
from repro.mobility.model import MovingObject, ObjectId
from repro.network.basestation import BaseStationLayout


class ObjectStateStore:
    """SoA arrays for x / y / vx / vy / max_speed plus cell and tile ids."""

    def __init__(self, objects: Sequence[MovingObject]) -> None:
        np = require_numpy()
        self.np = np
        self.objects: list[MovingObject] = list(objects)
        n = len(self.objects)
        self.n = n
        self.oids = np.fromiter((o.oid for o in self.objects), dtype=np.int64, count=n)
        self.row_of: dict[ObjectId, int] = {o.oid: k for k, o in enumerate(self.objects)}
        self.x = np.empty(n, dtype=np.float64)
        self.y = np.empty(n, dtype=np.float64)
        self.vx = np.empty(n, dtype=np.float64)
        self.vy = np.empty(n, dtype=np.float64)
        self.max_speed = np.fromiter(
            (o.max_speed for o in self.objects), dtype=np.float64, count=n
        )
        self.cell_i = np.zeros(n, dtype=np.int64)
        self.cell_j = np.zeros(n, dtype=np.int64)
        self.tile_i = np.zeros(n, dtype=np.int64)
        self.tile_j = np.zeros(n, dtype=np.int64)
        self.sync_from_objects()

    # ------------------------------------------------------------- syncing

    def sync_from_objects(self) -> None:
        """Refresh the kinematic arrays from the MovingObject instances."""
        for k, obj in enumerate(self.objects):
            pos = obj.pos
            vel = obj.vel
            self.x[k] = pos.x
            self.y[k] = pos.y
            self.vx[k] = vel.x
            self.vy[k] = vel.y

    def sync_velocity_row(self, row: int) -> None:
        """Refresh one object's velocity (after a scalar re-assignment)."""
        vel = self.objects[row].vel
        self.vx[row] = vel.x
        self.vy[row] = vel.y

    # ------------------------------------------------------- derived state

    def refresh_derived(self, grid: Grid, layout: BaseStationLayout) -> None:
        """Recompute the grid-cell and lattice-tile index arrays.

        Mirrors the scalar mappings exactly:

        - ``Grid.cell_index``: ``min(int((x - lx) / alpha), n_cols - 1)``
          (positions are inside the UoD, so the truncation equals ``int``).
        - ``BaseStationLayout.tile_of_point``: same with the tile pitch and
          an additional lower clamp at 0.
        """
        np = self.np
        uod = grid.uod
        fx = (self.x - uod.lx) / grid.alpha
        fy = (self.y - uod.ly) / grid.alpha
        np.minimum(fx.astype(np.int64), grid.n_cols - 1, out=self.cell_i)
        np.minimum(fy.astype(np.int64), grid.n_rows - 1, out=self.cell_j)
        tx = (self.x - uod.lx) / layout.side_length
        ty = (self.y - uod.ly) / layout.side_length
        np.clip(tx.astype(np.int64), 0, layout.tile_cols - 1, out=self.tile_i)
        np.clip(ty.astype(np.int64), 0, layout.tile_rows - 1, out=self.tile_j)
