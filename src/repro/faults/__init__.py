"""Fault injection and reliability: the part the paper hand-waves.

The paper assumes every protocol exchange completes inside the 30-second
step.  This package drops that assumption and models what a real cellular
deployment faces:

- :mod:`~repro.faults.channels` -- loss processes beyond i.i.d.:
  Gilbert-Elliott burst loss next to plain Bernoulli.
- :mod:`~repro.faults.schedule` -- scriptable deterministic fault
  schedules: per-object disconnection windows, base-station outages,
  and server-shard crash windows.
- :mod:`~repro.faults.injector` -- :class:`FaultInjector`, a drop-in for
  :class:`~repro.network.loss.LossModel` that combines schedule faults
  with a channel and does *not* exempt reliable messages.
- :mod:`~repro.faults.reliability` -- the ack/retransmit protocol that
  earns reliability instead: bounded retries in sub-step rounds, per
  message sequence numbers, every attempt and every ack charged to the
  :class:`~repro.network.messaging.MessageLedger`.
- :mod:`~repro.faults.policy` -- the knobs (retry budget, heartbeat
  cadence, soft-state lease length).
- :mod:`~repro.faults.chaos` -- a seeded chaos harness measuring how fast
  query results re-converge after each fault clears (imported lazily by
  the CLI; not re-exported here to keep the import graph acyclic).

Passing a :class:`FaultInjector` as ``MobiEyesSystem(..., loss=...)``
activates the whole stack: the transport routes reliable messages through
the ack/retransmit layer, clients heartbeat and resync on sequence gaps,
and the server expires soft-state leases for focal objects it no longer
hears from.
"""

from repro.faults.channels import BernoulliChannel, GilbertElliottChannel
from repro.faults.injector import FaultInjector
from repro.faults.policy import ReliabilityPolicy
from repro.faults.reliability import ReliabilityLayer
from repro.faults.schedule import CrashWindow, DisconnectWindow, FaultSchedule, StationOutage

__all__ = [
    "BernoulliChannel",
    "CrashWindow",
    "DisconnectWindow",
    "FaultInjector",
    "FaultSchedule",
    "GilbertElliottChannel",
    "ReliabilityLayer",
    "ReliabilityPolicy",
    "StationOutage",
]
