"""Loss channels: per-roll stochastic processes deciding packet drops.

A channel answers one question -- "is this transmission lost?" -- and may
carry state between rolls.  :class:`BernoulliChannel` reproduces the
independent loss of :class:`~repro.network.loss.LossModel`;
:class:`GilbertElliottChannel` is the classic two-state Markov burst-loss
model (a *good* state with rare drops and a *bad* state where most
transmissions die), which is how cellular links actually fail: in bursts,
not independently.

Determinism: every roll draws from the channel's seeded rng in call
order, so two runs with the same seed (and the two simulation engines,
which issue identical message sequences) see identical drop patterns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.rng import SimulationRng


@dataclass
class BernoulliChannel:
    """Independent loss with a fixed rate; stateless between rolls."""

    rng: SimulationRng
    rate: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {self.rate}")

    def roll(self) -> bool:
        """Whether this transmission is lost (consumes rng only if rate > 0)."""
        return self.rate > 0.0 and self.rng.random() < self.rate


@dataclass
class GilbertElliottChannel:
    """Two-state Markov burst-loss channel (Gilbert-Elliott).

    Each roll first moves the state machine (good -> bad with probability
    ``p_good_to_bad``, bad -> good with ``p_bad_to_good``), then drops the
    transmission with the state's loss rate.  The stationary loss average
    is ``pi_bad * loss_bad + (1 - pi_bad) * loss_good`` with
    ``pi_bad = p_good_to_bad / (p_good_to_bad + p_bad_to_good)``.
    """

    rng: SimulationRng
    p_good_to_bad: float = 0.05
    p_bad_to_good: float = 0.4
    loss_good: float = 0.01
    loss_bad: float = 0.6
    bad: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        for name in ("p_good_to_bad", "p_bad_to_good", "loss_good", "loss_bad"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    @property
    def mean_loss_rate(self) -> float:
        """The stationary average loss rate of the channel."""
        denom = self.p_good_to_bad + self.p_bad_to_good
        pi_bad = self.p_good_to_bad / denom if denom > 0 else 0.0
        return pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good

    def roll(self) -> bool:
        """Advance the state machine, then decide this transmission's fate."""
        if self.bad:
            if self.rng.random() < self.p_bad_to_good:
                self.bad = False
        else:
            if self.rng.random() < self.p_good_to_bad:
                self.bad = True
        rate = self.loss_bad if self.bad else self.loss_good
        return rate > 0.0 and self.rng.random() < rate
