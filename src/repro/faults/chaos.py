"""Chaos harness: run MobiEyes under a scripted fault storm and grade it.

The harness builds a Table-1 workload, attaches a
:class:`~repro.faults.injector.FaultInjector` with a canonical schedule
(one base-station outage over the center of the universe of discourse
plus rolling per-object disconnections, optionally topped with channel
loss), runs the system step by step, and compares the protocol's results
against the exact oracle after every step.

The report is a plain JSON-safe dict and is bit-identical across runs
with the same arguments -- with one carve-out: the ``shard_loads`` /
``load_balance`` blocks include wall-clock seconds views (charged shard
time, ``imbalance_seconds``, critical min/max), which vary run to run.
Everything the differential checks grade (``result_hash``, ``drops``,
``message_counts``, ``per_step``) contains no wall-clock values and the
two engines produce it identically apart from the ``engine`` field.

Convergence metrics:

- ``reconvergence``: for each fault window, how many steps after the
  window closed the system needed to recover exactly (``null`` if it
  never did within the run).
- ``staleness_weighted_error``: mean over steps of the symmetric error
  fraction weighted by how many consecutive steps the system had already
  been wrong -- long-lived staleness is punished quadratically, brief
  blips barely register.

Recovery basis: with zero modeled latency, "recovered" means matching
the exact oracle (fault-free runs match it every step).  With nonzero
latency the oracle is an unfair yardstick -- even a fault-free run lags
it by the delivery pipeline's depth -- so the harness runs a fault-free
*twin* with the identical latency configuration alongside and grades
recovery as exact realignment with the twin's results.  The twin
comparison is exact only for deterministic delays (``latency_jitter``
0): jitter rolls are consumed per enqueued message, so a faulted run and
its twin draw different delays and never bit-realign.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

from repro.core import MobiEyesConfig, MobiEyesSystem
from repro.faults.channels import BernoulliChannel, GilbertElliottChannel
from repro.faults.injector import FaultInjector
from repro.faults.policy import ReliabilityPolicy
from repro.faults.schedule import CrashWindow, DisconnectWindow, FaultSchedule, StationOutage
from repro.grid import Grid
from repro.network.basestation import BaseStationLayout
from repro.sim.rng import SimulationRng
from repro.workload import generate_workload, paper_defaults

DISCONNECT_EVERY = 7  # every 7th object gets a disconnection window


def canonical_schedule(steps: int, oids: list, layout: BaseStationLayout, uod) -> FaultSchedule:
    """The standard chaos script, scaled to the run length.

    One outage of the base station serving the center of the universe of
    discourse (where object density is highest), plus a disconnection
    window for every ``DISCONNECT_EVERY``-th object.  Both windows close
    well before the run ends so reconvergence is observable.
    """
    center_bsid = layout.station_at_tile(layout.tile_of_point(uod.center)).bsid
    outage_start = max(1, steps // 4)
    outage_len = min(20, max(2, steps // 3))
    disc_start = max(1, steps // 5)
    disc_len = min(10, max(2, steps // 4))
    disconnects = tuple(
        DisconnectWindow(oid=oid, start=disc_start, end=disc_start + disc_len)
        for oid in sorted(oids)
        if oid % DISCONNECT_EVERY == 0
    )
    outages = (StationOutage(bsid=center_bsid, start=outage_start, end=outage_start + outage_len),)
    return FaultSchedule(disconnects=disconnects, outages=outages)


def canonical_rebalance_schedule(
    steps: int, shards: int, crash_start: int | None = None, crash_end: int | None = None
) -> tuple[tuple[int, int, int, int], ...]:
    """Fixed repartition triggers that deliberately race the fault windows.

    One column moves right between the first shard pair while the rolling
    disconnections are open, and moves back while the station outage is
    live (directive downlinks through the dead station are dropped, so
    clients under the outage keep routing with a stale epoch until the
    resync).  With a crash window (``crash_start``/``crash_end``), two
    more triggers bracket it on the *crashed* shard pair: one lands while
    the shard's soft state is erased -- recovery must rebuild against the
    post-move boundaries -- and one fires right after recovery completes.
    Steps land strictly inside the run so every move is observable.
    """
    disc_start = max(1, steps // 5)
    outage_start = max(1, steps // 4)
    ops = [
        (disc_start + 1, 0, 1, 1),
        (outage_start + 2, 1, 0, 1),
    ]
    if crash_start is not None and crash_end is not None:
        hi = shards - 1
        ops.append((crash_start + 1, hi - 1, hi, 1))
        ops.append((crash_end + 1, hi, hi - 1, 1))
    return tuple(sorted(op for op in ops if op[0] < steps))


def _make_channel(rng: SimulationRng, rate: float, burst: bool):
    """A loss channel with mean rate ``rate`` (None when rate is zero)."""
    if rate <= 0.0:
        return None
    if not burst:
        return BernoulliChannel(rng, rate=rate)
    # Gilbert-Elliott with a 10% stationary bad fraction and a clean good
    # state, parameterized so the stationary mean equals ``rate``.
    return GilbertElliottChannel(
        rng,
        p_good_to_bad=0.05,
        p_bad_to_good=0.45,
        loss_good=0.0,
        loss_bad=min(1.0, 10.0 * rate),
    )


def run_chaos(
    engine: str = "reference",
    steps: int = 40,
    scale: float = 0.02,
    seed: int = 7,
    uplink_loss: float = 0.0,
    downlink_loss: float = 0.0,
    burst: bool = False,
    policy: ReliabilityPolicy | None = None,
    shards: int = 1,
    uplink_latency: int = 0,
    downlink_latency: int = 0,
    latency_jitter: int = 0,
    workers: int = 0,
    executor: str = "thread",
    crash: bool = False,
    checkpoint_every: int = 0,
    rebalance: bool = False,
) -> dict:
    """Run one chaos scenario and return the JSON-safe report.

    With ``crash=True`` (requires ``shards >= 2``) the schedule gains a
    mid-run crash window on the last shard: the shard's soft state is
    erased at the window start and rebuilt from the system's last
    periodic checkpoint (cadence ``checkpoint_every``, defaulted to
    ``max(2, steps // 8)``) at the window end, followed by a grid-wide
    client resync.  Crash runs are always graded against the fault-free
    lockstep twin, even at zero latency.

    With ``rebalance=True`` (requires ``shards >= 2``) the run applies
    :func:`canonical_rebalance_schedule`: fixed repartition triggers
    placed inside the fault windows (and, with ``crash``, bracketing the
    crash window), so boundary migration races outages, disconnections,
    and shard recovery.  The grade stays the fault-free twin -- and the
    twin deliberately does *not* rebalance, which is the stronger check:
    reconvergence proves repartitioning moved load without ever moving
    results, even mid-fault.
    """
    if crash and shards < 2:
        raise ValueError("crash injection requires shards >= 2 (a shard must die)")
    if rebalance and shards < 2:
        raise ValueError("rebalancing requires shards >= 2 (a boundary must exist)")
    params = paper_defaults().scaled(scale)
    rng = SimulationRng(seed)
    workload = generate_workload(params, rng.fork(1))
    if crash and checkpoint_every <= 0:
        checkpoint_every = max(2, steps // 8)
    crash_start = crash_end = None
    if crash:
        # The window opens only after the first cadence checkpoint exists
        # and closes with enough run left to observe reconvergence.
        crash_start = max(checkpoint_every + 1, steps // 3)
        crash_end = crash_start + min(8, max(2, steps // 5))
    rebalance_schedule = (
        canonical_rebalance_schedule(steps, shards, crash_start, crash_end)
        if rebalance
        else ()
    )
    config = MobiEyesConfig(
        uod=params.uod,
        alpha=params.alpha,
        step_seconds=params.time_step_seconds,
        base_station_side=params.base_station_side,
        engine=engine,
        shards=shards,
        shard_workers=workers if shards > 1 else 0,
        shard_executor=executor,
        uplink_latency_steps=uplink_latency,
        downlink_latency_steps=downlink_latency,
        latency_jitter_steps=latency_jitter,
        latency_seed=seed,
        checkpoint_every_steps=checkpoint_every if crash else 0,
        rebalance_schedule=rebalance_schedule,
    )
    layout = BaseStationLayout(Grid(params.uod, params.alpha), params.base_station_side)
    schedule = canonical_schedule(steps, [obj.oid for obj in workload.objects], layout, params.uod)
    if crash:
        schedule = dataclasses.replace(
            schedule,
            crashes=(CrashWindow(shard=shards - 1, start=crash_start, end=crash_end),),
        )
    channel_rng = rng.fork(3)
    injector = FaultInjector(
        channel_rng,
        schedule=schedule,
        policy=policy if policy is not None else ReliabilityPolicy(),
    )
    system = MobiEyesSystem(
        config,
        list(workload.objects),
        rng.fork(2),
        velocity_changes_per_step=params.velocity_changes_per_step,
        loss=injector,
    )
    # Everything past construction runs under try/finally: a raising
    # step (or report assembly) must still tear down the shard
    # executors of both the system and its lockstep twin.
    twin = None
    try:
        system.install_queries(workload.query_specs)
        # Channels are armed only after deployment: installation happens on a
        # healthy network (faults start at step >= 1 anyway), so a burst that
        # would strand the install round trip cannot abort the scenario.
        injector.uplink_channel = _make_channel(channel_rng, uplink_loss, burst)
        injector.downlink_channel = _make_channel(channel_rng, downlink_loss, burst)

        # Recovery yardstick under latency: a fault-free twin with the same
        # latency pipeline (motion is identical -- faults never touch the
        # motion rng), stepped in lockstep.  Crash runs always grade against
        # the twin: recovery replays a checkpoint, and only exact realignment
        # with the fault-free run proves the rebuilt shard converged.
        latency_on = bool(uplink_latency or downlink_latency or latency_jitter)
        twin = None
        if latency_on or crash or rebalance:
            twin_rng = SimulationRng(seed)
            twin_workload = generate_workload(params, twin_rng.fork(1))
            twin = MobiEyesSystem(
                # The fault-free twin needs no recovery basis (skip its
                # cadence) and no boundary moves: grading the rebalanced run
                # against a static-stripes twin proves migration never moved
                # results.
                dataclasses.replace(config, checkpoint_every_steps=0, rebalance_schedule=()),
                list(twin_workload.objects),
                twin_rng.fork(2),
                velocity_changes_per_step=params.velocity_changes_per_step,
            )
            twin.install_queries(twin_workload.query_specs)

        sym_fracs: list[float] = []
        sym_counts: list[int] = []
        missing_fracs: list[float] = []
        recovery_counts: list[int] = []
        for _ in range(steps):
            system.step()
            results = system.results()
            oracle = system.oracle_results()
            diff = 0
            miss = 0
            total = 0
            for qid in sorted(oracle):
                truth = oracle[qid]
                got = results.get(qid, frozenset())
                total += len(truth)
                miss += len(truth - got)
                diff += len(truth ^ got)
            denom = max(1, total)
            sym_counts.append(diff)
            sym_fracs.append(diff / denom)
            missing_fracs.append(miss / denom)
            if twin is not None:
                twin.step()
                twin_results = twin.results()
                recovery_counts.append(
                    sum(
                        len(
                            frozenset(results.get(qid, frozenset()))
                            ^ frozenset(twin_results.get(qid, frozenset()))
                        )
                        for qid in set(results) | set(twin_results)
                    )
                )
            else:
                recovery_counts.append(diff)

        # Steps-to-reconverge, measured from each fault window's end to the
        # first step at which the system matches the oracle exactly.
        window_ends = sorted(
            {w.end for w in schedule.disconnects}
            | {o.end for o in schedule.outages}
            | {c.end for c in schedule.crashes}
        )
        reconvergence = []
        for end in window_ends:
            settled = None
            for step in range(end, steps + 1):
                if recovery_counts[step - 1] == 0:
                    settled = step - end
                    break
            reconvergence.append({"window_end": end, "steps_to_reconverge": settled})
        if reconvergence:
            converged = all(r["steps_to_reconverge"] is not None for r in reconvergence)
        else:
            converged = recovery_counts[-1] == 0 if recovery_counts else True

        age = 0
        weighted = 0.0
        for frac in sym_fracs:
            age = age + 1 if frac > 0 else 0
            weighted += frac * age
        staleness_weighted = weighted / max(1, steps)

        results_canonical = {
            str(qid): sorted(members) for qid, members in sorted(system.results().items())
        }
        result_hash = hashlib.sha256(
            json.dumps(results_canonical, sort_keys=True).encode()
        ).hexdigest()

        ledger = system.ledger
        reliability = system.transport.reliability
        # Per-shard load split (satellite of the balance report in bench).
        # The seconds views (charged wall time, imbalance_seconds, critical
        # min/max) are the docstring's bit-identity carve-out: they vary run
        # to run and the differential checks never grade them.
        shard_balance = None
        shard_loads = None
        if shards > 1:
            from repro.fastpath.bench import load_balance

            rows = system.server.shard_loads()
            balance = load_balance(rows)
            shard_loads = [
                {k: (round(v, 4) if k == "seconds" else v) for k, v in row.items()} for row in rows
            ]
            shard_balance = dict(balance)
        rebalance_report = None
        if rebalance:
            partitioner = system.server.partitioner
            rebalance_report = {
                "schedule": [list(op) for op in rebalance_schedule],
                "log": list(system.rebalance_log),
                "partition_bounds": list(partitioner.bounds),
                "partition_epoch": partitioner.epoch,
                "stale_epoch_reroutes": system.transport.stale_epoch_reroutes,
            }
        crash_report = None
        if crash:
            crash_report = {
                "windows": [
                    {"shard": c.shard, "start": c.start, "end": c.end} for c in schedule.crashes
                ],
                "checkpoint_every": checkpoint_every,
                "checkpoints_taken": system._checkpoints_taken,
            }
        return {
            "engine": engine,
            "seed": seed,
            "steps": steps,
            "scale": scale,
            "shards": shards,
            "workers": workers if shards > 1 else 0,
            "objects": params.num_objects,
            "queries": params.num_queries,
            "channels": {
                "uplink_loss": uplink_loss,
                "downlink_loss": downlink_loss,
                "burst": burst,
            },
            "latency": {
                "uplink_steps": uplink_latency,
                "downlink_steps": downlink_latency,
                "jitter_steps": latency_jitter,
                "pending_at_end": system.transport.pending_count(),
            },
            "schedule": schedule.describe(),
            "crash": crash_report,
            "rebalance": rebalance_report,
            "shard_loads": shard_loads,
            "load_balance": shard_balance,
            "per_step": {
                "symmetric_error": [round(v, 9) for v in sym_fracs],
                "missing_fraction": [round(v, 9) for v in missing_fracs],
                "twin_divergence": recovery_counts if twin is not None else None,
            },
            "recovery_basis": "twin" if twin is not None else "oracle",
            "final_symmetric_error": round(sym_fracs[-1], 9) if sym_fracs else 0.0,
            "reconvergence": reconvergence,
            "converged": converged,
            "staleness_weighted_error": round(staleness_weighted, 9),
            "message_counts": {
                key: int(ledger.counts_by_type[key]) for key in sorted(ledger.counts_by_type)
            },
            "drops": injector.counters(),
            "reliability": reliability.counters(),
            "result_hash": result_hash,
        }
    finally:
        system.close()
        if twin is not None:
            twin.close()
