"""The fault injector: a loss model that tells the truth.

:class:`FaultInjector` is a drop-in for
:class:`~repro.network.loss.LossModel` on the transport's ``loss`` seam,
with three differences:

- besides a stochastic channel it applies *scheduled* faults: an offline
  object's traffic drops in both directions, and any message whose
  sender's or receiver's serving base station is dead drops too;
- it does **not** exempt reliable messages -- attaching an injector makes
  the transport route them through the explicit ack/retransmit layer
  (:mod:`repro.faults.reliability`) instead, whose retries it also rolls;
- drops are counted per cause, so a chaos report can attribute loss to
  disconnections, outages, or the channel.

The serving station of an object is the station of its lattice tile (the
same choice :meth:`~repro.network.basestation.BaseStationLayout
.station_covering` makes for uplinks); downlink reachability is modeled
through the same station, a deliberate simplification that keeps the
drop decision a pure function of (schedule, object position).
"""

from __future__ import annotations

from collections import Counter
from typing import Callable

from repro.faults.channels import BernoulliChannel, GilbertElliottChannel
from repro.faults.policy import ReliabilityPolicy
from repro.faults.schedule import FaultSchedule
from repro.geometry import Point
from repro.mobility.model import ObjectId
from repro.network.basestation import BaseStationLayout
from repro.sim.rng import SimulationRng

Channel = BernoulliChannel | GilbertElliottChannel
Locator = Callable[[ObjectId], Point]


class FaultInjector:
    """Schedule-driven and channel-driven loss with per-cause accounting.

    The ``dropped_uplinks`` / ``dropped_deliveries`` counters mirror
    :class:`~repro.network.loss.LossModel` so existing instrumentation
    keeps working; ``drops_by_cause`` splits them into ``disconnect``,
    ``outage``, and ``channel``.
    """

    def __init__(
        self,
        rng: SimulationRng,
        schedule: FaultSchedule | None = None,
        policy: ReliabilityPolicy | None = None,
        uplink_channel: Channel | None = None,
        downlink_channel: Channel | None = None,
    ) -> None:
        self.rng = rng
        self.schedule = schedule if schedule is not None else FaultSchedule()
        self.policy = policy if policy is not None else ReliabilityPolicy()
        self.uplink_channel = uplink_channel
        self.downlink_channel = downlink_channel
        self.dropped_uplinks = 0
        self.dropped_deliveries = 0
        self.drops_by_cause: Counter = Counter()
        self._offline: frozenset[ObjectId] = frozenset()
        self._dead: frozenset[int] = frozenset()
        self._crashed: frozenset[int] = frozenset()
        self._layout: BaseStationLayout | None = None
        self._locator: Locator | None = None
        self._shard_router: Callable[[object], int] | None = None

    # ------------------------------------------------------------- wiring

    def bind(self, layout: BaseStationLayout, locator: Locator) -> None:
        """Attach the station layout and an ``oid -> position`` resolver
        (done by :class:`~repro.core.system.MobiEyesSystem`)."""
        self._layout = layout
        self._locator = locator

    def bind_shards(self, router: Callable[[object], int]) -> None:
        """Attach the ``message -> shard id`` router so crash windows can
        drop uplinks addressed to a dead shard (done by the system when a
        sharded server is built)."""
        self._shard_router = router

    def begin_step(self, step: int) -> None:
        """Activate the schedule windows covering ``step``."""
        self._offline, self._dead = self.schedule.at(step)
        self._crashed = self.schedule.crashed(step)

    # ---------------------------------------------------------- predicates

    def offline(self, oid: ObjectId) -> bool:
        """Whether the object is inside an active disconnection window."""
        return oid in self._offline

    def station_dead_for(self, oid: ObjectId) -> bool:
        """Whether the object's serving base station is currently dead."""
        if not self._dead or self._layout is None or self._locator is None:
            return False
        tile = self._layout.tile_of_point(self._locator(oid))
        return self._layout.station_at_tile(tile).bsid in self._dead

    def carrier_lost(self, oid: ObjectId) -> bool:
        """Whether the object can locally tell it has no connectivity.

        Scheduled faults are carrier-level: a disconnected device or one
        whose serving station is down sees no signal, and real radios
        detect that without any round trip.  Channel loss is invisible
        here -- a device cannot sense that an individual packet died.
        """
        return self.offline(oid) or self.station_dead_for(oid)

    def _fault_cause(self, oid: ObjectId | None, channel: Channel | None) -> str | None:
        if oid is not None:
            if oid in self._offline:
                return "disconnect"
            if self.station_dead_for(oid):
                return "outage"
        if channel is not None and channel.roll():
            return "channel"
        return None

    # ------------------------------------------------------- loss interface

    def drop_uplink(self, message: object) -> bool:
        """Whether this object -> server message is lost in transit.

        Checked in priority order: disconnection, station outage, crashed
        server shard, then the stochastic channel.  The crash check routes
        the message with the bound shard router and consumes no RNG, so a
        crash-free run's channel stream is bit-identical with or without
        crash windows in the schedule.
        """
        oid = getattr(message, "oid", None)
        if oid is not None:
            if oid in self._offline:
                cause = "disconnect"
            elif self.station_dead_for(oid):
                cause = "outage"
            else:
                cause = None
        else:
            cause = None
        if (
            cause is None
            and self._crashed
            and self._shard_router is not None
            and self._shard_router(message) in self._crashed
        ):
            cause = "crash"
        if cause is None and self.uplink_channel is not None and self.uplink_channel.roll():
            cause = "channel"
        if cause is None:
            return False
        self.dropped_uplinks += 1
        self.drops_by_cause[f"uplink-{cause}"] += 1
        return True

    def drop_delivery(self, message: object, receiver: ObjectId | None = None) -> bool:
        """Whether one receiver misses this downlink message."""
        cause = self._fault_cause(receiver, self.downlink_channel)
        if cause is None:
            return False
        self.dropped_deliveries += 1
        self.drops_by_cause[f"downlink-{cause}"] += 1
        return True

    # ---------------------------------------------------------- inspection

    def counters(self) -> dict:
        """A JSON-friendly snapshot of the drop accounting."""
        return {
            "dropped_uplinks": self.dropped_uplinks,
            "dropped_deliveries": self.dropped_deliveries,
            "by_cause": {key: self.drops_by_cause[key] for key in sorted(self.drops_by_cause)},
        }
