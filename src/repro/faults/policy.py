"""Reliability protocol parameters.

All durations are measured in simulation steps (the paper's 30-second
intervals).  The retry budget's meaning depends on the transport's
latency mode:

- With zero modeled latency (the default), ``max_attempts`` counts
  *sub-step rounds*: synchronous within-step delivery means a
  retransmission and its ack both complete inside the step that sent the
  original, so retries are back-to-back rounds of the same step.
- With a nonzero :class:`~repro.network.latency.LatencyModel`, each
  attempt occupies a real round trip: the sender arms a retransmit timer
  to the model's worst-case RTT and re-sends from the delivery phase of
  a *later* step, up to the same ``max_attempts`` wire transmissions.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class ReliabilityPolicy:
    """Knobs for the ack/retransmit, heartbeat, and lease machinery.

    Attributes:
        max_attempts: wire transmissions per reliable message (1 original
            + up to ``max_attempts - 1`` retransmissions) before the
            sender gives up for this step.
        heartbeat_steps: an object sends a reliable heartbeat after this
            many steps without an acknowledged uplink, so partitions are
            detected within a bounded delay even for chatty objects whose
            ordinary (unacked) traffic never probes the channel.
        lease_steps: the server suspends the queries of a focal object it
            has not heard from for more than this many steps (soft-state
            expiry); the next uplink from the object reinstates them.
        resync_on_gap: whether a gap in the per-object downlink sequence
            stream triggers a client resync (the recovery protocol).
    """

    max_attempts: int = 4
    heartbeat_steps: int = 5
    lease_steps: int = 12
    resync_on_gap: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.heartbeat_steps < 1:
            raise ValueError(f"heartbeat_steps must be >= 1, got {self.heartbeat_steps}")
        if self.lease_steps < 1:
            raise ValueError(f"lease_steps must be >= 1, got {self.lease_steps}")
