"""Ack/retransmit delivery for reliable messages.

The plain :class:`~repro.network.loss.LossModel` hand-waves reliability
by exempting control-plane messages from loss.  This layer earns it: a
reliable message is (re)transmitted up to ``policy.max_attempts`` times
in back-to-back sub-step rounds, the receiver acknowledges each copy it
hears with an :class:`~repro.core.messages.Ack`, and the exchange
succeeds only when the *sender* sees an ack.  Every transmission attempt
and every ack is charged to the :class:`~repro.network.messaging
.MessageLedger`, so under faults the message/energy figures include the
price of reliability -- nothing is free.

Sequencing and dedup: each reliable uplink gets a per-sender sequence
number and each reliable downlink occupies one slot in the receiver's
downlink sequence stream (the same stream unreliable deliveries bump, so
a reliable message that exhausts its retries leaves a detectable gap).
The receiver processes only the first copy that arrives -- duplicates
caused by a lost ack are suppressed, which is what the echoed sequence
number buys in a real stack.

Timeouts are implicit: within-step delivery is synchronous, so "no ack
came back" is known immediately and the retry happens in the same step
(see :mod:`repro.faults.policy` on sub-step rounds).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.messages import Ack
from repro.faults.injector import FaultInjector
from repro.mobility.model import ObjectId

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.transport import SimulatedTransport


class ReliabilityLayer:
    """Bounded-retry delivery of reliable messages over a fault injector."""

    def __init__(self, transport: "SimulatedTransport", injector: FaultInjector) -> None:
        self.transport = transport
        self.injector = injector
        self.policy = injector.policy
        self.retransmissions = 0
        self.acks_sent = 0
        self.ack_drops = 0
        self.failures = 0
        self.duplicates_suppressed = 0
        # Keyed by (sender, server endpoint): under a sharded server each
        # shard is its own ack endpoint, so every (object, shard) pair gets
        # a private gap-free sequence stream.  The monolith's endpoint is
        # always 0, collapsing this to the old per-sender stream.
        self._uplink_seq: dict[tuple[ObjectId, int], int] = {}

    # ------------------------------------------------------------- uplink

    def reliable_uplink(self, message: object) -> bool:
        """Deliver an object -> server message with retries; True if acked."""
        transport = self.transport
        sender = getattr(message, "oid", None)
        bits = message.bits  # type: ignore[attr-defined]
        name = type(message).__name__
        stream = (sender, transport.uplink_endpoint(message))
        seq = self._uplink_seq.get(stream, 0) + 1
        self._uplink_seq[stream] = seq
        ack = Ack(oid=sender, seq=seq)
        delivered = False
        for attempt in range(self.policy.max_attempts):
            if attempt:
                self.retransmissions += 1
            transport.ledger.record_uplink(name, bits, sender=sender)
            if transport.trace is not None:
                transport.trace.record(transport.step, "uplink", type=name, oid=sender)
            if self.injector.drop_uplink(message):
                continue
            if delivered:
                self.duplicates_suppressed += 1
            else:
                delivered = True
                transport._server.on_uplink(message)
            transport.ledger.record_downlink("Ack", ack.bits, receivers=(sender,), broadcasts=1)
            self.acks_sent += 1
            if not self.injector.drop_delivery(ack, receiver=sender):
                return True
            self.ack_drops += 1
        self.failures += 1
        return False

    # ------------------------------------------------------------ downlink

    def reliable_send(self, oid: ObjectId, message: object) -> bool:
        """Deliver a server -> object message with retries; True if acked."""
        transport = self.transport
        bits = message.bits  # type: ignore[attr-defined]
        name = type(message).__name__
        client = transport._clients.get(oid)
        if client is None:
            # No radio attached: transmit once (the sender cannot know) and
            # give up -- nothing on the far side will ever ack.
            transport.ledger.record_downlink(name, bits, receivers=(oid,), broadcasts=1)
            self.failures += 1
            return False
        seq = transport.next_downlink_seq(oid)
        ack = Ack(oid=oid, seq=seq)
        delivered = False
        for attempt in range(self.policy.max_attempts):
            if attempt:
                self.retransmissions += 1
            transport.ledger.record_downlink(name, bits, receivers=(oid,), broadcasts=1)
            if transport.trace is not None:
                transport.trace.record(transport.step, "send", type=name, oid=oid)
            if self.injector.drop_delivery(message, receiver=oid):
                continue
            if delivered:
                self.duplicates_suppressed += 1
            else:
                delivered = True
                observe = getattr(client, "observe_downlink_seq", None)
                if observe is not None:
                    observe(seq)
                client.on_downlink(message)
            transport.ledger.record_uplink("Ack", ack.bits, sender=oid)
            self.acks_sent += 1
            if not self.injector.drop_uplink(ack):
                return True
            self.ack_drops += 1
        self.failures += 1
        return False

    # ---------------------------------------------------------- inspection

    def counters(self) -> dict:
        """A JSON-friendly snapshot of the reliability accounting."""
        return {
            "retransmissions": self.retransmissions,
            "acks_sent": self.acks_sent,
            "ack_drops": self.ack_drops,
            "failures": self.failures,
            "duplicates_suppressed": self.duplicates_suppressed,
        }
