"""Ack/retransmit delivery for reliable messages.

The plain :class:`~repro.network.loss.LossModel` hand-waves reliability
by exempting control-plane messages from loss.  This layer earns it: a
reliable message is (re)transmitted up to ``policy.max_attempts`` times,
the receiver acknowledges each copy it hears with an
:class:`~repro.core.messages.Ack`, and the exchange succeeds only when
the *sender* sees an ack.  Every transmission attempt and every ack is
charged to the :class:`~repro.network.messaging.MessageLedger`, so under
faults the message/energy figures include the price of reliability --
nothing is free.

Sequencing and dedup: each reliable uplink gets a per-sender sequence
number and each reliable downlink occupies one slot in the receiver's
downlink sequence stream (the same stream unreliable deliveries bump, so
a reliable message that exhausts its retries leaves a detectable gap).
The receiver processes only the first copy that arrives -- duplicates
caused by a lost ack are suppressed, which is what the echoed sequence
number buys in a real stack.

Two timing modes, chosen per exchange by the transport's latency state:

- *Synchronous* (no modeled latency, or inside a forced-inline section):
  within-step delivery means "no ack came back" is known immediately, so
  the retries happen in back-to-back sub-step rounds (see
  :mod:`repro.faults.policy`).  This is the historical, bit-identical
  behavior.
- *Deferred* (nonzero modeled latency): each attempt rides the
  transport's envelope pipeline, the ack rides it back, and a real
  retransmit timer -- armed to the latency model's worst-case round trip
  -- re-sends from :meth:`ReliabilityLayer.advance` during the delivery
  phase until the ack lands or the attempt budget drains.  The sender
  learns the outcome asynchronously (clients through
  ``_note_uplink_outcome``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.messages import Ack
from repro.faults.injector import FaultInjector
from repro.mobility.model import ObjectId

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.transport import Envelope, SimulatedTransport


@dataclass(slots=True)
class _Exchange:
    """State of one in-flight deferred reliable exchange."""

    token: int
    kind: str  # "uplink" (object -> server) or "downlink" (server -> object)
    message: object
    name: str
    bits: int
    oid: ObjectId  # uplink: the sender; downlink: the receiver
    seq: int
    ack: Ack = field(init=False)
    attempts: int = 0
    delivered: bool = False
    acked: bool = False
    deadline: int = 0

    def __post_init__(self) -> None:
        self.ack = Ack(oid=self.oid, seq=self.seq)


class ReliabilityLayer:
    """Bounded-retry delivery of reliable messages over a fault injector."""

    def __init__(self, transport: "SimulatedTransport", injector: FaultInjector) -> None:
        self.transport = transport
        self.injector = injector
        self.policy = injector.policy
        self.retransmissions = 0
        self.acks_sent = 0
        self.ack_drops = 0
        self.failures = 0
        self.duplicates_suppressed = 0
        # Keyed by (sender, server endpoint): under a sharded server each
        # shard is its own ack endpoint, so every (object, shard) pair gets
        # a private gap-free sequence stream.  The monolith's endpoint is
        # always 0, collapsing this to the old per-sender stream.
        self._uplink_seq: dict[tuple[ObjectId, int], int] = {}
        # Deferred exchanges awaiting an ack, keyed by a monotonic token
        # (sorted iteration keeps the retransmit timers deterministic).
        self._pending: dict[int, _Exchange] = {}
        self._next_token = 0

    def _rto_steps(self) -> int:
        """Retransmit timeout: the latency model's worst-case round trip."""
        latency = self.transport.latency
        if latency is None:
            return 1
        return max(1, latency.worst_case_rtt_steps)

    # ------------------------------------------------------------- uplink

    def reliable_uplink(self, message: object) -> bool | None:
        """Deliver an object -> server message with retries.

        Synchronous mode returns whether the exchange was acked; deferred
        mode returns ``None`` (outcome pending) and reports the fate to
        the sending client when it is known.
        """
        transport = self.transport
        sender = getattr(message, "oid", None)
        bits = message.bits  # type: ignore[attr-defined]
        name = type(message).__name__
        stream = (sender, transport.uplink_endpoint(message))
        seq = self._uplink_seq.get(stream, 0) + 1
        self._uplink_seq[stream] = seq
        if transport.latency_active:
            exchange = self._open_exchange("uplink", message, name, bits, sender, seq)
            self._transmit(exchange)
            return None
        ack = Ack(oid=sender, seq=seq)
        delivered = False
        for attempt in range(self.policy.max_attempts):
            if attempt:
                self.retransmissions += 1
            transport.ledger.record_uplink(name, bits, sender=sender)
            if transport.trace is not None:
                transport.trace.record(transport.step, "uplink", type=name, oid=sender)
            if self.injector.drop_uplink(message):
                continue
            if delivered:
                self.duplicates_suppressed += 1
            else:
                delivered = True
                transport._server.on_uplink(message)
            transport.ledger.record_downlink("Ack", ack.bits, receivers=(sender,), broadcasts=1)
            self.acks_sent += 1
            if not self.injector.drop_delivery(ack, receiver=sender):
                return True
            self.ack_drops += 1
        self.failures += 1
        return False

    # ------------------------------------------------------------ downlink

    def reliable_send(self, oid: ObjectId, message: object) -> bool | None:
        """Deliver a server -> object message with retries.

        Synchronous mode returns whether the exchange was acked; deferred
        mode returns ``None`` while the exchange is in flight.
        """
        transport = self.transport
        bits = message.bits  # type: ignore[attr-defined]
        name = type(message).__name__
        client = transport._clients.get(oid)
        if client is None:
            # No radio attached: transmit once (the sender cannot know) and
            # give up -- nothing on the far side will ever ack.
            transport.ledger.record_downlink(name, bits, receivers=(oid,), broadcasts=1)
            self.failures += 1
            return False
        seq = transport.next_downlink_seq(oid)
        if transport.latency_active:
            exchange = self._open_exchange("downlink", message, name, bits, oid, seq)
            self._transmit(exchange)
            return None
        ack = Ack(oid=oid, seq=seq)
        delivered = False
        for attempt in range(self.policy.max_attempts):
            if attempt:
                self.retransmissions += 1
            transport.ledger.record_downlink(name, bits, receivers=(oid,), broadcasts=1)
            if transport.trace is not None:
                transport.trace.record(transport.step, "send", type=name, oid=oid)
            if self.injector.drop_delivery(message, receiver=oid):
                continue
            if delivered:
                self.duplicates_suppressed += 1
            else:
                delivered = True
                observe = getattr(client, "observe_downlink_seq", None)
                if observe is not None:
                    observe(seq)
                client.on_downlink(message)
            transport.ledger.record_uplink("Ack", ack.bits, sender=oid)
            self.acks_sent += 1
            if not self.injector.drop_uplink(ack):
                return True
            self.ack_drops += 1
        self.failures += 1
        return False

    # ----------------------------------------------------- deferred mode

    def _open_exchange(
        self, kind: str, message: object, name: str, bits: int, oid: ObjectId, seq: int
    ) -> _Exchange:
        self._next_token += 1
        exchange = _Exchange(
            token=self._next_token, kind=kind, message=message, name=name, bits=bits,
            oid=oid, seq=seq,
        )
        self._pending[exchange.token] = exchange
        return exchange

    def _transmit(self, exchange: _Exchange) -> None:
        """Put one attempt on the wire: charge it, roll loss, enqueue."""
        transport = self.transport
        exchange.attempts += 1
        exchange.deadline = transport.step + self._rto_steps()
        if exchange.kind == "uplink":
            transport.ledger.record_uplink(exchange.name, exchange.bits, sender=exchange.oid)
            if transport.trace is not None:
                transport.trace.record(
                    transport.step, "uplink", type=exchange.name, oid=exchange.oid
                )
            if self.injector.drop_uplink(exchange.message):
                return  # lost in transit; the retransmit timer covers it
            delay = transport._uplink_delay()
            if delay <= 0:
                self._arrive_at_server(exchange)
            else:
                transport._enqueue(
                    "rel-uplink", exchange.message, exchange.oid, delay, context=exchange
                )
        else:
            transport.ledger.record_downlink(
                exchange.name, exchange.bits, receivers=(exchange.oid,), broadcasts=1
            )
            if transport.trace is not None:
                transport.trace.record(
                    transport.step, "send", type=exchange.name, oid=exchange.oid
                )
            if self.injector.drop_delivery(exchange.message, receiver=exchange.oid):
                return
            delay = transport._downlink_delay()
            if delay <= 0:
                self._arrive_at_client(exchange)
            else:
                from repro.core.transport import SERVER_SENDER

                transport._enqueue(
                    "rel-downlink", exchange.message, SERVER_SENDER, delay, context=exchange
                )

    def open_envelope(self, envelope: "Envelope") -> None:
        """Dispatch a due reliability envelope from the delivery phase."""
        exchange = envelope.context
        kind = envelope.kind
        if kind == "rel-uplink":
            self._arrive_at_server(exchange)
        elif kind == "rel-downlink":
            self._arrive_at_client(exchange)
        elif kind == "rel-ack":
            self._ack_arrived(exchange)
        else:  # pragma: no cover - enqueue kinds are closed
            raise ValueError(f"unexpected reliability envelope kind {kind!r}")

    def _arrive_at_server(self, exchange: _Exchange) -> None:
        """One copy of a reliable uplink reaches the server; ack back."""
        transport = self.transport
        if exchange.delivered:
            self.duplicates_suppressed += 1
        else:
            exchange.delivered = True
            transport._server.on_uplink(exchange.message)
        transport.ledger.record_downlink(
            "Ack", exchange.ack.bits, receivers=(exchange.oid,), broadcasts=1
        )
        self.acks_sent += 1
        if self.injector.drop_delivery(exchange.ack, receiver=exchange.oid):
            self.ack_drops += 1
            return
        delay = transport._downlink_delay()
        if delay <= 0:
            self._ack_arrived(exchange)
        else:
            from repro.core.transport import SERVER_SENDER

            transport._enqueue(
                "rel-ack", exchange.ack, SERVER_SENDER, delay, context=exchange
            )

    def _arrive_at_client(self, exchange: _Exchange) -> None:
        """One copy of a reliable downlink reaches the receiver; ack back."""
        transport = self.transport
        client = transport._clients.get(exchange.oid)
        if client is None:
            return  # radio detached mid-flight; the timer will drain retries
        if exchange.delivered:
            self.duplicates_suppressed += 1
        else:
            exchange.delivered = True
            observe = getattr(client, "observe_downlink_seq", None)
            if observe is not None:
                observe(exchange.seq)
            client.on_downlink(exchange.message)
        transport.ledger.record_uplink("Ack", exchange.ack.bits, sender=exchange.oid)
        self.acks_sent += 1
        if self.injector.drop_uplink(exchange.ack):
            self.ack_drops += 1
            return
        delay = transport._uplink_delay()
        if delay <= 0:
            self._ack_arrived(exchange)
        else:
            transport._enqueue("rel-ack", exchange.ack, exchange.oid, delay, context=exchange)

    def _ack_arrived(self, exchange: _Exchange) -> None:
        """The sender sees the ack: the exchange completes successfully."""
        if exchange.acked:
            return
        exchange.acked = True
        self._pending.pop(exchange.token, None)
        if exchange.kind == "uplink":
            self._notify_uplink_sender(exchange, True)

    def _notify_uplink_sender(self, exchange: _Exchange, acked: bool) -> None:
        client = self.transport._clients.get(exchange.oid)
        if client is None:
            return
        note = getattr(client, "_note_uplink_outcome", None)
        if note is not None:
            note(acked)

    def advance(self, step: int) -> None:
        """Fire due retransmit timers (called from the delivery phase,
        after the step's envelopes have drained)."""
        if not self._pending:
            return
        for token in sorted(self._pending):
            exchange = self._pending.get(token)
            if exchange is None or step < exchange.deadline:
                continue
            if exchange.attempts >= self.policy.max_attempts:
                del self._pending[token]
                self.failures += 1
                if exchange.kind == "uplink":
                    self._notify_uplink_sender(exchange, False)
                continue
            self.retransmissions += 1
            self._transmit(exchange)

    # ---------------------------------------------------------- inspection

    def counters(self) -> dict:
        """A JSON-friendly snapshot of the reliability accounting."""
        return {
            "retransmissions": self.retransmissions,
            "acks_sent": self.acks_sent,
            "ack_drops": self.ack_drops,
            "failures": self.failures,
            "duplicates_suppressed": self.duplicates_suppressed,
            "pending": len(self._pending),
        }
