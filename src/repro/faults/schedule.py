"""Scriptable deterministic fault schedules.

A schedule is a set of half-open step windows: per-object disconnections
(the device is in a tunnel / its battery died -- all its traffic drops,
both directions), base-station outages (all traffic *through* the dead
station drops), and server-shard crashes (the shard's soft state and
in-flight uplinks are lost; see
:meth:`~repro.core.coordinator.Coordinator.crash_shard`).  The windows
are pure data, so a schedule is trivially reproducible and serializable
into a chaos report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mobility.model import ObjectId
from repro.network.basestation import BaseStationId


@dataclass(frozen=True, slots=True)
class DisconnectWindow:
    """Object ``oid`` is off the air for steps ``start <= step < end``."""

    oid: ObjectId
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty window [{self.start}, {self.end})")

    def active(self, step: int) -> bool:
        """Whether the window covers ``step``."""
        return self.start <= step < self.end


@dataclass(frozen=True, slots=True)
class StationOutage:
    """Base station ``bsid`` is dead for steps ``start <= step < end``."""

    bsid: BaseStationId
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty window [{self.start}, {self.end})")

    def active(self, step: int) -> bool:
        """Whether the window covers ``step``."""
        return self.start <= step < self.end


@dataclass(frozen=True, slots=True)
class CrashWindow:
    """Server shard ``shard`` is down for steps ``start <= step < end``.

    While the window is open the shard's soft state is gone (dropped at
    ``start`` by :meth:`~repro.core.coordinator.Coordinator.crash_shard`)
    and every uplink routed to it is lost; at ``end`` the coordinator
    rebuilds the shard from its last checkpoint
    (:meth:`~repro.core.coordinator.Coordinator.recover_shard`).
    """

    shard: int
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty window [{self.start}, {self.end})")
        if self.shard < 0:
            raise ValueError("shard must be non-negative")

    def active(self, step: int) -> bool:
        """Whether the window covers ``step``."""
        return self.start <= step < self.end


@dataclass(frozen=True, slots=True)
class FaultSchedule:
    """A fixed script of disconnections, station outages, and shard crashes."""

    disconnects: tuple[DisconnectWindow, ...] = ()
    outages: tuple[StationOutage, ...] = ()
    crashes: tuple[CrashWindow, ...] = ()

    def at(self, step: int) -> tuple[frozenset[ObjectId], frozenset[BaseStationId]]:
        """The (offline objects, dead stations) active at ``step``."""
        offline = frozenset(w.oid for w in self.disconnects if w.active(step))
        dead = frozenset(o.bsid for o in self.outages if o.active(step))
        return offline, dead

    def crashed(self, step: int) -> frozenset[int]:
        """The server shards down at ``step``."""
        return frozenset(c.shard for c in self.crashes if c.active(step))

    @property
    def last_step(self) -> int:
        """The last step at which any scheduled fault is still active."""
        ends = (
            [w.end for w in self.disconnects]
            + [o.end for o in self.outages]
            + [c.end for c in self.crashes]
        )
        return max(ends) - 1 if ends else -1

    def describe(self) -> dict:
        """A JSON-friendly rendering of the schedule (for chaos reports)."""
        return {
            "disconnects": [
                {"oid": w.oid, "start": w.start, "end": w.end} for w in self.disconnects
            ],
            "outages": [
                {"bsid": o.bsid, "start": o.start, "end": o.end} for o in self.outages
            ],
            "crashes": [
                {"shard": c.shard, "start": c.start, "end": c.end} for c in self.crashes
            ],
        }
