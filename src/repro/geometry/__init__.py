"""Planar geometry primitives for the MobiEyes reproduction."""

from repro.geometry.shapes import Circle, Rect, Shape
from repro.geometry.vector import Point, Vector

__all__ = ["Circle", "Point", "Rect", "Shape", "Vector"]
