"""Closed shapes used by MobiEyes: axis-aligned rectangles and circles.

The paper (Section 2.2) defines two region kinds:

- ``Rect(lx, ly, w, h)`` -- all points with ``x in [lx, lx+w]`` and
  ``y in [ly, ly+h]``.
- ``Circle(cx, cy, r)`` -- all points within distance ``r`` of ``(cx, cy)``.

Query spatial regions may be "any closed shape with a computationally cheap
point containment check"; without loss of generality the paper (and this
implementation's defaults) use circles, but the :class:`Shape` protocol keeps
the region pluggable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.geometry.vector import Point, Vector


@runtime_checkable
class Shape(Protocol):
    """Any closed 2D region with cheap containment and bounding box."""

    def contains(self, point: Point) -> bool:
        """Whether ``point`` lies inside (or on the boundary of) the shape."""
        ...

    def bounding_rect(self) -> "Rect":
        """Smallest axis-aligned rectangle enclosing the shape."""
        ...

    def translated(self, offset: Vector) -> "Shape":
        """The same shape moved by ``offset``."""
        ...


@dataclass(frozen=True, init=False, slots=True)
class Rect:
    """Axis-aligned rectangle ``Rect(lx, ly, w, h)`` per the paper.

    ``(lx, ly)`` is the lower-left corner; ``w`` and ``h`` are non-negative
    extents.  The rectangle is closed: boundary points are contained.

    Internally the *bounds* ``(lx, ly, ux, uy)`` are stored so that union
    and intersection are exact min/max operations -- reconstructing an upper
    bound as ``lx + w`` after a union can drift by one ulp, which is enough
    to make a spatial index lose points sitting exactly on an MBR corner.
    """

    lx: float
    ly: float
    ux: float
    uy: float

    def __init__(self, lx: float, ly: float, w: float, h: float) -> None:
        if w < 0 or h < 0:
            raise ValueError(f"rectangle extents must be non-negative, got w={w}, h={h}")
        object.__setattr__(self, "lx", lx)
        object.__setattr__(self, "ly", ly)
        object.__setattr__(self, "ux", lx + w)
        object.__setattr__(self, "uy", ly + h)

    @staticmethod
    def from_bounds(lx: float, ly: float, ux: float, uy: float) -> "Rect":
        """Rectangle from exact bounds (must satisfy lx <= ux, ly <= uy)."""
        if ux < lx or uy < ly:
            raise ValueError(f"invalid bounds ({lx}, {ly}, {ux}, {uy})")
        rect = object.__new__(Rect)
        object.__setattr__(rect, "lx", lx)
        object.__setattr__(rect, "ly", ly)
        object.__setattr__(rect, "ux", ux)
        object.__setattr__(rect, "uy", uy)
        return rect

    @property
    def w(self) -> float:
        """Width (x extent)."""
        return self.ux - self.lx

    @property
    def h(self) -> float:
        """Height (y extent)."""
        return self.uy - self.ly

    @property
    def center(self) -> Point:
        """Geometric center of the shape."""
        return Point((self.lx + self.ux) / 2.0, (self.ly + self.uy) / 2.0)

    @property
    def area(self) -> float:
        """Area of the shape."""
        return (self.ux - self.lx) * (self.uy - self.ly)

    @property
    def perimeter(self) -> float:
        """Perimeter of the rectangle."""
        return 2.0 * ((self.ux - self.lx) + (self.uy - self.ly))

    @staticmethod
    def from_corners(x1: float, y1: float, x2: float, y2: float) -> "Rect":
        """Rectangle spanning two opposite corners (in any order)."""
        return Rect.from_bounds(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))

    @staticmethod
    def from_center(center: Point, w: float, h: float) -> "Rect":
        """Build the shape from its center point."""
        return Rect(center.x - w / 2.0, center.y - h / 2.0, w, h)

    def contains(self, point: Point) -> bool:
        """Whether the point lies inside (or on the boundary of) the shape."""
        return self.lx <= point.x <= self.ux and self.ly <= point.y <= self.uy

    def contains_rect(self, other: "Rect") -> bool:
        """Whether ``other`` lies entirely inside this rectangle."""
        return (
            self.lx <= other.lx
            and self.ly <= other.ly
            and other.ux <= self.ux
            and other.uy <= self.uy
        )

    def intersects(self, other: "Rect") -> bool:
        """Closed-rectangle overlap test (shared edges count)."""
        return (
            self.lx <= other.ux
            and other.lx <= self.ux
            and self.ly <= other.uy
            and other.ly <= self.uy
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlapping rectangle, or ``None`` when disjoint."""
        if not self.intersects(other):
            return None
        return Rect.from_bounds(
            max(self.lx, other.lx),
            max(self.ly, other.ly),
            min(self.ux, other.ux),
            min(self.uy, other.uy),
        )

    def union(self, other: "Rect") -> "Rect":
        """Smallest rectangle containing both (the bounding union)."""
        return Rect.from_bounds(
            min(self.lx, other.lx),
            min(self.ly, other.ly),
            max(self.ux, other.ux),
            max(self.uy, other.uy),
        )

    def inflated(self, margin: float) -> "Rect":
        """Rectangle grown by ``margin`` on every side.

        A negative margin shrinks the rectangle; shrinking past a degenerate
        point raises ``ValueError`` (extents would become negative).
        """
        return Rect(self.lx - margin, self.ly - margin, self.w + 2 * margin, self.h + 2 * margin)

    def translated(self, offset: Vector) -> "Rect":
        """The same shape moved by the offset vector."""
        return Rect(self.lx + offset.x, self.ly + offset.y, self.w, self.h)

    def bounding_rect(self) -> "Rect":
        """Smallest axis-aligned rectangle enclosing the shape."""
        return self

    def distance_to_point(self, point: Point) -> float:
        """Euclidean distance from ``point`` to the rectangle (0 inside)."""
        dx = max(self.lx - point.x, 0.0, point.x - self.ux)
        dy = max(self.ly - point.y, 0.0, point.y - self.uy)
        return math.hypot(dx, dy)

    def clamp(self, point: Point) -> Point:
        """Closest point of the rectangle to ``point``."""
        return Point(
            min(max(point.x, self.lx), self.ux),
            min(max(point.y, self.ly), self.uy),
        )

    def corners(self) -> tuple[Point, Point, Point, Point]:
        """The four corners, counter-clockwise from the lower-left."""
        return (
            Point(self.lx, self.ly),
            Point(self.ux, self.ly),
            Point(self.ux, self.uy),
            Point(self.lx, self.uy),
        )


@dataclass(frozen=True, slots=True)
class Circle:
    """Circle ``Circle(cx, cy, r)`` per the paper; closed (boundary inside)."""

    cx: float
    cy: float
    r: float

    def __post_init__(self) -> None:
        if self.r < 0:
            raise ValueError(f"circle radius must be non-negative, got {self.r}")

    @property
    def center(self) -> Point:
        """Geometric center of the shape."""
        return Point(self.cx, self.cy)

    @property
    def area(self) -> float:
        """Area of the shape."""
        return math.pi * self.r * self.r

    @staticmethod
    def from_center(center: Point, r: float) -> "Circle":
        """Build the shape from its center point."""
        return Circle(center.x, center.y, r)

    def contains(self, point: Point) -> bool:
        """Whether the point lies inside (or on the boundary of) the shape."""
        dx = point.x - self.cx
        dy = point.y - self.cy
        return dx * dx + dy * dy <= self.r * self.r

    def intersects_rect(self, rect: Rect) -> bool:
        """Whether the circle and (closed) rectangle overlap."""
        return rect.distance_to_point(self.center) <= self.r

    def intersects_circle(self, other: "Circle") -> bool:
        """Whether the two (closed) circles overlap."""
        rsum = self.r + other.r
        return self.center.distance_squared_to(other.center) <= rsum * rsum

    def contains_rect(self, rect: Rect) -> bool:
        """Whether the rectangle lies entirely inside the circle."""
        return all(self.contains(c) for c in rect.corners())

    def bounding_rect(self) -> Rect:
        """Smallest axis-aligned rectangle enclosing the shape."""
        return Rect(self.cx - self.r, self.cy - self.r, 2 * self.r, 2 * self.r)

    def translated(self, offset: Vector) -> "Circle":
        """The same shape moved by the offset vector."""
        return Circle(self.cx + offset.x, self.cy + offset.y, self.r)

    def centered_at(self, center: Point) -> "Circle":
        """The same radius re-centered at ``center``.

        MobiEyes query regions are bound to a focal object through the circle
        center, so evaluating a query means re-centering the region at the
        (predicted) focal position.
        """
        return Circle(center.x, center.y, self.r)
