"""2D vector and point arithmetic used throughout MobiEyes.

The paper works in a flat two-dimensional universe of discourse, with object
positions as points and object motion as velocity vectors ``(velx, vely)``
(miles / hour in the paper's units).  Everything here is plain immutable
Python -- no numpy -- because individual objects manipulate single vectors,
not arrays, and the simulation hot loops index into per-object state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True, slots=True)
class Vector:
    """An immutable 2D vector, also used to represent points.

    Supports the usual vector algebra (addition, subtraction, scalar
    multiplication) plus the distance / norm helpers the MobiEyes
    dead-reckoning and safe-period computations need.
    """

    x: float
    y: float

    def __add__(self, other: "Vector") -> "Vector":
        return Vector(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Vector") -> "Vector":
        return Vector(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Vector":
        return Vector(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Vector":
        return Vector(self.x / scalar, self.y / scalar)

    def __neg__(self) -> "Vector":
        return Vector(-self.x, -self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def dot(self, other: "Vector") -> float:
        """Dot product with another vector."""
        return self.x * other.x + self.y * other.y

    def norm(self) -> float:
        """Euclidean length of the vector."""
        return math.hypot(self.x, self.y)

    def norm_squared(self) -> float:
        """Squared Euclidean length; avoids the sqrt when comparing."""
        return self.x * self.x + self.y * self.y

    def distance_to(self, other: "Vector") -> float:
        """Euclidean distance between two points."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def distance_squared_to(self, other: "Vector") -> float:
        """Squared distance; avoids the sqrt when comparing against radii."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def normalized(self) -> "Vector":
        """Unit vector in the same direction.

        Raises:
            ValueError: if this is the zero vector.
        """
        length = self.norm()
        if length == 0.0:
            raise ValueError("cannot normalize the zero vector")
        return Vector(self.x / length, self.y / length)

    def scaled_to(self, length: float) -> "Vector":
        """Vector in the same direction with the given length."""
        return self.normalized() * length

    def is_zero(self, tolerance: float = 0.0) -> bool:
        """Whether both components are within ``tolerance`` of zero."""
        return abs(self.x) <= tolerance and abs(self.y) <= tolerance

    @staticmethod
    def zero() -> "Vector":
        """The zero vector."""
        return _ZERO

    @staticmethod
    def from_polar(angle: float, length: float) -> "Vector":
        """Build a vector from an angle (radians) and a length."""
        return Vector(math.cos(angle) * length, math.sin(angle) * length)

    def angle(self) -> float:
        """Angle of the vector in radians, in ``(-pi, pi]``."""
        return math.atan2(self.y, self.x)


_ZERO = Vector(0.0, 0.0)

# ``Point`` is an alias: positions and displacements share the representation.
Point = Vector
