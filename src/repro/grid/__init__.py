"""Grid model: universe of discourse, cells, Pmap, monitoring regions."""

from repro.grid.grid import CellIndex, CellRange, CellRangeUnion, Grid
from repro.grid.regions import (
    bounding_box,
    monitoring_region,
    monitoring_region_rect,
    region_reach,
)

__all__ = [
    "CellIndex",
    "CellRange",
    "CellRangeUnion",
    "Grid",
    "bounding_box",
    "monitoring_region",
    "monitoring_region_rect",
    "region_reach",
]
