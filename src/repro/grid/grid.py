"""The MobiEyes grid over the universe of discourse.

Section 2.2 of the paper maps the universe of discourse (UoD)
``U = Rect(X, Y, W, H)`` onto a grid ``G(U, alpha)`` of ``alpha x alpha``
square cells ``A_{i,j}``, and defines ``Pmap`` taking a position to its grid
cell.  We use zero-based ``(i, j)`` indices with ``i`` the column (x-axis) and
``j`` the row (y-axis), computed with ``floor`` instead of the paper's
one-based ``ceil`` -- the two formulations induce the same partition of the
UoD into cells; zero-based floor is the natural Python phrasing.

Positions exactly on the far boundary of the UoD are clamped into the last
cell so that ``Pmap`` is total over the closed UoD rectangle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from repro.geometry import Point, Rect

# A grid cell index: (column along x, row along y), zero-based.
CellIndex = tuple[int, int]


@dataclass(frozen=True, slots=True)
class CellRange:
    """An inclusive rectangular block of grid cells.

    Monitoring regions in MobiEyes are always contiguous rectangular blocks
    of cells (the cells intersecting a query's bounding box), so a compact
    ``[lo_i, hi_i] x [lo_j, hi_j]`` range represents them exactly and makes
    the frequent "does this cell lie in that monitoring region" test O(1).
    """

    lo_i: int
    hi_i: int
    lo_j: int
    hi_j: int

    def __post_init__(self) -> None:
        if self.lo_i > self.hi_i or self.lo_j > self.hi_j:
            raise ValueError(f"empty cell range: {self}")

    def contains(self, cell: CellIndex) -> bool:
        """Whether the point lies inside (or on the boundary of) the shape."""
        i, j = cell
        return self.lo_i <= i <= self.hi_i and self.lo_j <= j <= self.hi_j

    def intersects(self, other: "CellRange") -> bool:
        """Whether the two (inclusive) cell ranges overlap."""
        return (
            self.lo_i <= other.hi_i
            and other.lo_i <= self.hi_i
            and self.lo_j <= other.hi_j
            and other.lo_j <= self.hi_j
        )

    def union_cells(self, other: "CellRange") -> set[CellIndex]:
        """Exact set union of two ranges (possibly non-rectangular)."""
        return set(self) | set(other)

    def bounding_union(self, other: "CellRange") -> "CellRange":
        """Smallest range containing both ranges."""
        return CellRange(
            min(self.lo_i, other.lo_i),
            max(self.hi_i, other.hi_i),
            min(self.lo_j, other.lo_j),
            max(self.hi_j, other.hi_j),
        )

    @property
    def cell_count(self) -> int:
        """Number of grid cells."""
        return (self.hi_i - self.lo_i + 1) * (self.hi_j - self.lo_j + 1)

    def __iter__(self) -> Iterator[CellIndex]:
        for i in range(self.lo_i, self.hi_i + 1):
            for j in range(self.lo_j, self.hi_j + 1):
                yield (i, j)

    def __contains__(self, cell: object) -> bool:
        if isinstance(cell, tuple) and len(cell) == 2:
            return self.contains(cell)  # type: ignore[arg-type]
        return False


@dataclass(frozen=True, slots=True)
class CellRangeUnion:
    """The union of two rectangular cell ranges, kept in range form.

    A focal object's monitoring-region refresh touches ``old | new`` --
    two overlapping rectangles.  Materializing the union as a ``set``
    loses the O(1) containment test and the hashability that the
    base-station cover memoization relies on; this pair keeps both.
    Iteration is deterministic: the first range in its native order,
    then the second range's cells not already covered by the first.
    """

    first: CellRange
    second: CellRange

    def contains(self, cell: CellIndex) -> bool:
        """Whether the point lies inside (or on the boundary of) the shape."""
        return self.first.contains(cell) or self.second.contains(cell)

    @property
    def cell_count(self) -> int:
        """Number of grid cells."""
        count = self.first.cell_count + self.second.cell_count
        if self.first.intersects(self.second):
            a, b = self.first, self.second
            count -= (min(a.hi_i, b.hi_i) - max(a.lo_i, b.lo_i) + 1) * (
                min(a.hi_j, b.hi_j) - max(a.lo_j, b.lo_j) + 1
            )
        return count

    def __iter__(self) -> Iterator[CellIndex]:
        yield from self.first
        first = self.first
        for cell in self.second:
            if not first.contains(cell):
                yield cell

    def __contains__(self, cell: object) -> bool:
        if isinstance(cell, tuple) and len(cell) == 2:
            return self.contains(cell)  # type: ignore[arg-type]
        return False


class Grid:
    """The grid ``G(U, alpha)`` over a universe of discourse.

    Args:
        uod: the universe of discourse rectangle ``Rect(X, Y, W, H)``.
        alpha: the grid cell side length (the paper's ``alpha`` parameter).

    Attributes:
        n_cols: number of columns ``N = ceil(W / alpha)``.
        n_rows: number of rows ``M = ceil(H / alpha)``.
    """

    __slots__ = ("uod", "alpha", "n_cols", "n_rows")

    def __init__(self, uod: Rect, alpha: float) -> None:
        if alpha <= 0:
            raise ValueError(f"grid cell size alpha must be positive, got {alpha}")
        if uod.w <= 0 or uod.h <= 0:
            raise ValueError("universe of discourse must have positive area")
        self.uod = uod
        self.alpha = float(alpha)
        self.n_cols = max(1, math.ceil(uod.w / alpha))
        self.n_rows = max(1, math.ceil(uod.h / alpha))

    def __repr__(self) -> str:
        return f"Grid(uod={self.uod!r}, alpha={self.alpha}, cols={self.n_cols}, rows={self.n_rows})"

    @property
    def cell_count(self) -> int:
        """Number of grid cells."""
        return self.n_cols * self.n_rows

    def contains(self, pos: Point) -> bool:
        """Whether ``pos`` lies inside the (closed) universe of discourse."""
        return self.uod.contains(pos)

    def cell_index(self, pos: Point) -> CellIndex:
        """``Pmap``: the grid cell containing ``pos``.

        Positions on the far UoD boundary clamp into the last row/column so
        the mapping is total over the closed UoD.

        Raises:
            ValueError: if ``pos`` is outside the universe of discourse.
        """
        if not self.uod.contains(pos):
            raise ValueError(f"position {pos} outside universe of discourse {self.uod}")
        i = min(int((pos.x - self.uod.lx) / self.alpha), self.n_cols - 1)
        j = min(int((pos.y - self.uod.ly) / self.alpha), self.n_rows - 1)
        return (i, j)

    def is_valid_cell(self, cell: CellIndex) -> bool:
        """Whether the index addresses a cell of this grid."""
        i, j = cell
        return 0 <= i < self.n_cols and 0 <= j < self.n_rows

    def cell_rect(self, cell: CellIndex) -> Rect:
        """The ``alpha x alpha`` rectangle of cell ``A_{i,j}``.

        Cells in the last row/column may extend past the UoD boundary when
        ``W`` or ``H`` is not a multiple of ``alpha``; this matches the
        paper's ``ceil`` in the grid dimensions.
        """
        if not self.is_valid_cell(cell):
            raise ValueError(f"cell {cell} outside grid ({self.n_cols} x {self.n_rows})")
        i, j = cell
        return Rect(
            self.uod.lx + i * self.alpha,
            self.uod.ly + j * self.alpha,
            self.alpha,
            self.alpha,
        )

    def clamp_cell(self, i: int, j: int) -> CellIndex:
        """Nearest valid cell index to an (unclamped) ``(i, j)``."""
        return (
            min(max(i, 0), self.n_cols - 1),
            min(max(j, 0), self.n_rows - 1),
        )

    def cells_intersecting(self, rect: Rect) -> CellRange:
        """All grid cells whose closed rects intersect the (closed) ``rect``.

        The result is clamped to the grid: portions of ``rect`` outside the
        UoD contribute no cells.  This is exactly the paper's
        ``{(i, j) : A_{i,j} intersect rect != empty}`` restricted to the grid.
        """
        lo_i = int(math.floor((rect.lx - self.uod.lx) / self.alpha))
        hi_i = int(math.floor((rect.ux - self.uod.lx) / self.alpha))
        lo_j = int(math.floor((rect.ly - self.uod.ly) / self.alpha))
        hi_j = int(math.floor((rect.uy - self.uod.ly) / self.alpha))
        # A rect whose edge exactly touches a cell boundary intersects the
        # neighbouring (closed) cell too.
        if (rect.lx - self.uod.lx) / self.alpha == lo_i and lo_i > 0:
            lo_i -= 1
        if (rect.ly - self.uod.ly) / self.alpha == lo_j and lo_j > 0:
            lo_j -= 1
        lo_i, lo_j = self.clamp_cell(lo_i, lo_j)
        hi_i, hi_j = self.clamp_cell(hi_i, hi_j)
        return CellRange(lo_i, hi_i, lo_j, hi_j)

    def neighbours(self, cell: CellIndex) -> list[CellIndex]:
        """The up-to-8 grid cells adjacent to ``cell``."""
        i, j = cell
        out: list[CellIndex] = []
        for di in (-1, 0, 1):
            for dj in (-1, 0, 1):
                if di == 0 and dj == 0:
                    continue
                ni, nj = i + di, j + dj
                if 0 <= ni < self.n_cols and 0 <= nj < self.n_rows:
                    out.append((ni, nj))
        return out

    def all_cells(self) -> Iterator[CellIndex]:
        """Iterate over every cell index of the grid."""
        for i in range(self.n_cols):
            for j in range(self.n_rows):
                yield (i, j)
