"""Bounding boxes and monitoring regions of moving queries (paper Section 2.3).

Given a query whose focal object currently sits in grid cell ``rc`` and whose
spatial region is a circle of radius ``r``:

- ``bound_box(q) = Rect(rc.lx - r, rc.ly - r, alpha + 2r, alpha + 2r)`` -- the
  rectangle covering every position the query region can reach while the
  focal object stays inside ``rc``.
- ``mon_region(q)`` -- the union of grid cells intersecting the bounding box;
  always a contiguous rectangular block of cells, represented as a
  :class:`~repro.grid.grid.CellRange`.

For a general (non-circular) query region the same construction applies with
``r`` replaced by the region's maximal extent from its binding point; we
compute that from the region's bounding rectangle.
"""

from __future__ import annotations

from repro.geometry import Circle, Point, Rect, Shape
from repro.grid.grid import CellIndex, CellRange, Grid


def region_reach(region: Shape) -> float:
    """Maximal distance from the region's binding point to its boundary.

    Query regions are expressed in focal-relative coordinates with the
    binding point at the origin.  For a circle bound through its center this
    is simply the radius.  For an arbitrary shape we take the largest
    Euclidean distance from the origin to a corner of its bounding
    rectangle -- the true reach for rectangles, a safe over-approximation
    for anything else, keeping the monitoring region (and the grouping /
    safe-period distance bounds) a superset of the exact region.
    """
    if isinstance(region, Circle):
        if region.cx == 0.0 and region.cy == 0.0:
            return region.r
        return region.r + Point(region.cx, region.cy).norm()
    rect = region.bounding_rect()
    return max(corner.norm() for corner in rect.corners())


def bounding_box(grid: Grid, focal_cell: CellIndex, region: Shape) -> Rect:
    """The paper's ``bound_box(q)`` for a focal object in ``focal_cell``."""
    reach = region_reach(region)
    cell_rect = grid.cell_rect(focal_cell)
    return Rect(
        cell_rect.lx - reach,
        cell_rect.ly - reach,
        grid.alpha + 2.0 * reach,
        grid.alpha + 2.0 * reach,
    )


def monitoring_region(grid: Grid, focal_cell: CellIndex, region: Shape) -> CellRange:
    """The paper's ``mon_region(q)``: grid cells intersecting the bounding box."""
    return grid.cells_intersecting(bounding_box(grid, focal_cell, region))


def monitoring_region_rect(grid: Grid, mon_region: CellRange) -> Rect:
    """The geometric footprint (a rectangle) of a monitoring region."""
    lower_left = grid.cell_rect((mon_region.lo_i, mon_region.lo_j))
    upper_right = grid.cell_rect((mon_region.hi_i, mon_region.hi_j))
    return lower_left.union(upper_right)
