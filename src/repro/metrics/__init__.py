"""Measurement: oracle accuracy, per-step stats, and report formatting."""

from repro.metrics.accuracy import exact_results, mean_result_error, result_error
from repro.metrics.collectors import MetricsLog, StepStats
from repro.metrics.report import format_table

__all__ = [
    "MetricsLog",
    "StepStats",
    "exact_results",
    "format_table",
    "mean_result_error",
    "result_error",
]
