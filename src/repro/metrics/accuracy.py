"""Ground-truth query evaluation and result-error measurement.

The paper (Fig. 2) defines the *error* of a query result at a time instant
as the number of object identifiers *missing* from the reported result
(compared to the correct result) divided by the size of the correct result.
Queries with an empty correct result contribute no sample.

:func:`exact_results` is an omniscient oracle: it evaluates every installed
query against the true object positions, bucketing objects by grid cell so
each query only inspects the cells its region can touch.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.query import MovingQuery, QueryId
from repro.grid import Grid
from repro.mobility.model import MovingObject, ObjectId


def exact_results(
    objects: Iterable[MovingObject],
    queries: Iterable[MovingQuery],
    grid: Grid,
) -> dict[QueryId, frozenset[ObjectId]]:
    """Evaluate every query against true positions (the oracle).

    The focal object itself is never part of its own query's result,
    matching the protocol (an object does not monitor its own queries).
    """
    by_id: dict[ObjectId, MovingObject] = {}
    buckets: dict[tuple[int, int], list[MovingObject]] = {}
    for obj in objects:
        by_id[obj.oid] = obj
        buckets.setdefault(grid.cell_index(obj.pos), []).append(obj)

    results: dict[QueryId, frozenset[ObjectId]] = {}
    for query in queries:
        if query.oid is None:
            region = query.region  # static query: fixed absolute region
        else:
            focal = by_id.get(query.oid)
            if focal is None:
                results[query.qid] = frozenset()
                continue
            region = query.region_at(focal.pos)
        members: set[ObjectId] = set()
        for cell in grid.cells_intersecting(region.bounding_rect()):
            for obj in buckets.get(cell, ()):
                if obj.oid == query.oid:
                    continue
                if region.contains(obj.pos) and query.filter.matches(obj.props):
                    members.add(obj.oid)
        results[query.qid] = frozenset(members)
    return results


def result_error(
    reported: frozenset[ObjectId] | set[ObjectId],
    correct: frozenset[ObjectId] | set[ObjectId],
) -> float | None:
    """Missing fraction per the paper; ``None`` when the correct result is
    empty (no sample)."""
    if not correct:
        return None
    missing = len(set(correct) - set(reported))
    return missing / len(correct)


def mean_result_error(
    reported: Mapping[QueryId, frozenset[ObjectId]],
    correct: Mapping[QueryId, frozenset[ObjectId]],
) -> float | None:
    """Average error over the queries that have a non-empty correct result."""
    samples = [
        error
        for qid, correct_set in correct.items()
        if (error := result_error(reported.get(qid, frozenset()), correct_set)) is not None
    ]
    if not samples:
        return None
    return sum(samples) / len(samples)
