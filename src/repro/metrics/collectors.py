"""Per-step metric records and aggregation.

Each system (MobiEyes and the centralized baselines) appends one
:class:`StepStats` per simulation step; :class:`MetricsLog` aggregates them
into exactly the quantities the paper's figures report:

- server load: seconds of server logic per step (Figs. 1, 3) and a
  hardware-independent operation count;
- messaging: wireless messages per second, split uplink/downlink
  (Figs. 4-8);
- power: average per-object communication power in watts (Fig. 9);
- object-side computation: mean LQT size (Figs. 10-12) and mean per-object
  query-processing seconds (Fig. 13);
- accuracy: mean missing-fraction error (Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class StepStats:
    """All measurements taken during one simulation step."""

    step: int
    server_seconds: float = 0.0
    # Critical-path view of the same window: aggregate shard-CPU seconds
    # with each parallel region's summed worker time replaced by its
    # slowest worker.  Equals ``server_seconds`` without a parallel shard
    # executor (and on the monolithic server).
    server_critical_seconds: float = 0.0
    server_ops: int = 0
    uplink_messages: int = 0
    downlink_messages: int = 0
    uplink_bits: float = 0.0
    downlink_bits: float = 0.0
    energy_joules: float = 0.0
    mean_lqt_size: float = 0.0
    evaluated_queries: int = 0
    skipped_by_safe_period: int = 0
    skipped_by_grouping: int = 0
    object_processing_seconds: float = 0.0
    result_error: float | None = None
    # Provenance of ``result_error``: the step its sample was actually
    # taken at.  Accuracy is sampled on evaluation steps and carried
    # forward in between, so without this field a pre-delivery error
    # could masquerade as current.  ``None`` means "unknown" (hand-built
    # records): treated as fresh for backward compatibility.
    result_error_step: int | None = None
    # Deferred-delivery pipeline: envelopes still in flight at the end of
    # the step, envelopes opened during the step, and their summed
    # send-to-delivery delay in steps.  All zero on the inline path.
    inflight_messages: int = 0
    delivered_messages: int = 0
    delivery_delay_steps: int = 0

    @property
    def total_messages(self) -> int:
        """Uplink plus downlink messages this step."""
        return self.uplink_messages + self.downlink_messages

    @property
    def result_error_is_fresh(self) -> bool:
        """Whether ``result_error`` was sampled this very step (a carried-
        forward sample from an earlier evaluation step is stale)."""
        return self.result_error_step is None or self.result_error_step == self.step


@dataclass
class MetricsLog:
    """Accumulates per-step stats and derives the paper's aggregates."""

    step_seconds: float
    population: int
    steps: list[StepStats] = field(default_factory=list)
    warmup_steps: int = 0

    def append(self, stats: StepStats) -> None:
        """Record one step's measurements."""
        self.steps.append(stats)

    def _measured(self) -> list[StepStats]:
        """Steps past the warm-up window (install transients excluded)."""
        return self.steps[self.warmup_steps :]

    def _require_steps(self) -> list[StepStats]:
        measured = self._measured()
        if not measured:
            raise ValueError("no measured steps (is warmup_steps >= total steps?)")
        return measured

    # ------------------------------------------------------------- server

    def mean_server_seconds(self) -> float:
        """Mean server-logic seconds per measured step."""
        measured = self._require_steps()
        return sum(s.server_seconds for s in measured) / len(measured)

    def mean_server_critical_seconds(self) -> float:
        """Mean critical-path server seconds per measured step (the
        modeled wall time under a parallel shard executor; equals
        :meth:`mean_server_seconds` without one)."""
        measured = self._require_steps()
        return sum(s.server_critical_seconds for s in measured) / len(measured)

    def mean_server_ops(self) -> float:
        """Mean abstract server operations per measured step."""
        measured = self._require_steps()
        return sum(s.server_ops for s in measured) / len(measured)

    # ---------------------------------------------------------- messaging

    def messages_per_second(self) -> float:
        """Total wireless messages per simulated second."""
        measured = self._require_steps()
        total = sum(s.total_messages for s in measured)
        return total / (len(measured) * self.step_seconds)

    def uplink_messages_per_second(self) -> float:
        """Uplink messages per simulated second."""
        measured = self._require_steps()
        return sum(s.uplink_messages for s in measured) / (len(measured) * self.step_seconds)

    def downlink_messages_per_second(self) -> float:
        """Downlink messages per simulated second."""
        measured = self._require_steps()
        return sum(s.downlink_messages for s in measured) / (len(measured) * self.step_seconds)

    # -------------------------------------------------------------- power

    def mean_power_watts_per_object(self) -> float:
        """Average communication power per object (joules per simulated
        second, averaged over the whole population)."""
        measured = self._require_steps()
        energy = sum(s.energy_joules for s in measured)
        duration = len(measured) * self.step_seconds
        if self.population <= 0:
            raise ValueError("population must be positive")
        return energy / duration / self.population

    # ------------------------------------------------------- object side

    def mean_lqt_size(self) -> float:
        """Mean per-object LQT size over the measured steps."""
        measured = self._require_steps()
        return sum(s.mean_lqt_size for s in measured) / len(measured)

    def mean_object_processing_seconds(self) -> float:
        """Mean per-object, per-step time spent processing the LQT."""
        measured = self._require_steps()
        total = sum(s.object_processing_seconds for s in measured)
        return total / (len(measured) * max(1, self.population))

    def total_evaluated_queries(self) -> int:
        """Containment checks performed in the measured window."""
        return sum(s.evaluated_queries for s in self._require_steps())

    def total_skipped_by_safe_period(self) -> int:
        """Evaluations skipped by safe periods in the window."""
        return sum(s.skipped_by_safe_period for s in self._require_steps())

    # ------------------------------------------------------- in-flight

    def mean_inflight_messages(self) -> float:
        """Mean pipeline depth: envelopes in flight at the end of a step."""
        measured = self._require_steps()
        return sum(s.inflight_messages for s in measured) / len(measured)

    def max_inflight_messages(self) -> int:
        """Peak pipeline depth over the measured window."""
        return max((s.inflight_messages for s in self._require_steps()), default=0)

    def mean_delivery_delay_steps(self) -> float | None:
        """Mean send-to-delivery delay of deferred envelopes, in steps
        (weighted by deliveries; ``None`` when nothing was deferred)."""
        measured = self._require_steps()
        delivered = sum(s.delivered_messages for s in measured)
        if delivered == 0:
            return None
        return sum(s.delivery_delay_steps for s in measured) / delivered

    # ----------------------------------------------------------- accuracy

    def mean_result_error(self) -> float | None:
        """Mean missing-fraction error over *fresh* samples, or None.

        Only steps whose sample was taken that very step count
        (``result_error_is_fresh``); a carried-forward sample -- taken
        before later deliveries landed -- is never reported as current.
        Records without provenance (``result_error_step`` unset) keep the
        historical behavior and count as fresh.
        """
        samples = [
            s.result_error
            for s in self._measured()
            if s.result_error is not None and s.result_error_is_fresh
        ]
        if not samples:
            return None
        return sum(samples) / len(samples)
