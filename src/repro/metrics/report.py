"""Plain-text tables for experiment output.

The benchmark harness prints one table per paper figure; these helpers keep
the formatting consistent (fixed-width columns, ``-`` for missing samples).
"""

from __future__ import annotations

from typing import Any, Sequence


def format_cell(value: Any) -> str:
    """Render one table cell ('-' for None, compact floats)."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Render an aligned plain-text table."""
    text_rows = [[format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
