"""Mobility substrate: moving objects, motion model, dead reckoning."""

from repro.mobility.dead_reckoning import DeadReckoner
from repro.mobility.model import MotionState, MovingObject, ObjectId
from repro.mobility.motion import MotionModel, reflect_into
from repro.mobility.waypoint import RandomWaypointModel

__all__ = [
    "DeadReckoner",
    "MotionModel",
    "MotionState",
    "MovingObject",
    "ObjectId",
    "RandomWaypointModel",
    "reflect_into",
]
