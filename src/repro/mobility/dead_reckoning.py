"""Dead reckoning (paper Section 3.4).

Focal objects do not broadcast every tiny velocity fluctuation.  Each step a
focal object samples its true position and compares it against the position
*other* objects believe it to be at -- the linear extrapolation of the last
relayed ``(pos, vel, tm)``.  Only when the deviation exceeds a threshold
``delta`` is the fresh motion state relayed (a *significant* velocity-vector
change).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry import Point
from repro.mobility.model import MotionState


@dataclass(slots=True)
class DeadReckoner:
    """Tracks the last relayed motion state of one object.

    Args:
        threshold: the paper's ``delta`` -- maximum tolerated deviation
            (miles) between the true position and the position predicted
            from the last relayed state.  ``0`` forces a relay on any
            deviation, which makes object-side predictions exact under
            piecewise-linear motion.
    """

    relayed: MotionState
    threshold: float = 0.0

    def predicted(self, now_hours: float) -> Point:
        """Where observers believe the object is at ``now_hours``."""
        return self.relayed.predict(now_hours)

    def deviation(self, true_pos: Point, now_hours: float) -> float:
        """Distance between the true and the believed position."""
        return true_pos.distance_to(self.predicted(now_hours))

    def needs_relay(self, true_pos: Point, now_hours: float) -> bool:
        """Whether the deviation exceeds the threshold ``delta``."""
        return self.deviation(true_pos, now_hours) > self.threshold

    def relay(self, state: MotionState) -> MotionState:
        """Record a fresh relayed state; returns it for convenience."""
        self.relayed = state
        return state
