"""The moving object model (paper Section 2.2).

A moving object is the quadruple ``<oid, pos, vel, {props}>``: a unique id,
a current position, a current velocity vector (miles/hour), and a property
set over which query filters are evaluated.  Each object additionally carries
its maximum speed (used by the safe-period optimization, which requires a
known upper bound ``maxVel``) and the timestamp at which ``pos``/``vel``
were last recorded (objects have synchronized clocks, per the paper's
system assumptions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.geometry import Point, Vector

ObjectId = int


@dataclass(slots=True)
class MovingObject:
    """A mobile unit: position, velocity, properties, and speed bound.

    Attributes:
        oid: unique object identifier.
        pos: current position (miles from the UoD origin).
        vel: current velocity vector (miles/hour).
        max_speed: upper bound on the object's speed (miles/hour); required
            by the safe-period optimization.
        props: application properties evaluated by query filters.
        recorded_at: simulation time (hours) at which ``pos``/``vel`` were
            recorded by the object itself.
    """

    oid: ObjectId
    pos: Point
    vel: Vector = field(default_factory=Vector.zero)
    max_speed: float = 0.0
    props: dict[str, Any] = field(default_factory=dict)
    recorded_at: float = 0.0

    def __post_init__(self) -> None:
        if self.max_speed < 0:
            raise ValueError(f"max_speed must be non-negative, got {self.max_speed}")

    @property
    def speed(self) -> float:
        """Current scalar speed (miles/hour)."""
        return self.vel.norm()

    def snapshot(self) -> "MotionState":
        """An immutable copy of the kinematic state, for reports/broadcasts."""
        return MotionState(pos=self.pos, vel=self.vel, recorded_at=self.recorded_at)


@dataclass(frozen=True, slots=True)
class MotionState:
    """Immutable ``(pos, vel, tm)`` triple as shipped in protocol messages."""

    pos: Point
    vel: Vector
    recorded_at: float

    def predict(self, now_hours: float) -> Point:
        """Dead-reckoned position at time ``now_hours`` (linear motion)."""
        dt = now_hours - self.recorded_at
        return Point(self.pos.x + self.vel.x * dt, self.pos.y + self.vel.y * dt)
