"""Object motion: per-step advancement and random velocity re-assignment.

The paper's movement model (Section 5.1): every time step a fixed number of
objects (``nmo``) is picked at random; each picked object gets a fresh
uniform-random direction and a speed uniform in ``[0, max_speed]``.  All
other objects continue with unchanged velocity vectors.  Objects stay inside
the universe of discourse; we reflect them off the UoD boundary (the paper
does not specify a boundary rule -- reflection keeps density uniform, which
matches the paper's uniform workload).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.geometry import Point, Rect, Vector
from repro.mobility.model import MovingObject, ObjectId
from repro.sim.rng import SimulationRng


def reflect_into(rect: Rect, pos: Point, vel: Vector) -> tuple[Point, Vector]:
    """Reflect a position (and its velocity) back inside ``rect``.

    Handles multiple bounces for fast objects by folding the coordinate into
    the doubled-period interval, exactly as a billiard reflection.
    """
    x, vx = _reflect_axis(pos.x, vel.x, rect.lx, rect.ux)
    y, vy = _reflect_axis(pos.y, vel.y, rect.ly, rect.uy)
    return Point(x, y), Vector(vx, vy)


def _reflect_axis(coord: float, vel: float, lo: float, hi: float) -> tuple[float, float]:
    span = hi - lo
    if span <= 0:
        return lo, -vel
    if lo <= coord <= hi:
        return coord, vel
    # Fold into the triangle wave of period 2*span: the ascending half keeps
    # the velocity sign (even number of bounces), the descending half flips it.
    offset = (coord - lo) % (2.0 * span)
    if offset <= span:
        return lo + offset, vel
    return hi - (offset - span), -vel


class MotionModel:
    """Advances a population of moving objects step by step."""

    def __init__(
        self,
        objects: Sequence[MovingObject],
        uod: Rect,
        rng: SimulationRng,
        velocity_changes_per_step: int = 0,
    ) -> None:
        self.objects = list(objects)
        self._by_id: dict[ObjectId, MovingObject] = {o.oid: o for o in self.objects}
        if len(self._by_id) != len(self.objects):
            raise ValueError("duplicate object ids in population")
        self.uod = uod
        self.rng = rng
        self.velocity_changes_per_step = velocity_changes_per_step
        #: object ids whose velocity vector changed during the last step
        self.changed_last_step: list[ObjectId] = []

    def __len__(self) -> int:
        return len(self.objects)

    def get(self, oid: ObjectId) -> MovingObject:
        """Look up a stored entry by its identifier."""
        return self._by_id[oid]

    def ids(self) -> Iterable[ObjectId]:
        """Iterate over the stored identifiers."""
        return self._by_id.keys()

    def advance(self, step_hours: float, now_hours: float) -> None:
        """Move every object along its velocity for one step, then randomly
        re-assign velocity vectors to ``velocity_changes_per_step`` objects.
        """
        for obj in self.objects:
            if obj.vel.x == 0.0 and obj.vel.y == 0.0:
                continue
            raw = Point(obj.pos.x + obj.vel.x * step_hours, obj.pos.y + obj.vel.y * step_hours)
            pos, vel = reflect_into(self.uod, raw, obj.vel)
            velocity_changed = vel != obj.vel
            obj.pos = pos
            if velocity_changed:
                obj.vel = vel
            # Objects continuously re-record their own state (GPS + clock).
            obj.recorded_at = now_hours

        self.changed_last_step = []
        count = min(self.velocity_changes_per_step, len(self.objects))
        if count > 0:
            for obj in self.rng.sample(self.objects, count):
                self._randomize_velocity(obj, now_hours)
                self.changed_last_step.append(obj.oid)

    def apply_update(
        self, oid: ObjectId, pos: Point, vel: Vector, now_hours: float
    ) -> MovingObject:
        """Adopt an externally reported position/velocity for one object.

        The service runtime's ingest path: a device reports where it
        *actually* is, overriding the simulated trajectory.  The position
        is folded into the universe of discourse by the same billiard
        reflection ordinary motion uses, so an out-of-bounds report can
        never corrupt the grid invariants.  Applied between steps (the
        clock's current boundary), it is indistinguishable from the
        object having moved there itself.
        """
        obj = self._by_id[oid]
        pos, vel = reflect_into(self.uod, pos, vel)
        obj.pos = pos
        obj.vel = vel
        obj.recorded_at = now_hours
        return obj

    def _randomize_velocity(self, obj: MovingObject, now_hours: float) -> None:
        speed = self.rng.uniform(0.0, obj.max_speed)
        obj.vel = Vector.from_polar(self.rng.direction(), speed)
        obj.recorded_at = now_hours

    def bounced_objects(self) -> list[ObjectId]:
        """Ids of objects whose velocity changed by boundary reflection in
        the last ``advance`` call are included in ``changed_last_step`` only
        when they were also randomly re-assigned; reflections are treated as
        ordinary motion (the focal-object dead-reckoning check catches the
        deviation they cause).
        """
        return list(self.changed_last_step)
