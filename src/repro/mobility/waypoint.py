"""Random-waypoint mobility (a robustness extension).

The paper's movement model re-draws random velocity vectors for ``nmo``
objects per step.  Random waypoint -- each object picks a uniform random
destination and speed, travels there in a straight line, then picks the
next -- is the standard alternative in mobile-systems evaluations; the
mobility-robustness ablation checks that MobiEyes' guarantees and messaging
advantages do not depend on the paper's specific model.

The model is a drop-in :class:`~repro.mobility.motion.MotionModel`
replacement: within a step motion is linear, so dead reckoning stays exact
between waypoint changes, and a waypoint switch shows up as an ordinary
velocity-vector deviation at the next step.
"""

from __future__ import annotations

from typing import Sequence

from repro.geometry import Point, Rect, Vector
from repro.mobility.model import MovingObject, ObjectId
from repro.mobility.motion import MotionModel
from repro.sim.rng import SimulationRng


class RandomWaypointModel(MotionModel):
    """Objects travel to uniform random waypoints at random speeds.

    Args:
        min_speed_fraction: each leg's speed is uniform in
            ``[min_speed_fraction * max_speed, max_speed]``; a positive
            lower bound avoids the classic random-waypoint speed-decay
            artifact (objects stuck on near-zero-speed legs).
    """

    def __init__(
        self,
        objects: Sequence[MovingObject],
        uod: Rect,
        rng: SimulationRng,
        min_speed_fraction: float = 0.1,
    ) -> None:
        super().__init__(objects, uod, rng, velocity_changes_per_step=0)
        if not 0.0 < min_speed_fraction <= 1.0:
            raise ValueError("min_speed_fraction must be in (0, 1]")
        self.min_speed_fraction = min_speed_fraction
        self._waypoints: dict[ObjectId, Point] = {}
        for obj in self.objects:
            self._assign_leg(obj, initial=True)

    def _pick_waypoint(self) -> Point:
        return Point(
            self.rng.uniform(self.uod.lx, self.uod.ux),
            self.rng.uniform(self.uod.ly, self.uod.uy),
        )

    def _assign_leg(self, obj: MovingObject, initial: bool = False) -> None:
        waypoint = self._pick_waypoint()
        self._waypoints[obj.oid] = waypoint
        heading = waypoint - obj.pos
        if obj.max_speed <= 0 or heading.is_zero():
            obj.vel = Vector.zero()
            return
        speed = self.rng.uniform(self.min_speed_fraction * obj.max_speed, obj.max_speed)
        obj.vel = heading.scaled_to(speed)

    def waypoint_of(self, oid: ObjectId) -> Point:
        """The destination the object is currently heading to."""
        return self._waypoints[oid]

    def advance(self, step_hours: float, now_hours: float) -> None:
        """Move every object toward its waypoint; arrivals pick a new leg.

        An object that reaches its waypoint mid-step continues along the
        *new* leg for the remaining time, so per-step displacement is
        continuous (the kink is caught by dead reckoning one step later,
        exactly like a boundary reflection in the base model).
        """
        self.changed_last_step = []
        for obj in self.objects:
            remaining = step_hours
            moved_legs = 0
            while remaining > 0 and obj.max_speed > 0:
                waypoint = self._waypoints[obj.oid]
                to_target = waypoint - obj.pos
                distance = to_target.norm()
                speed = obj.vel.norm()
                if speed <= 0:
                    self._assign_leg(obj)
                    moved_legs += 1
                    if obj.vel.is_zero():
                        break
                    continue
                travel = speed * remaining
                if travel < distance:
                    obj.pos = obj.pos + obj.vel * remaining
                    remaining = 0.0
                else:
                    obj.pos = waypoint
                    remaining -= distance / speed
                    self._assign_leg(obj)
                    moved_legs += 1
                if moved_legs > 8:
                    break  # pathological tiny legs; resume next step
            obj.recorded_at = now_hours
            if moved_legs:
                self.changed_last_step.append(obj.oid)
