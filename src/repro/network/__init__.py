"""Wireless network substrate: base stations, messaging, radio energy."""

from repro.network.basestation import BaseStation, BaseStationId, BaseStationLayout
from repro.network.loss import RELIABLE_MESSAGE_TYPES, LossModel
from repro.network.messaging import LedgerSnapshot, MessageLedger
from repro.network.radio import RadioModel

__all__ = [
    "BaseStation",
    "BaseStationId",
    "BaseStationLayout",
    "LedgerSnapshot",
    "LossModel",
    "MessageLedger",
    "RELIABLE_MESSAGE_TYPES",
    "RadioModel",
]
