"""Wireless network substrate: base stations, messaging, radio energy."""

from repro.network.basestation import BaseStation, BaseStationId, BaseStationLayout
from repro.network.latency import LatencyModel
from repro.network.loss import LossModel, is_reliable
from repro.network.messaging import LedgerSnapshot, MessageLedger
from repro.network.radio import RadioModel

__all__ = [
    "BaseStation",
    "BaseStationId",
    "BaseStationLayout",
    "LatencyModel",
    "LedgerSnapshot",
    "LossModel",
    "MessageLedger",
    "RadioModel",
    "is_reliable",
]
