"""Base stations and the grid-cell-to-base-station mapping ``Bmap``.

The paper assumes the universe of discourse is covered by base stations with
circular coverage regions; a base station broadcasts to every object inside
its circle, and objects uplink to a covering station.  Table 1 parameterizes
the deployment by a *base station side length* ``alen``: we realize this as
a square lattice of stations, one per ``alen x alen`` tile, each with
coverage radius equal to the tile's circumradius ``alen * sqrt(2) / 2`` so
the union of circles covers the UoD.

``Bmap(i, j)`` maps a grid cell to the set of stations whose coverage circle
intersects the cell; the server uses it to pick a *minimal* set of stations
whose circles jointly cover a query's monitoring region (greedy set cover,
which is the standard polynomial approximation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.geometry import Circle, Point
from repro.grid import CellIndex, CellRange, CellRangeUnion, Grid

BaseStationId = int


@dataclass(frozen=True, slots=True)
class BaseStation:
    """One base station: identifier and circular coverage region."""

    bsid: BaseStationId
    coverage: Circle

    def covers_point(self, point: Point) -> bool:
        """Whether the station's coverage circle contains the point."""
        return self.coverage.contains(point)

    def covers_cell(self, grid: Grid, cell: CellIndex) -> bool:
        """Whether the station's coverage intersects the grid cell."""
        return self.coverage.intersects_rect(grid.cell_rect(cell))


class BaseStationLayout:
    """A lattice deployment of base stations covering a grid's UoD.

    Args:
        grid: the MobiEyes grid (provides the UoD and cell geometry).
        side_length: the paper's ``alen``; one station per ``alen x alen``
            tile of the UoD.
    """

    def __init__(self, grid: Grid, side_length: float) -> None:
        if side_length <= 0:
            raise ValueError(f"base station side length must be positive, got {side_length}")
        self.grid = grid
        self.side_length = float(side_length)
        self.stations: list[BaseStation] = []
        self._build_lattice()
        self._bmap: dict[CellIndex, tuple[BaseStationId, ...]] = {}
        self._build_bmap()
        self._cover_cache: dict[object, list[BaseStationId]] = {}

    def _build_lattice(self) -> None:
        uod = self.grid.uod
        self.tile_cols = max(1, math.ceil(uod.w / self.side_length))
        self.tile_rows = max(1, math.ceil(uod.h / self.side_length))
        cols, rows = self.tile_cols, self.tile_rows
        radius = self.side_length * math.sqrt(2.0) / 2.0
        bsid = 0
        for i in range(cols):
            for j in range(rows):
                center = Point(
                    uod.lx + (i + 0.5) * self.side_length,
                    uod.ly + (j + 0.5) * self.side_length,
                )
                self.stations.append(BaseStation(bsid, Circle.from_center(center, radius)))
                bsid += 1

    def _build_bmap(self) -> None:
        # Each station's circle only intersects nearby cells; restrict the
        # scan to the cells intersecting the circle's bounding rect.
        cell_sets: dict[CellIndex, list[BaseStationId]] = {}
        for station in self.stations:
            candidates = self.grid.cells_intersecting(station.coverage.bounding_rect())
            for cell in candidates:
                if station.coverage.intersects_rect(self.grid.cell_rect(cell)):
                    cell_sets.setdefault(cell, []).append(station.bsid)
        for cell in self.grid.all_cells():
            ids = cell_sets.get(cell)
            if not ids:
                raise RuntimeError(f"grid cell {cell} is not covered by any base station")
            self._bmap[cell] = tuple(sorted(ids))

    def __len__(self) -> int:
        return len(self.stations)

    def get(self, bsid: BaseStationId) -> BaseStation:
        """Look up a stored entry by its identifier."""
        return self.stations[bsid]

    def bmap(self, cell: CellIndex) -> tuple[BaseStationId, ...]:
        """``Bmap(i, j)``: stations whose coverage intersects the cell."""
        return self._bmap[cell]

    def tile_of_point(self, point: Point) -> tuple[int, int]:
        """The lattice tile (station tile) containing ``point``."""
        uod = self.grid.uod
        i = min(max(int((point.x - uod.lx) / self.side_length), 0), self.tile_cols - 1)
        j = min(max(int((point.y - uod.ly) / self.side_length), 0), self.tile_rows - 1)
        return (i, j)

    def station_at_tile(self, tile: tuple[int, int]) -> BaseStation:
        """The station deployed on the given lattice tile."""
        i, j = tile
        return self.stations[i * self.tile_rows + j]

    def tile_of_station(self, bsid: BaseStationId) -> tuple[int, int]:
        """The lattice tile a station is deployed on."""
        return (bsid // self.tile_rows, bsid % self.tile_rows)

    def station_covering(self, point: Point) -> BaseStation:
        """A station covering ``point`` (objects uplink through one).

        Picks the station of the point's lattice tile; its circumradius
        coverage circle always contains the tile.
        """
        station = self.station_at_tile(self.tile_of_point(point))
        if not station.covers_point(point):  # lattice guarantees this
            raise RuntimeError(f"no base station covers {point}")
        return station

    def minimal_cover(self, region: "CellRange | Iterable[CellIndex]") -> list[BaseStationId]:
        """Greedy minimal set of stations covering every cell of ``region``.

        This is the server's "minimum number of broadcasts" computation: one
        broadcast message per returned station.  ``region`` is any iterable
        of cell indices (a :class:`CellRange`, or the union of two ranges
        when a focal object's monitoring region moved).

        The greedy cover is a pure function of the region (the lattice and
        the Bmap are fixed at construction) and monitoring regions repeat
        heavily across steps, so results are memoized.
        """
        key: object = (
            region if isinstance(region, (CellRange, CellRangeUnion)) else tuple(region)
        )
        cached = self._cover_cache.get(key)
        if cached is not None:
            return list(cached)
        # Cells as bits of one int: the greedy rounds then run on integer
        # AND / popcount instead of set intersections.  The selection is
        # identical to the set formulation -- the gain is the same count
        # and ties break to the smallest station id either way.
        bit_of: dict[CellIndex, int] = {}
        for cell in region:
            if cell not in bit_of:
                bit_of[cell] = 1 << len(bit_of)
        if not bit_of:
            self._cover_cache[key] = []
            return []
        chosen: list[BaseStationId] = []
        # Candidate stations: anything appearing in the Bmap of a region cell.
        candidates: dict[BaseStationId, int] = {}
        for cell, bit in bit_of.items():
            for bsid in self._bmap[cell]:
                candidates[bsid] = candidates.get(bsid, 0) | bit
        uncovered = (1 << len(bit_of)) - 1
        while uncovered:
            best_id = -1
            best_gain = -1
            best_bits = 0
            for bsid, bits in candidates.items():
                gain = (bits & uncovered).bit_count()
                if gain > best_gain or (gain == best_gain and bsid < best_id):
                    best_id = bsid
                    best_gain = gain
                    best_bits = bits
            if best_gain == 0:
                raise RuntimeError("region cell not coverable; Bmap inconsistent")
            chosen.append(best_id)
            uncovered &= ~best_bits
            del candidates[best_id]
        chosen.sort()
        self._cover_cache[key] = chosen
        return list(chosen)

    def stations_hearing(self, point: Point) -> list[BaseStationId]:
        """All stations whose coverage contains ``point`` (for broadcast
        reception accounting: an object hears a broadcast when any chosen
        station's circle covers it)."""
        return [s.bsid for s in self.stations if s.coverage.contains(point)]
