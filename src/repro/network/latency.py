"""Per-link delivery latency for the deferred message pipeline.

The paper reasons about propagation delay analytically (dead reckoning
exists *because* velocity broadcasts take time to reach the objects) but
simulates instantaneous delivery.  :class:`LatencyModel` makes the delay
explicit: every uplink and every per-receiver downlink hop is stamped
with a delivery delay in whole simulation steps, optionally widened by
seeded uniform jitter, and the transport defers the message into its
envelope queue until the delay elapses.

A delay of zero keeps the hop *inline* -- it completes within the
sending step, exactly the paper's synchrony assumption -- so the default
all-zero model is bit-identical to the pre-pipeline transport.  Jitter
rolls are drawn from the model's own seeded stream, one roll per stamped
hop in send order, so runs stay reproducible across engines and shard
counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.rng import SimulationRng


@dataclass
class LatencyModel:
    """Fixed per-link delays (in steps) plus optional seeded jitter.

    Attributes:
        uplink_steps: delivery delay of an object -> server message.
        downlink_steps: delivery delay of one server -> object hop (each
            receiver of a broadcast is an independent hop).
        jitter_steps: extra uniform delay in ``[0, jitter_steps]`` added
            per hop, drawn from the seeded jitter stream.
        seed: seed of the jitter stream (unused while ``jitter_steps``
            is zero -- no randomness is consumed).
    """

    uplink_steps: int = 0
    downlink_steps: int = 0
    jitter_steps: int = 0
    seed: int = 0
    _rng: SimulationRng = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        for name in ("uplink_steps", "downlink_steps", "jitter_steps"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        self._rng = SimulationRng(seed=self.seed)

    @property
    def is_zero(self) -> bool:
        """Whether every hop is instantaneous (the inline fast path)."""
        return self.uplink_steps == 0 and self.downlink_steps == 0 and self.jitter_steps == 0

    @property
    def worst_case_rtt_steps(self) -> int:
        """Upper bound on a reliable exchange's round trip, in steps; the
        reliability layer's retransmit timeout."""
        return self.uplink_steps + self.downlink_steps + 2 * self.jitter_steps

    def _jitter(self) -> int:
        if self.jitter_steps == 0:
            return 0
        return self._rng.randint(0, self.jitter_steps)

    def uplink_delay(self) -> int:
        """Stamp one object -> server hop (consumes a jitter roll)."""
        return self.uplink_steps + self._jitter()

    def downlink_delay(self) -> int:
        """Stamp one server -> object hop (consumes a jitter roll)."""
        return self.downlink_steps + self._jitter()

    @classmethod
    def from_config(cls, config) -> "LatencyModel | None":
        """The model a :class:`~repro.core.config.MobiEyesConfig` asks for,
        or ``None`` when the config keeps every hop instantaneous."""
        if not (
            config.uplink_latency_steps
            or config.downlink_latency_steps
            or config.latency_jitter_steps
        ):
            return None
        return cls(
            uplink_steps=config.uplink_latency_steps,
            downlink_steps=config.downlink_latency_steps,
            jitter_steps=config.latency_jitter_steps,
            seed=config.latency_seed,
        )
