"""Wireless message loss injection.

The paper assumes reliable delivery; real deployments drop packets.  The
:class:`LossModel` injects independent random loss on uplink messages and
per-receiver downlink deliveries, letting the test suite and the loss
ablation measure how gracefully the protocol degrades (stale results heal
at the next velocity-change broadcast or cell crossing).

Control-plane messages used during query installation
(:class:`~repro.core.messages.MotionStateRequest` / ``Response`` and
``FocalRoleNotification``) are treated as reliable -- in a real system they
are retransmitted until acknowledged -- so an installation never silently
half-completes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.rng import SimulationRng

RELIABLE_MESSAGE_TYPES = frozenset(
    {"MotionStateRequest", "MotionStateResponse", "FocalRoleNotification"}
)


@dataclass
class LossModel:
    """Independent Bernoulli loss per message / per delivery."""

    rng: SimulationRng
    uplink_loss_rate: float = 0.0
    downlink_loss_rate: float = 0.0
    reliable_types: frozenset[str] = RELIABLE_MESSAGE_TYPES
    dropped_uplinks: int = field(default=0, init=False)
    dropped_deliveries: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        for rate in (self.uplink_loss_rate, self.downlink_loss_rate):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"loss rate must be in [0, 1], got {rate}")

    def _is_reliable(self, message: object) -> bool:
        return type(message).__name__ in self.reliable_types

    def drop_uplink(self, message: object) -> bool:
        """Whether this object -> server message is lost in transit."""
        if self.uplink_loss_rate == 0.0 or self._is_reliable(message):
            return False
        if self.rng.random() < self.uplink_loss_rate:
            self.dropped_uplinks += 1
            return True
        return False

    def drop_delivery(self, message: object) -> bool:
        """Whether one receiver misses this downlink message."""
        if self.downlink_loss_rate == 0.0 or self._is_reliable(message):
            return False
        if self.rng.random() < self.downlink_loss_rate:
            self.dropped_deliveries += 1
            return True
        return False
