"""Wireless message loss injection.

The paper assumes reliable delivery; real deployments drop packets.  The
:class:`LossModel` injects independent random loss on uplink messages and
per-receiver downlink deliveries, letting the test suite and the loss
ablation measure how gracefully the protocol degrades (stale results heal
at the next velocity-change broadcast or cell crossing).

Whether a message is control plane (must not silently half-complete) is
declared by the message class itself: every class in
:mod:`repro.core.messages` carries a ``reliable`` flag.  The plain
:class:`LossModel` simply exempts reliable messages from loss -- an
abstraction of "retransmitted until acknowledged" that costs nothing on
the wire.  The fault-injection stack (:mod:`repro.faults`) replaces that
fiction with an explicit ack/retransmit protocol whose retries and acks
are charged to the message ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mobility.model import ObjectId
from repro.sim.rng import SimulationRng


def is_reliable(message: object) -> bool:
    """Whether a message class declares itself control plane (reliable)."""
    return getattr(message, "reliable", False)


@dataclass
class LossModel:
    """Independent Bernoulli loss per message / per delivery."""

    rng: SimulationRng
    uplink_loss_rate: float = 0.0
    downlink_loss_rate: float = 0.0
    dropped_uplinks: int = field(default=0, init=False)
    dropped_deliveries: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        for rate in (self.uplink_loss_rate, self.downlink_loss_rate):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"loss rate must be in [0, 1], got {rate}")

    def begin_step(self, step: int) -> None:
        """Per-step hook (no state to roll for i.i.d. loss)."""

    def drop_uplink(self, message: object) -> bool:
        """Whether this object -> server message is lost in transit."""
        if self.uplink_loss_rate == 0.0 or is_reliable(message):
            return False
        if self.rng.random() < self.uplink_loss_rate:
            self.dropped_uplinks += 1
            return True
        return False

    def drop_delivery(self, message: object, receiver: ObjectId | None = None) -> bool:
        """Whether one receiver misses this downlink message."""
        if self.downlink_loss_rate == 0.0 or is_reliable(message):
            return False
        if self.rng.random() < self.downlink_loss_rate:
            self.dropped_deliveries += 1
            return True
        return False
