"""Message accounting on the wireless medium.

The paper's messaging-cost experiments count *messages sent on the wireless
medium per second*, split into uplink messages (object -> server) and
downlink messages (base-station broadcast, or one-to-one server -> object
message).  The power experiments additionally account message *sizes* and
charge transmit energy to the sender and receive energy to every object
that hears a broadcast (including over-hearers outside the monitoring
region -- the paper calls this out as MobiEyes' main energy overhead).

The :class:`MessageLedger` is shared by MobiEyes and the centralized
baselines so the experiments compare identical accounting.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.mobility.model import ObjectId
from repro.network.radio import RadioModel


@dataclass
class MessageLedger:
    """Counts, sizes, and per-object energy for all wireless traffic."""

    radio: RadioModel = field(default_factory=RadioModel)
    uplink_count: int = 0
    downlink_count: int = 0
    uplink_bits: float = 0.0
    downlink_bits: float = 0.0
    counts_by_type: Counter = field(default_factory=Counter)
    bits_by_type: Counter = field(default_factory=Counter)
    energy_by_object: dict[ObjectId, float] = field(default_factory=dict)

    # ------------------------------------------------------------- recording

    def record_uplink(self, msg_type: str, bits: float, sender: ObjectId | None = None) -> None:
        """One object -> server message."""
        self.uplink_count += 1
        self.uplink_bits += bits
        self.counts_by_type[msg_type] += 1
        self.bits_by_type[msg_type] += bits
        if sender is not None:
            self._charge(sender, self.radio.transmit_energy(bits))

    def record_downlink(
        self,
        msg_type: str,
        bits: float,
        receivers: Iterable[ObjectId] = (),
        broadcasts: int = 1,
    ) -> None:
        """Server -> objects traffic.

        ``broadcasts`` is the number of wireless messages (one per base
        station for a broadcast, 1 for a one-to-one message); ``receivers``
        are all objects that hear the message and pay receive energy.
        """
        self.downlink_count += broadcasts
        self.downlink_bits += bits * broadcasts
        self.counts_by_type[msg_type] += broadcasts
        self.bits_by_type[msg_type] += bits * broadcasts
        rx_energy = self.radio.receive_energy(bits)
        # Inlined _charge: this loop runs once per receiver per broadcast,
        # the hottest accounting path in dense workloads.
        energy = self.energy_by_object
        get = energy.get
        for oid in receivers:
            energy[oid] = get(oid, 0.0) + rx_energy

    def _charge(self, oid: ObjectId, joules: float) -> None:
        self.energy_by_object[oid] = self.energy_by_object.get(oid, 0.0) + joules

    # ------------------------------------------------------------- summaries

    @property
    def total_count(self) -> int:
        """Total number of wireless messages."""
        return self.uplink_count + self.downlink_count

    @property
    def total_bits(self) -> float:
        """Uplink plus downlink bits."""
        return self.uplink_bits + self.downlink_bits

    def total_energy(self) -> float:
        """Total joules charged across all objects.

        ``fsum`` so the total is independent of the order objects were
        first charged: the vectorized broadcast fan-out visits receivers
        in store-row order while the reference loop visits them in set
        order, and a naive left-to-right sum would differ in the last
        ulps between the two.
        """
        return math.fsum(self.energy_by_object.values())

    def mean_energy_per_object(self, population: int) -> float:
        """Average joules per object over a population of ``population``
        devices (objects that never communicated count as zero)."""
        if population <= 0:
            raise ValueError("population must be positive")
        return self.total_energy() / population

    def snapshot(self) -> "LedgerSnapshot":
        """An immutable copy of the running totals."""
        return LedgerSnapshot(
            uplink_count=self.uplink_count,
            downlink_count=self.downlink_count,
            uplink_bits=self.uplink_bits,
            downlink_bits=self.downlink_bits,
            total_energy=self.total_energy(),
        )

    def reset(self) -> None:
        """Reset the accumulated state."""
        self.uplink_count = 0
        self.downlink_count = 0
        self.uplink_bits = 0.0
        self.downlink_bits = 0.0
        self.counts_by_type.clear()
        self.bits_by_type.clear()
        self.energy_by_object.clear()


@dataclass(frozen=True, slots=True)
class LedgerSnapshot:
    """Immutable totals, used to compute per-interval deltas."""

    uplink_count: int
    downlink_count: int
    uplink_bits: float
    downlink_bits: float
    total_energy: float

    def delta(self, later: "LedgerSnapshot") -> "LedgerSnapshot":
        """Per-field difference between this and a later snapshot."""
        return LedgerSnapshot(
            uplink_count=later.uplink_count - self.uplink_count,
            downlink_count=later.downlink_count - self.downlink_count,
            uplink_bits=later.uplink_bits - self.uplink_bits,
            downlink_bits=later.downlink_bits - self.downlink_bits,
            total_energy=later.total_energy - self.total_energy,
        )

    @property
    def total_count(self) -> int:
        """Total number of wireless messages."""
        return self.uplink_count + self.downlink_count
