"""Radio energy model (paper Section 5.3, "Per Object Power Consumption").

The paper measures communication energy with a simple radio model for a
GSM/GPRS device ([8] in the paper):

- transmitter electronics: 150 mW,
- receiver electronics: 120 mW,
- transmit amplifier: 300 mW output at 30 % efficiency (i.e. it *draws*
  1000 mW to radiate 300 mW),
- uplink bandwidth 14 kbps, downlink bandwidth 28 kbps.

That yields roughly 82 uJ/bit to send and 4.3 uJ/bit to receive -- the
paper's "~80 uJ/bit" and "~5 uJ/bit".  Sending is ~20x costlier than
receiving, which is why MobiEyes' broadcast-heavy / uplink-light profile
can still be energy-competitive.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class RadioModel:
    """Energy cost model for the mobile radio."""

    tx_electronics_watts: float = 0.150
    rx_electronics_watts: float = 0.120
    amplifier_output_watts: float = 0.300
    amplifier_efficiency: float = 0.30
    uplink_bits_per_second: float = 14_000.0
    downlink_bits_per_second: float = 28_000.0

    def __post_init__(self) -> None:
        if not 0.0 < self.amplifier_efficiency <= 1.0:
            raise ValueError("amplifier efficiency must be in (0, 1]")
        if self.uplink_bits_per_second <= 0 or self.downlink_bits_per_second <= 0:
            raise ValueError("link bandwidths must be positive")

    @property
    def tx_power_draw_watts(self) -> float:
        """Total electrical draw while transmitting."""
        return self.tx_electronics_watts + self.amplifier_output_watts / self.amplifier_efficiency

    @property
    def tx_joules_per_bit(self) -> float:
        """Energy to transmit one bit uplink."""
        return self.tx_power_draw_watts / self.uplink_bits_per_second

    @property
    def rx_joules_per_bit(self) -> float:
        """Energy to receive one bit downlink."""
        return self.rx_electronics_watts / self.downlink_bits_per_second

    def transmit_energy(self, bits: float) -> float:
        """Joules spent by a device sending ``bits`` uplink."""
        return bits * self.tx_joules_per_bit

    def receive_energy(self, bits: float) -> float:
        """Joules spent by a device receiving ``bits`` downlink."""
        return bits * self.rx_joules_per_bit
