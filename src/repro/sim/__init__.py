"""Time-stepped simulation substrate: clock, engine, RNG, tracing."""

from repro.sim.clock import SECONDS_PER_HOUR, SimulationClock
from repro.sim.engine import PHASE_ORDER, SimulationEngine
from repro.sim.rng import SimulationRng, zipf_weights
from repro.sim.trace import TraceEvent, TraceLog

__all__ = [
    "PHASE_ORDER",
    "SECONDS_PER_HOUR",
    "SimulationClock",
    "SimulationEngine",
    "SimulationRng",
    "TraceEvent",
    "TraceLog",
    "zipf_weights",
]
