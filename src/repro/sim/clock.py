"""Simulation clock.

The paper's evaluation is a time-stepped simulation with a 30-second time
step (Table 1).  The clock tracks both the integer step index and continuous
simulation time in seconds; object motion and dead reckoning use *hours*
because speeds are in miles/hour, so conversion helpers are provided.
"""

from __future__ import annotations

SECONDS_PER_HOUR = 3600.0


class SimulationClock:
    """Discrete time-stepped clock.

    Args:
        step_seconds: simulated wall time per step (paper default: 30 s).
    """

    __slots__ = ("step_seconds", "step")

    def __init__(self, step_seconds: float = 30.0) -> None:
        if step_seconds <= 0:
            raise ValueError(f"step_seconds must be positive, got {step_seconds}")
        self.step_seconds = float(step_seconds)
        self.step = 0

    @property
    def now_seconds(self) -> float:
        """Current simulation time in seconds."""
        return self.step * self.step_seconds

    @property
    def now_hours(self) -> float:
        """Current simulation time in hours (speeds are miles/hour)."""
        return self.now_seconds / SECONDS_PER_HOUR

    @property
    def step_hours(self) -> float:
        """Duration of one step in hours."""
        return self.step_seconds / SECONDS_PER_HOUR

    def advance(self) -> int:
        """Move to the next step; returns the new step index."""
        self.step += 1
        return self.step

    def reset(self) -> None:
        """Reset the accumulated state."""
        self.step = 0

    def __repr__(self) -> str:
        return f"SimulationClock(step={self.step}, t={self.now_seconds:.0f}s)"
