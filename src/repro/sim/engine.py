"""Time-stepped simulation engine.

The engine advances a :class:`~repro.sim.clock.SimulationClock` and invokes
registered *phases* in a fixed order each step.  MobiEyes and the centralized
baselines register the same phase skeleton:

1. ``movement`` -- objects move along their velocity vectors; some objects
   pick new random velocity vectors (the paper's ``nmo`` parameter).
2. ``reporting`` -- objects talk to the server (dead-reckoning reports, grid
   cell change notifications, or raw position reports for the baselines).
3. ``delivery`` -- the transport drains the deferred-message queue: every
   envelope whose modeled latency has elapsed is handed to its receiver in
   deterministic ``(deliver_step, sender, seq)`` order, and the reliability
   layer's retransmit timers fire.  Empty (and free) when no latency is
   modeled -- zero-delay hops complete inline at send time.
4. ``server`` -- the server processes the step (mediation or index work).
5. ``evaluation`` -- query results are (re)computed, either object-side
   (MobiEyes) or server-side (centralized).
6. ``measurement`` -- metric collectors sample the step.

Phases with the same name run in registration order.  Keeping the phase list
explicit (rather than an event queue) mirrors the paper's fixed 30-second
time-step simulation and keeps every run deterministic.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.sim.clock import SimulationClock

PhaseCallback = Callable[[SimulationClock], None]

PHASE_ORDER = ("movement", "reporting", "delivery", "server", "evaluation", "measurement")


class SimulationEngine:
    """Deterministic phase-ordered stepper."""

    def __init__(self, clock: SimulationClock | None = None) -> None:
        self.clock = clock if clock is not None else SimulationClock()
        self._phases: dict[str, list[PhaseCallback]] = {name: [] for name in PHASE_ORDER}

    def register(self, phase: str, callback: PhaseCallback) -> None:
        """Attach ``callback`` to run during ``phase`` every step."""
        if phase not in self._phases:
            raise ValueError(f"unknown phase {phase!r}; expected one of {PHASE_ORDER}")
        self._phases[phase].append(callback)

    def step(self) -> int:
        """Run one full simulation step; returns the completed step index.

        The clock is advanced first, so callbacks observe the step being
        simulated (step 1 is the first simulated interval).
        """
        self.clock.advance()
        for phase in PHASE_ORDER:
            for callback in self._phases[phase]:
                callback(self.clock)
        return self.clock.step

    def run(self, steps: int) -> int:
        """Run ``steps`` consecutive steps; returns the final step index."""
        if steps < 0:
            raise ValueError(f"steps must be non-negative, got {steps}")
        for _ in range(steps):
            self.step()
        return self.clock.step

    def callbacks(self, phase: str) -> Iterable[PhaseCallback]:
        """The callbacks registered for a phase."""
        return tuple(self._phases[phase])
