"""Deterministic random sampling for the simulation.

Table 1 of the paper draws query-radius means and maximum object speeds from
small candidate lists via a *zipf distribution with parameter 0.8*, query
radii from a normal around the chosen mean, and positions / directions
uniformly.  All sampling in the reproduction flows through
:class:`SimulationRng`, a thin seeded wrapper over :mod:`random`, so every
experiment is reproducible from its seed.
"""

from __future__ import annotations

import math
import random
from typing import Sequence, TypeVar

T = TypeVar("T")


def zipf_weights(n: int, exponent: float) -> list[float]:
    """Normalized zipf weights ``p(k) ~ 1 / k**exponent`` for ranks 1..n."""
    if n <= 0:
        raise ValueError("need at least one rank")
    raw = [1.0 / (rank**exponent) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


class SimulationRng:
    """Seeded random source with the samplers the workload model needs."""

    def __init__(self, seed: int | None = 42) -> None:
        self.seed = seed
        self._random = random.Random(seed)

    def fork(self, salt: int) -> "SimulationRng":
        """A new independent stream derived from this one (for sub-systems)."""
        base = self.seed if self.seed is not None else 0
        return SimulationRng(seed=(base * 1_000_003 + salt) & 0x7FFFFFFF)

    # ----------------------------------------------------------- primitives

    def uniform(self, lo: float, hi: float) -> float:
        """Uniform float in [lo, hi]."""
        return self._random.uniform(lo, hi)

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in ``[lo, hi]`` inclusive."""
        return self._random.randint(lo, hi)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def gauss(self, mu: float, sigma: float) -> float:
        """Normal sample with the given mean and sigma."""
        return self._random.gauss(mu, sigma)

    def choice(self, seq: Sequence[T]) -> T:
        """Uniformly pick one element."""
        return self._random.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> list[T]:
        """Uniformly pick k distinct elements."""
        return self._random.sample(seq, k)

    def shuffle(self, items: list[T]) -> None:
        """Shuffle the list in place."""
        self._random.shuffle(items)

    # ------------------------------------------------------ domain samplers

    def weighted_choice(self, candidates: Sequence[T], weights: Sequence[float]) -> T:
        """Pick one candidate with the given (unnormalized) weights."""
        return self._random.choices(list(candidates), weights=list(weights), k=1)[0]

    def zipf_choice(self, candidates: Sequence[T], exponent: float = 0.8) -> T:
        """Pick from ``candidates`` with zipf(exponent) rank weights.

        The first element is the most likely, matching the paper's ordered
        candidate lists, e.g. radii ``{3, 2, 1, 4, 5}`` and speeds
        ``{100, 50, 150, 200, 250}``.
        """
        weights = zipf_weights(len(candidates), exponent)
        return self._random.choices(list(candidates), weights=weights, k=1)[0]

    def truncated_gauss(self, mu: float, sigma: float, lo: float, hi: float | None = None) -> float:
        """Normal sample rejected back into ``[lo, hi]``.

        Used for query radii: the paper draws the radius from a normal with
        sigma = mean / 5; we truncate at a small positive lower bound so a
        radius is always a valid circle.
        """
        for _ in range(64):
            value = self._random.gauss(mu, sigma)
            if value >= lo and (hi is None or value <= hi):
                return value
        return min(max(mu, lo), hi) if hi is not None else max(mu, lo)

    def direction(self) -> float:
        """Uniform random heading in radians."""
        return self._random.uniform(0.0, 2.0 * math.pi)
