"""Lightweight event tracing for simulations.

Tests and debugging sessions register a :class:`TraceLog` with a system to
capture protocol events (broadcasts, uplinks, installs, result changes) as
structured records without coupling the protocol code to any logging
framework.  Tracing is off by default and costs one ``None`` check per event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One recorded event: step index, event kind, and free-form details."""

    step: int
    kind: str
    details: dict[str, Any]


@dataclass
class TraceLog:
    """An append-only in-memory event log."""

    events: list[TraceEvent] = field(default_factory=list)

    def record(self, step: int, kind: str, **details: Any) -> None:
        """Append one event."""
        self.events.append(TraceEvent(step, kind, details))

    def of_kind(self, kind: str) -> list[TraceEvent]:
        """All recorded events of one kind."""
        return [e for e in self.events if e.kind == kind]

    def count(self, kind: str) -> int:
        """Number of recorded events of one kind."""
        return sum(1 for e in self.events if e.kind == kind)

    def clear(self) -> None:
        """Drop all recorded events."""
        self.events.clear()

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)
