"""Soak harness: the service runtime under a continuous ingest stream.

``python -m repro serve`` drives a :class:`~repro.core.MobiEyesService`
for a bounded (``--steps``) or open-ended (``--forever``) run and writes
a ``SOAK_<tag>.json`` artifact.  The harness synthesizes a deterministic
*ingest script* -- per-step external position reports plus optional
query install/remove churn, all drawn from a forked seeded rng -- and
feeds it through the service's queue-driven ingest API, so admission
control, backpressure, and deferral are exercised by real traffic, not
by unit-test stubs.

Elastic grading: with scale-out enabled (``elastic="policy"``,
``"schedule"``, or ``"both"``) the run is accompanied by a
*static-fleet twin* -- an
identical system (same workload, same seed, same ingest script, same
admission knobs) whose shard count never changes -- stepped in lockstep.
The twin is the oracle: elastic scale-out moves state between shards but
must never move results, so ``results_match`` requires every compared
step's query results to be identical between the two runs.  Message
counts are *not* compared (splits and merges broadcast extra partition
directives by design); the improvement section then shows what the
moves bought, as static vs elastic ``imbalance_seconds`` /
``imbalance`` over a *tail window* -- load accrued after the fleet's
last scheduled change -- because lifetime counters would read a
late-spawned shard as cold no matter how well it carries the load now.

Backpressure is graded by accounting, not by luck: every submission ends
applied, rejected, or still queued (``check_accounting``), and because
admission depends only on the queue and the budget -- both identical
across the pair -- the elastic run and its twin admit exactly the same
operations in the same order.
"""

from __future__ import annotations

import json
import time
from dataclasses import replace
from pathlib import Path

from repro.core import MobiEyesConfig, MobiEyesService, MobiEyesSystem
from repro.core.query import QuerySpec
from repro.geometry import Circle, Point, Vector
from repro.sim.rng import SimulationRng
from repro.workload import generate_workload, paper_defaults

#: Script operation kinds (mirrors the service's ticket kinds; removals
#: reference the *script id* of the install they cancel).
OP_UPDATE = "update"
OP_INSTALL = "install"
OP_REMOVE = "remove"


def soak_params(scenario: str, scale: float):
    """Workload parameters for a soak scenario.

    ``skewed`` is the elastic-policy showcase (half the population in the
    left 20% x-strip -- the flash crowd the thermostat exists for);
    ``dense`` and ``paper`` mirror the bench presets.
    """
    from repro.fastpath.bench import dense_params, skewed_params

    if scenario == "skewed":
        return skewed_params(scale)
    if scenario == "dense":
        return dense_params(scale)
    if scenario == "paper":
        params = paper_defaults()
        return params.scaled(scale) if scale != 1.0 else params
    raise ValueError(f"unknown soak scenario {scenario!r}")


def ingest_script_stream(params, workload, rng, rate: int, churn_every: int):
    """Yield one step's worth of ingest operations, forever.

    Deterministic given the rng fork: each step emits ``rate`` external
    position reports (uniform position in the UoD, fresh velocity within
    the object's speed class) and, every ``churn_every`` steps, one
    moving-query install whose removal is scheduled half a churn period
    later.  Removals name the install's *script id*; the runner maps
    script ids to its own service tickets.

    Objects already covered by a focal query keep their role: updates
    pick uniformly over the whole population, so focal and plain objects
    are reported alike.  Hotspot membership is preserved the same way
    the workload generator assigns it -- a hotspot object's reported x
    is compressed into the left ``hotspot_width`` strip -- so sustained
    ingest *sustains* the skew instead of scattering the flash crowd the
    elastic policy exists to chase.
    """
    uod = params.uod
    oids = [obj.oid for obj in workload.objects]
    hot = round(params.num_objects * params.hotspot_fraction)
    hot_oids = frozenset(obj.oid for obj in workload.objects[:hot])
    speed = max(params.max_speeds)
    radius = max(params.radius_means)
    install_seq = 0
    pending_removals: dict[int, list[int]] = {}
    step = 0
    while True:
        ops: list[tuple] = []
        for script_id in pending_removals.pop(step, []):
            ops.append((OP_REMOVE, script_id))
        for _ in range(rate):
            oid = rng.choice(oids)
            pos = Point(rng.uniform(uod.lx, uod.ux), rng.uniform(uod.ly, uod.uy))
            if oid in hot_oids:
                pos = Point(
                    uod.lx + (pos.x - uod.lx) * params.hotspot_width, pos.y
                )
            vel = Vector.from_polar(rng.direction(), rng.uniform(0.0, speed))
            ops.append((OP_UPDATE, oid, pos, vel))
        if churn_every and step > 0 and step % churn_every == 0:
            spec = QuerySpec(oid=rng.choice(oids), region=Circle(0.0, 0.0, radius))
            ops.append((OP_INSTALL, install_seq, spec))
            removal_step = step + max(1, churn_every // 2)
            pending_removals.setdefault(removal_step, []).append(install_seq)
            install_seq += 1
        yield ops
        step += 1


class _ScriptRunner:
    """Feed one service with the shared script, tracking install tickets."""

    def __init__(self, service: MobiEyesService) -> None:
        self.service = service
        self._installs: dict[int, object] = {}

    def submit(self, ops) -> None:
        for op in ops:
            if op[0] == OP_UPDATE:
                _, oid, pos, vel = op
                self.service.submit_update(oid, pos, vel)
            elif op[0] == OP_INSTALL:
                _, script_id, spec = op
                self._installs[script_id] = self.service.install_query(spec)
            else:
                _, script_id = op
                ticket = self._installs[script_id]
                if ticket.rejected:
                    # The install itself was backpressure-rejected; there
                    # is nothing to remove (and both runs agree, because
                    # admission is identical across the pair).
                    continue
                self.service.remove_query(ticket)


def default_elastic_schedule(steps: int, shards: int) -> tuple[tuple, ...]:
    """The bounded-soak schedule: one split, then one merge.

    Shard 0 (the hotspot stripe under the skewed scenario) splits a
    third of the way in; the spawned shard is merged back into its donor
    at the two-thirds mark, so a single bounded run exercises the whole
    spawn/retire lifecycle including the retired-slot bookkeeping.
    """
    split_at = max(2, steps // 3)
    merge_at = max(split_at + 2, (2 * steps) // 3)
    spawned = shards  # first spawn appends a fresh slot
    return ((split_at, "split", 0), (merge_at, "merge", spawned, 0))


def _results_of(system: MobiEyesSystem):
    return {
        int(qid): tuple(sorted(int(oid) for oid in members))
        for qid, members in system.results().items()
    }


def _load_snapshot(system: MobiEyesSystem) -> dict[int, tuple] | None:
    loads = getattr(system.server, "shard_loads", None)
    if loads is None:
        return None
    return {row["shard"]: (row["ops"], row["seconds"]) for row in loads()}


def _tail_rows(system: MobiEyesSystem, base: dict[int, tuple]) -> list[dict]:
    """Per-shard load accrued since the ``base`` snapshot.

    The lifetime counters punish a late-spawned shard: it joined with
    zero accrued ops, so cumulative max/mean reads it as cold no matter
    how well it carries the load *now*.  Differencing against a
    snapshot taken after the fleet settles grades the final layout's
    steady-state balance instead.  Shards spawned after the snapshot
    start from zero; retired shards drop out with the fleet.
    """
    rows = []
    for row in system.server.shard_loads():
        base_ops, base_seconds = base.get(row["shard"], (0, 0.0))
        rows.append(
            {
                "shard": row["shard"],
                "ops": row["ops"] - base_ops,
                "seconds": row["seconds"] - base_seconds,
            }
        )
    return rows


def _balance_section(system: MobiEyesSystem) -> dict | None:
    loads = getattr(system.server, "shard_loads", None)
    if loads is None:
        return None
    from repro.fastpath.bench import load_balance

    rows = loads()
    return {
        "shard_loads": [{**row, "seconds": round(row["seconds"], 4)} for row in rows],
        "balance": load_balance(rows),
        "partition_bounds": list(system.server.partitioner.bounds),
        "partition_order": list(system.server.partitioner.order),
        "partition_epoch": system.server.partition_epoch,
        "retired_shards": list(system.server.retired_shards),
    }


def run_soak(
    steps: int | None = 60,
    engine: str = "reference",
    shards: int = 2,
    scenario: str = "skewed",
    scale: float = 0.02,
    seed: int = 11,
    elastic: str = "policy",
    max_shards: int = 4,
    rebalance_every: int = 5,
    elastic_schedule: tuple[tuple, ...] = (),
    ingest_rate: int = 6,
    ingest_budget: int = 4,
    queue_limit: int = 0,
    query_churn_every: int = 10,
    latency: int = 0,
    jitter: int = 0,
    twin: bool = True,
    compare_every: int = 1,
    report_every: int = 0,
    tag: str = "local",
    out_dir: str | Path | None = None,
    log=print,
) -> dict:
    """Run one soak and return (and write) the ``SOAK_<tag>.json`` report.

    ``steps=None`` runs until interrupted (Ctrl-C finalizes the report
    cleanly -- the run so far is graded and written, not discarded).
    ``elastic`` selects the scale-out mode: ``"policy"`` arms the
    :class:`~repro.core.ElasticPolicy` thermostat (deterministic ``ops``
    metric), ``"schedule"`` applies fixed split/merge triggers
    (``elastic_schedule``, defaulted by :func:`default_elastic_schedule`
    for bounded runs), ``"both"`` combines them -- guaranteed lifecycle
    coverage from the schedule *and* the thermostat's load chasing (the
    CI soak smoke uses this) -- and ``"off"`` runs a fixed fleet with no
    twin.
    """
    if elastic not in ("policy", "schedule", "both", "off"):
        raise ValueError(f"unknown elastic mode {elastic!r}")
    if elastic != "off" and shards < 2:
        raise ValueError("elastic scale-out requires shards >= 2")
    if elastic in ("schedule", "both") and not elastic_schedule:
        if steps is None:
            raise ValueError("--forever needs an explicit elastic schedule")
        elastic_schedule = default_elastic_schedule(steps, shards)

    params = replace(soak_params(scenario, scale), seed=seed)
    rng = SimulationRng(seed)
    workload = generate_workload(params, rng.fork(1))

    config = MobiEyesConfig(
        uod=params.uod,
        alpha=params.alpha,
        step_seconds=params.time_step_seconds,
        base_station_side=params.base_station_side,
        dead_reckoning_threshold=1.0,
        engine=engine,
        shards=shards,
        uplink_latency_steps=latency,
        downlink_latency_steps=latency,
        latency_jitter_steps=jitter,
        latency_seed=seed,
        ingest_budget_per_step=ingest_budget,
        ingest_queue_limit=queue_limit,
    )
    if elastic in ("policy", "both"):
        config = replace(
            config,
            elastic_max_shards=max_shards,
            rebalance_every_steps=rebalance_every,
            rebalance_metric="ops",
        )
    if elastic in ("schedule", "both"):
        config = replace(config, elastic_schedule=tuple(elastic_schedule))
    if elastic == "both":
        # The schedule owns fleet membership; the policy only transfers.
        # A scheduled merge names fixed shard ids and requires them to be
        # stripe-adjacent, so a policy split landing between the pair
        # would (correctly) raise.  Streaks beyond any run length keep
        # the thermostat to boundary slides, which never change ids.
        config = replace(
            config, elastic_split_after=10**9, elastic_merge_after=10**9
        )

    def build(cfg: MobiEyesConfig) -> MobiEyesService:
        build_rng = SimulationRng(seed)
        load = generate_workload(params, build_rng.fork(1))
        system = MobiEyesSystem(
            cfg,
            list(load.objects),
            build_rng.fork(2),
            velocity_changes_per_step=params.velocity_changes_per_step,
        )
        system.install_queries(load.query_specs)
        return MobiEyesService(system)

    grade_twin = twin and elastic != "off"
    service = build(config)
    static = None
    if grade_twin:
        static = build(
            replace(
                config,
                elastic_max_shards=0,
                elastic_schedule=(),
                rebalance_every_steps=0,
            )
        )

    script = ingest_script_stream(
        params, workload, rng.fork(9), ingest_rate, query_churn_every
    )
    runner = _ScriptRunner(service)
    static_runner = _ScriptRunner(static) if static is not None else None

    dest = Path(out_dir if out_dir is not None else Path.cwd())
    dest.mkdir(parents=True, exist_ok=True)
    path = dest / f"SOAK_{tag}.json"

    mismatched_steps: list[int] = []
    compared = 0
    interrupted = False
    done = 0
    started = time.perf_counter()

    # Balance is graded over a *tail window*: lifetime counters punish a
    # late spawn (see _tail_rows), so the improvement verdict compares
    # load accrued after the last scheduled fleet change (or the
    # midpoint, whichever is later) -- the steady state the elastic run
    # actually converged to.
    tail_start: int | None = None
    tail_base: dict | None = None
    if steps is not None and grade_twin:
        tail_start = steps // 2
        if elastic_schedule:
            tail_start = max(tail_start, *(op[0] for op in elastic_schedule))
        if tail_start >= steps:
            tail_start = None

    def report(final: bool) -> dict:
        wall = time.perf_counter() - started
        out: dict = {
            "tag": tag,
            "engine": engine,
            "scenario": scenario,
            "scale": scale,
            "seed": seed,
            "shards": shards,
            "steps": done,
            "bounded_steps": steps,
            "in_progress": not final,
            "interrupted": interrupted,
            "wall_seconds": round(wall, 4),
            "steps_per_sec": round(done / wall, 4) if wall > 0 and done else None,
            "elastic": {
                "mode": elastic,
                "max_shards": (
                    max_shards if elastic in ("policy", "both") else None
                ),
                "rebalance_every": (
                    rebalance_every if elastic in ("policy", "both") else None
                ),
                "schedule": [list(op) for op in elastic_schedule],
            },
            "ingest": {
                "rate_per_step": ingest_rate,
                "budget_per_step": ingest_budget,
                "queue_limit": service.queue_limit,
                "query_churn_every": query_churn_every,
                "counters": service.counters(),
            },
            "latency": {
                "uplink_steps": latency,
                "downlink_steps": latency,
                "jitter_steps": jitter,
            },
            "rebalance_log": list(service.system.rebalance_log),
            "stale_epoch_reroutes": service.system.transport.stale_epoch_reroutes,
        }
        ops = out["rebalance_log"]
        out["splits"] = sum(1 for op in ops if "split" in op["trigger"])
        out["merges"] = sum(1 for op in ops if "merge" in op["trigger"])
        elastic_side = _balance_section(service.system)
        if elastic_side is not None:
            out["fleet"] = elastic_side
        if static is not None:
            out["twin"] = {
                "compared_steps": compared,
                "results_match": not mismatched_steps,
                "first_divergence_step": (
                    mismatched_steps[0] if mismatched_steps else None
                ),
                "counters": static.counters(),
            }
            static_side = _balance_section(static.system)
            if static_side is not None and elastic_side is not None:
                out["twin"]["balance"] = static_side["balance"]
                static_bal = static_side["balance"]
                elastic_bal = elastic_side["balance"]
                window = "lifetime"
                if tail_base is not None:
                    from repro.fastpath.bench import load_balance

                    static_bal = load_balance(
                        _tail_rows(static.system, tail_base["static"])
                    )
                    elastic_bal = load_balance(
                        _tail_rows(service.system, tail_base["elastic"])
                    )
                    window = f"tail:{tail_start}"
                out["improvement"] = {
                    "window": window,
                    "static_imbalance_seconds": static_bal["imbalance_seconds"],
                    "elastic_imbalance_seconds": elastic_bal["imbalance_seconds"],
                    "static_imbalance_ops": static_bal["imbalance"],
                    "elastic_imbalance_ops": elastic_bal["imbalance"],
                    "improved_seconds": elastic_bal["imbalance_seconds"]
                    < static_bal["imbalance_seconds"],
                    "improved_ops": elastic_bal["imbalance"]
                    < static_bal["imbalance"],
                }
        return out

    def write(payload: dict) -> None:
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="ascii")

    try:
        with service:
            try:
                while steps is None or done < steps:
                    ops = next(script)
                    runner.submit(ops)
                    if static_runner is not None:
                        static_runner.submit(ops)
                    service.tick()
                    if static is not None:
                        static.tick()
                        if compare_every and done % compare_every == 0:
                            compared += 1
                            if _results_of(service.system) != _results_of(
                                static.system
                            ):
                                mismatched_steps.append(done + 1)
                    done += 1
                    if tail_start is not None and done == tail_start:
                        tail_base = {
                            "elastic": _load_snapshot(service.system),
                            "static": _load_snapshot(static.system),
                        }
                    if report_every and done % report_every == 0:
                        write(report(final=False))
                        log(
                            f"soak: step {done}"
                            + (f"/{steps}" if steps is not None else "")
                            + f", queue {service.queue_depth}, "
                            f"rejects {service.backpressure_rejects}, "
                            f"fleet {service.system.server.partitioner.num_shards}"
                        )
            except KeyboardInterrupt:
                interrupted = True
                log(f"soak: interrupted at step {done}, finalizing report")
            service.check_accounting()
            if static is not None:
                static.check_accounting()
            final = report(final=True)
    finally:
        if static is not None:
            static.close()

    write(final)
    log(f"soak: wrote {path}")
    if static is not None:
        verdict = "results match" if final["twin"]["results_match"] else "DIVERGED"
        log(
            f"soak: {final['splits']} split(s), {final['merges']} merge(s), "
            f"twin {verdict} over {compared} compared step(s)"
        )
    return final


__all__ = [
    "default_elastic_schedule",
    "ingest_script_stream",
    "run_soak",
    "soak_params",
]
