"""Spatial indexing substrate: a from-scratch R*-tree."""

from repro.spatial.rstar import RStarTree

__all__ = ["RStarTree"]
