"""An R*-tree (Beckmann, Kriegel, Schneider, Seeger; SIGMOD 1990).

The paper's two centralized baselines both index with an R*-tree: the
*object index* approach indexes object positions (points), the *query index*
approach indexes query regions (rectangles).  This is a from-scratch,
dependency-free implementation of the classic algorithm:

- **ChooseSubtree** picks the child needing least *overlap* enlargement at
  the level just above the leaves and least *area* enlargement higher up.
- **OverflowTreatment** performs *forced reinsertion* of the 30% of entries
  farthest from the node's MBR center the first time a node overflows at a
  given level during one insertion, and splits otherwise.
- **Split** chooses the split axis by minimum margin sum over all
  distributions and the distribution by minimum overlap (ties: minimum area).
- **Delete** condenses the tree, reinserting orphaned subtrees at their
  original level.

The tree stores ``(rect, item)`` pairs; ``item`` may be any hashable handle
(object id, query id).  Degenerate rectangles (points) are fine.
"""

from __future__ import annotations

import heapq
import math
from typing import Hashable, Iterator

from repro.geometry import Point, Rect

DEFAULT_MAX_ENTRIES = 32
REINSERT_FRACTION = 0.3


class _Entry:
    """A slot in a node: either an item (leaf) or a child node (internal)."""

    __slots__ = ("rect", "child", "item")

    def __init__(self, rect: Rect, child: "_Node | None" = None, item: Hashable = None) -> None:
        self.rect = rect
        self.child = child
        self.item = item


class _Node:
    __slots__ = ("leaf", "entries")

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        self.entries: list[_Entry] = []

    def mbr(self) -> Rect:
        """Minimum bounding rectangle of this node's entries."""
        rect = self.entries[0].rect
        for entry in self.entries[1:]:
            rect = rect.union(entry.rect)
        return rect


def _enlargement(rect: Rect, other: Rect) -> float:
    """Area growth of ``rect`` needed to also cover ``other``."""
    return rect.union(other).area - rect.area


def _overlap(rect: Rect, others: list[Rect]) -> float:
    """Total intersection area of ``rect`` with each rect in ``others``."""
    total = 0.0
    for other in others:
        inter = rect.intersection(other)
        if inter is not None:
            total += inter.area
    return total


class RStarTree:
    """R*-tree over ``(Rect, item)`` pairs.

    Args:
        max_entries: node capacity ``M`` (>= 4).
        min_fill: minimum fill ratio ``m / M`` in ``(0, 0.5]``.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES, min_fill: float = 0.4) -> None:
        if max_entries < 4:
            raise ValueError(f"max_entries must be >= 4, got {max_entries}")
        if not 0.0 < min_fill <= 0.5:
            raise ValueError(f"min_fill must be in (0, 0.5], got {min_fill}")
        self.max_entries = max_entries
        self.min_entries = max(2, int(math.floor(max_entries * min_fill)))
        self._root = _Node(leaf=True)
        self._height = 1  # number of levels; leaves are level 0
        self._size = 0

    # ------------------------------------------------------------------ API

    def __len__(self) -> int:
        return self._size

    def __contains__(self, item: Hashable) -> bool:
        return any(stored == item for _, stored in self.items())

    def insert(self, rect: Rect, item: Hashable) -> None:
        """Insert ``item`` with bounding rectangle ``rect``."""
        self._insert_entry(_Entry(rect, item=item), level=0, reinserted_levels=set())
        self._size += 1

    def insert_point(self, point: Point, item: Hashable) -> None:
        """Insert a point item (degenerate rectangle)."""
        self.insert(Rect(point.x, point.y, 0.0, 0.0), item)

    def delete(self, rect: Rect, item: Hashable) -> bool:
        """Remove the entry for ``item`` whose stored rect intersects ``rect``.

        Returns True when an entry was found and removed.
        """
        found = self._find_leaf(self._root, rect, item)
        if found is None:
            return False
        leaf, path = found
        leaf.entries = [e for e in leaf.entries if e.item != item]
        self._size -= 1
        self._condense(leaf, path)
        return True

    def update(self, old_rect: Rect, new_rect: Rect, item: Hashable) -> None:
        """Move ``item`` from ``old_rect`` to ``new_rect`` (delete + insert)."""
        if not self.delete(old_rect, item):
            raise KeyError(f"item {item!r} with rect {old_rect!r} not in tree")
        self.insert(new_rect, item)

    def search(self, rect: Rect) -> list[Hashable]:
        """All items whose stored rects intersect ``rect``."""
        out: list[Hashable] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.leaf:
                for entry in node.entries:
                    if entry.rect.intersects(rect):
                        out.append(entry.item)
            else:
                for entry in node.entries:
                    if entry.rect.intersects(rect):
                        stack.append(entry.child)  # type: ignore[arg-type]
        return out

    def search_point(self, point: Point) -> list[Hashable]:
        """All items whose stored rects contain ``point``."""
        return self.search(Rect(point.x, point.y, 0.0, 0.0))

    def nearest(self, point: Point, k: int = 1) -> list[tuple[float, Hashable]]:
        """The ``k`` stored items nearest to ``point``.

        Classic best-first branch-and-bound over node MBRs: a priority
        queue ordered by minimum possible distance; a node is only expanded
        when no unexpanded entry can beat the current k-th best.  Returns
        ``(distance, item)`` pairs ordered by distance (fewer than ``k``
        when the tree is smaller).  Distance to a rectangle item is the
        minimum distance to the rectangle (0 inside).
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if self._size == 0:
            return []
        heap: list[tuple[float, int, _Node | None, Hashable]] = []
        counter = 0  # tie-breaker: heap entries must never compare nodes
        heapq.heappush(heap, (0.0, counter, self._root, None))
        out: list[tuple[float, Hashable]] = []
        while heap and len(out) < k:
            dist, _tie, node, item = heapq.heappop(heap)
            if node is None:
                out.append((dist, item))
                continue
            for entry in node.entries:
                counter += 1
                entry_dist = entry.rect.distance_to_point(point)
                if node.leaf:
                    heapq.heappush(heap, (entry_dist, counter, None, entry.item))
                else:
                    heapq.heappush(heap, (entry_dist, counter, entry.child, None))
        return out

    def items(self) -> Iterator[tuple[Rect, Hashable]]:
        """Iterate over all stored ``(rect, item)`` pairs."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.leaf:
                for entry in node.entries:
                    yield entry.rect, entry.item
            else:
                stack.extend(e.child for e in node.entries)  # type: ignore[misc]

    @property
    def height(self) -> int:
        """Number of levels in the tree (1 when only the root leaf exists)."""
        return self._height

    def check_invariants(self) -> None:
        """Validate structural invariants; raises AssertionError on violation.

        Used by the test suite: uniform leaf depth, MBR containment, and fill
        bounds on non-root nodes.
        """
        leaf_depths: set[int] = set()

        def visit(node: _Node, depth: int, is_root: bool) -> None:
            if not is_root:
                assert len(node.entries) >= self.min_entries, "underfull node"
            assert len(node.entries) <= self.max_entries, "overfull node"
            if node.leaf:
                leaf_depths.add(depth)
                return
            for entry in node.entries:
                assert entry.child is not None
                child_mbr = entry.child.mbr()
                assert entry.rect.contains_rect(child_mbr), "stale MBR"
                visit(entry.child, depth + 1, is_root=False)

        if self._size > 0 or self._root.entries:
            visit(self._root, 0, is_root=True)
            assert len(leaf_depths) <= 1, "non-uniform leaf depth"

    # ------------------------------------------------------------ insertion

    def _node_level(self, path_len: int) -> int:
        """Level of a node reached by a root path of ``path_len`` edges."""
        return self._height - 1 - path_len

    def _insert_entry(self, new_entry: _Entry, level: int, reinserted_levels: set[int]) -> None:
        node, path = self._choose_path(new_entry.rect, level)
        node.entries.append(new_entry)
        self._adjust_path_rects(path, new_entry.rect)
        if len(node.entries) > self.max_entries:
            self._overflow(node, path, level, reinserted_levels)

    def _choose_path(self, rect: Rect, level: int) -> tuple[_Node, list[tuple[_Node, _Entry]]]:
        """Descend from the root to a node at ``level``, recording the path.

        Returns the target node and the list of ``(parent, entry)`` hops
        taken, ordered from root downward.
        """
        node = self._root
        path: list[tuple[_Node, _Entry]] = []
        current_level = self._height - 1
        while current_level > level:
            entry = self._pick_child(node, rect, target_is_leaf=(current_level - 1 == 0))
            path.append((node, entry))
            node = entry.child  # type: ignore[assignment]
            current_level -= 1
        return node, path

    def _pick_child(self, node: _Node, rect: Rect, target_is_leaf: bool) -> _Entry:
        entries = node.entries
        if target_is_leaf:
            # Minimum overlap enlargement; ties by area enlargement then area.
            best = None
            best_key = None
            sibling_rects = [e.rect for e in entries]
            for idx, entry in enumerate(entries):
                enlarged = entry.rect.union(rect)
                others = sibling_rects[:idx] + sibling_rects[idx + 1 :]
                overlap_growth = _overlap(enlarged, others) - _overlap(entry.rect, others)
                key = (overlap_growth, _enlargement(entry.rect, rect), entry.rect.area)
                if best_key is None or key < best_key:
                    best, best_key = entry, key
            return best  # type: ignore[return-value]
        best = None
        best_key = None
        for entry in entries:
            key = (_enlargement(entry.rect, rect), entry.rect.area)
            if best_key is None or key < best_key:
                best, best_key = entry, key
        return best  # type: ignore[return-value]

    def _adjust_path_rects(self, path: list[tuple[_Node, _Entry]], rect: Rect) -> None:
        for _parent, entry in path:
            entry.rect = entry.rect.union(rect)

    def _overflow(
        self,
        node: _Node,
        path: list[tuple[_Node, _Entry]],
        level: int,
        reinserted_levels: set[int],
    ) -> None:
        is_root = not path
        if not is_root and level not in reinserted_levels:
            reinserted_levels.add(level)
            self._reinsert(node, path, level, reinserted_levels)
        else:
            self._split(node, path, level, reinserted_levels)

    def _reinsert(
        self,
        node: _Node,
        path: list[tuple[_Node, _Entry]],
        level: int,
        reinserted_levels: set[int],
    ) -> None:
        center = node.mbr().center
        node.entries.sort(key=lambda e: e.rect.center.distance_squared_to(center))
        count = max(1, int(round(len(node.entries) * REINSERT_FRACTION)))
        evicted = node.entries[-count:]
        del node.entries[-count:]
        self._refresh_path_rects(path)
        # Reinsert farthest-first ("far reinsert" variant of the paper).
        for entry in evicted:
            self._insert_entry(entry, level, reinserted_levels)

    def _refresh_path_rects(self, path: list[tuple[_Node, _Entry]]) -> None:
        """Recompute exact MBRs bottom-up along a root path."""
        for _parent, entry in reversed(path):
            entry.rect = entry.child.mbr()  # type: ignore[union-attr]

    def _split(
        self,
        node: _Node,
        path: list[tuple[_Node, _Entry]],
        level: int,
        reinserted_levels: set[int],
    ) -> None:
        group_a, group_b = self._choose_split(node.entries)
        node.entries = group_a
        sibling = _Node(leaf=node.leaf)
        sibling.entries = group_b

        if not path:
            # Root split: grow the tree by one level.
            new_root = _Node(leaf=False)
            new_root.entries = [
                _Entry(node.mbr(), child=node),
                _Entry(sibling.mbr(), child=sibling),
            ]
            self._root = new_root
            self._height += 1
            return

        parent, entry = path[-1]
        entry.rect = node.mbr()
        parent.entries.append(_Entry(sibling.mbr(), child=sibling))
        self._refresh_path_rects(path[:-1])
        if len(parent.entries) > self.max_entries:
            self._overflow(parent, path[:-1], level + 1, reinserted_levels)

    def _choose_split(self, entries: list[_Entry]) -> tuple[list[_Entry], list[_Entry]]:
        """R* split: pick axis by min margin-sum, distribution by min overlap."""
        m = self.min_entries
        best_axis_entries: list[_Entry] | None = None
        best_margin = math.inf

        for axis in ("x", "y"):
            if axis == "x":
                by_lower = sorted(entries, key=lambda e: (e.rect.lx, e.rect.ux))
                by_upper = sorted(entries, key=lambda e: (e.rect.ux, e.rect.lx))
            else:
                by_lower = sorted(entries, key=lambda e: (e.rect.ly, e.rect.uy))
                by_upper = sorted(entries, key=lambda e: (e.rect.uy, e.rect.ly))
            for ordering in (by_lower, by_upper):
                margin = 0.0
                for k in range(m, len(entries) - m + 1):
                    left = _mbr_of(ordering[:k])
                    right = _mbr_of(ordering[k:])
                    margin += left.perimeter + right.perimeter
                if margin < best_margin:
                    best_margin = margin
                    best_axis_entries = ordering

        assert best_axis_entries is not None
        best_split = None
        best_key = None
        for k in range(m, len(entries) - m + 1):
            left = best_axis_entries[:k]
            right = best_axis_entries[k:]
            left_mbr = _mbr_of(left)
            right_mbr = _mbr_of(right)
            inter = left_mbr.intersection(right_mbr)
            overlap_area = inter.area if inter is not None else 0.0
            key = (overlap_area, left_mbr.area + right_mbr.area)
            if best_key is None or key < best_key:
                best_key = key
                best_split = (list(left), list(right))
        assert best_split is not None
        return best_split

    # ------------------------------------------------------------- deletion

    def _find_leaf(
        self, node: _Node, rect: Rect, item: Hashable, path: list[tuple[_Node, _Entry]] | None = None
    ) -> tuple[_Node, list[tuple[_Node, _Entry]]] | None:
        if path is None:
            path = []
        if node.leaf:
            for entry in node.entries:
                if entry.item == item and entry.rect.intersects(rect):
                    return node, list(path)
            return None
        for entry in node.entries:
            if entry.rect.intersects(rect):
                path.append((node, entry))
                found = self._find_leaf(entry.child, rect, item, path)  # type: ignore[arg-type]
                if found is not None:
                    return found
                path.pop()
        return None

    def _condense(self, node: _Node, path: list[tuple[_Node, _Entry]]) -> None:
        # Collect orphaned entries (with the level they must re-enter at)
        # while removing underfull nodes bottom-up.
        orphans: list[tuple[_Entry, int]] = []
        current = node
        current_path = list(path)
        while current_path:
            parent, entry = current_path[-1]
            level = self._node_level(len(current_path))
            if len(current.entries) < self.min_entries:
                parent.entries.remove(entry)
                orphans.extend((e, level) for e in current.entries)
            else:
                entry.rect = current.mbr() if current.entries else entry.rect
            current = parent
            current_path.pop()
            # refresh the parent's own entry rect on the next loop turn
        # Shrink the root if it lost all but one child.
        while not self._root.leaf and len(self._root.entries) == 1:
            self._root = self._root.entries[0].child  # type: ignore[assignment]
            self._height -= 1
        if not self._root.leaf and not self._root.entries:
            self._root = _Node(leaf=True)
            self._height = 1
        # Reinsert orphans at their original levels (deepest first so the
        # tree height is stable while higher orphans go back in).
        orphans.sort(key=lambda pair: pair[1])
        for entry, level in orphans:
            if entry.child is not None:
                self._reinsert_subtree(entry, level)
            else:
                self._insert_entry(entry, 0, reinserted_levels=set())

    def _reinsert_subtree(self, entry: _Entry, level: int) -> None:
        if level >= self._height - 1:
            # The tree shrank below this subtree's level; reinsert its leaves.
            for rect, item in _subtree_items(entry.child):  # type: ignore[arg-type]
                self._insert_entry(_Entry(rect, item=item), 0, reinserted_levels=set())
        else:
            self._insert_entry(entry, level, reinserted_levels=set())


def _mbr_of(entries: list[_Entry]) -> Rect:
    rect = entries[0].rect
    for entry in entries[1:]:
        rect = rect.union(entry.rect)
    return rect


def _subtree_items(node: _Node) -> Iterator[tuple[Rect, Hashable]]:
    stack = [node]
    while stack:
        current = stack.pop()
        if current.leaf:
            for entry in current.entries:
                yield entry.rect, entry.item
        else:
            stack.extend(e.child for e in current.entries)  # type: ignore[misc]
