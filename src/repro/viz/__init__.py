"""Terminal visualization helpers (world maps, sparklines, charts)."""

from repro.viz.ascii import line_chart, render_world, sparkline

__all__ = ["line_chart", "render_world", "sparkline"]
