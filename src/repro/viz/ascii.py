"""Terminal visualization: world maps, sparklines, and line charts.

Pure-text rendering (no plotting dependencies are available offline) used
by the CLI and handy when debugging protocol behaviour:

- :func:`render_world` draws the grid with object counts, focal objects,
  and monitoring-region overlays;
- :func:`sparkline` compresses a numeric series into one line of block
  characters;
- :func:`line_chart` draws a small multi-series chart for experiment
  columns.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

SPARK_BLOCKS = "▁▂▃▄▅▆▇█"
SERIES_MARKS = "*o+x#@%&"


def sparkline(values: Sequence[float]) -> str:
    """One-line block-character rendering of a numeric series."""
    finite = [v for v in values if v is not None and math.isfinite(v)]
    if not finite:
        return ""
    lo, hi = min(finite), max(finite)
    span = hi - lo
    out = []
    for value in values:
        if value is None or not math.isfinite(value):
            out.append(" ")
            continue
        if span == 0:
            out.append(SPARK_BLOCKS[0])
        else:
            idx = int((value - lo) / span * (len(SPARK_BLOCKS) - 1))
            out.append(SPARK_BLOCKS[idx])
    return "".join(out)


def line_chart(
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    height: int = 12,
    logy: bool = False,
) -> str:
    """A small ASCII chart of one or more equally-long series.

    Args:
        series: label -> values (all series share the x positions 0..n-1).
        width/height: canvas size in characters.
        logy: plot on a log10 y-axis (values must be positive).
    """
    if not series:
        raise ValueError("need at least one series")
    lengths = {len(values) for values in series.values()}
    if len(lengths) != 1:
        raise ValueError("all series must have the same length")
    (n,) = lengths
    if n == 0:
        raise ValueError("series are empty")

    def transform(v: float) -> float:
        if logy:
            if v <= 0:
                raise ValueError("log-scale chart requires positive values")
            return math.log10(v)
        return v

    flat = [transform(v) for values in series.values() for v in values]
    lo, hi = min(flat), max(flat)
    span = hi - lo or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for idx, (label, values) in enumerate(series.items()):
        mark = SERIES_MARKS[idx % len(SERIES_MARKS)]
        for i, value in enumerate(values):
            x = 0 if n == 1 else round(i / (n - 1) * (width - 1))
            y_frac = (transform(value) - lo) / span
            y = (height - 1) - round(y_frac * (height - 1))
            canvas[y][x] = mark
    top_label = f"{10**hi:.3g}" if logy else f"{hi:.3g}"
    bottom_label = f"{10**lo:.3g}" if logy else f"{lo:.3g}"
    lines = [f"{top_label:>10} ┤" + "".join(canvas[0])]
    for row in canvas[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{bottom_label:>10} ┤" + "".join(canvas[-1]))
    legend = "   ".join(
        f"{SERIES_MARKS[i % len(SERIES_MARKS)]} {label}" for i, label in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def render_world(system, max_cols: int = 60) -> str:
    """ASCII map of a :class:`~repro.core.system.MobiEyesSystem`.

    Each character is one grid cell (down-sampled when the grid is wider
    than ``max_cols``): digits count the objects in the cell (``+`` for
    10 or more), ``F`` marks a cell holding a focal object, and ``·``
    marks empty cells inside some query's monitoring region (``.``
    otherwise).  Row 0 (the UoD's southern edge) is printed at the bottom.
    """
    grid = system.grid
    stride = max(1, math.ceil(grid.n_cols / max_cols))
    cols = math.ceil(grid.n_cols / stride)
    rows = math.ceil(grid.n_rows / stride)

    counts = [[0] * cols for _ in range(rows)]
    focal = [[False] * cols for _ in range(rows)]
    monitored = [[False] * cols for _ in range(rows)]

    focal_ids = set(system.server.fot.ids())
    for obj in system.motion.objects:
        i, j = grid.cell_index(obj.pos)
        counts[j // stride][i // stride] += 1
        if obj.oid in focal_ids:
            focal[j // stride][i // stride] = True
    for entry in system.server.sqt.entries():
        for (i, j) in entry.mon_region:
            monitored[j // stride][i // stride] = True

    lines = []
    for j in reversed(range(rows)):
        chars = []
        for i in range(cols):
            if focal[j][i]:
                chars.append("F")
            elif counts[j][i] >= 10:
                chars.append("+")
            elif counts[j][i] > 0:
                chars.append(str(counts[j][i]))
            elif monitored[j][i]:
                chars.append("·")
            else:
                chars.append(".")
        lines.append("".join(chars))
    lines.append("")
    lines.append(
        f"{grid.n_cols}x{grid.n_rows} cells (alpha={grid.alpha:g}), "
        f"{len(system.motion)} objects, {len(system.server.sqt)} queries; "
        "F=focal cell, digits=objects, ·=monitored empty cell"
    )
    return "\n".join(lines)
