"""Workload generation: Table 1 parameters, objects, queries, filters."""

from repro.workload.filters import (
    CLASS_PROPERTY,
    CLASS_SPACE,
    ClassThresholdFilter,
    filter_for_selectivity,
)
from repro.workload.generator import (
    Workload,
    generate_objects,
    generate_queries,
    generate_workload,
)
from repro.workload.params import (
    SimulationParameters,
    bench_defaults,
    bench_scale_from_env,
    paper_defaults,
)

__all__ = [
    "CLASS_PROPERTY",
    "CLASS_SPACE",
    "ClassThresholdFilter",
    "SimulationParameters",
    "Workload",
    "bench_defaults",
    "bench_scale_from_env",
    "filter_for_selectivity",
    "generate_objects",
    "generate_queries",
    "generate_workload",
    "paper_defaults",
]
