"""Query filters used by the Table 1 workload.

The paper fixes query selectivity at 0.75: a random 75 % of objects satisfy
any given query's filter.  We realize this with a ``class`` property drawn
uniformly from ``[0, 100)`` per object and a threshold filter -- objects
with ``class < 75`` pass, independent of position, exactly a 0.75
selectivity in expectation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

CLASS_PROPERTY = "class"
CLASS_SPACE = 100


@dataclass(frozen=True, slots=True)
class ClassThresholdFilter:
    """Passes objects whose ``class`` property is below ``threshold``.

    With object classes uniform in ``[0, CLASS_SPACE)`` the selectivity is
    ``threshold / CLASS_SPACE``.
    """

    threshold: int = 75

    def __post_init__(self) -> None:
        if not 0 <= self.threshold <= CLASS_SPACE:
            raise ValueError(f"threshold must be in [0, {CLASS_SPACE}], got {self.threshold}")

    @property
    def selectivity(self) -> float:
        """Fraction of a uniform population passing this filter."""
        return self.threshold / CLASS_SPACE

    def matches(self, props: Mapping[str, Any]) -> bool:
        """Whether an object with these properties passes the filter."""
        return props.get(CLASS_PROPERTY, CLASS_SPACE) < self.threshold


def filter_for_selectivity(selectivity: float) -> ClassThresholdFilter:
    """The threshold filter with the given selectivity (paper: 0.75)."""
    if not 0.0 <= selectivity <= 1.0:
        raise ValueError(f"selectivity must be in [0, 1], got {selectivity}")
    return ClassThresholdFilter(threshold=round(selectivity * CLASS_SPACE))
