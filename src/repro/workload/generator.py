"""Workload generation per the paper's simulation setup (Section 5.1).

Objects are placed uniformly in the universe of discourse, assigned a
maximum speed from the zipf-weighted speed list, an initial random velocity
(uniform direction, speed uniform in ``[0, max_speed]``), and a uniform
``class`` property for filter selectivity.  Focal objects of queries are
drawn uniformly without replacement by default (or with a zipf skew for the
query-grouping experiments); each query's radius is normal around a
zipf-chosen mean with sigma = mean / 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.query import QuerySpec
from repro.geometry import Circle, Point, Vector
from repro.mobility.model import MovingObject
from repro.sim.rng import SimulationRng, zipf_weights
from repro.workload.filters import CLASS_PROPERTY, CLASS_SPACE, filter_for_selectivity
from repro.workload.params import SimulationParameters

MIN_QUERY_RADIUS = 0.05  # miles; keeps normal-sampled radii positive


@dataclass(frozen=True, slots=True)
class Workload:
    """A generated population and query set."""

    params: SimulationParameters
    objects: tuple[MovingObject, ...]
    query_specs: tuple[QuerySpec, ...]


def generate_objects(params: SimulationParameters, rng: SimulationRng) -> list[MovingObject]:
    """The object population of Table 1.

    With ``hotspot_fraction > 0`` the first ``round(N * fraction)`` objects
    form a flash crowd: their drawn x coordinate is compressed affinely
    into the left ``hotspot_width`` strip of the UoD *after* the draw, so
    the RNG stream is byte-identical to the uniform workload (turning the
    hotspot on or off never perturbs speeds, directions, or classes).
    """
    uod = params.uod
    hot = round(params.num_objects * params.hotspot_fraction)
    objects: list[MovingObject] = []
    for oid in range(params.num_objects):
        pos = Point(rng.uniform(uod.lx, uod.ux), rng.uniform(uod.ly, uod.uy))
        if oid < hot:
            pos = Point(uod.lx + (pos.x - uod.lx) * params.hotspot_width, pos.y)
        max_speed = rng.zipf_choice(params.max_speeds, params.speed_zipf_exponent)
        vel = Vector.from_polar(rng.direction(), rng.uniform(0.0, max_speed))
        objects.append(
            MovingObject(
                oid=oid,
                pos=pos,
                vel=vel,
                max_speed=max_speed,
                props={CLASS_PROPERTY: rng.randint(0, CLASS_SPACE - 1)},
            )
        )
    return objects


def generate_queries(
    params: SimulationParameters,
    rng: SimulationRng,
    focal_skew: float | None = None,
) -> list[QuerySpec]:
    """Query specs over an (implied) object population of Table 1 size.

    Args:
        focal_skew: ``None`` draws focal objects uniformly without
            replacement (every query has a distinct focal object, the
            paper's default).  A float draws them *with* replacement from a
            zipf(focal_skew) over object ids, producing the skewed
            query-per-focal distribution the grouping optimization targets.
    """
    query_filter = filter_for_selectivity(params.query_selectivity)
    if focal_skew is None:
        focal_ids = rng.sample(range(params.num_objects), params.num_queries)
    else:
        weights = zipf_weights(params.num_objects, focal_skew)
        ids = list(range(params.num_objects))
        focal_ids = [rng.weighted_choice(ids, weights) for _ in range(params.num_queries)]
    specs: list[QuerySpec] = []
    for oid in focal_ids:
        mean = rng.zipf_choice(params.radius_means, params.radius_zipf_exponent)
        radius = rng.truncated_gauss(
            mean, mean * params.radius_sigma_fraction, lo=MIN_QUERY_RADIUS
        )
        radius *= params.radius_factor
        specs.append(QuerySpec(oid=oid, region=Circle(0.0, 0.0, radius), filter=query_filter))
    return specs


def generate_workload(
    params: SimulationParameters,
    rng: SimulationRng | None = None,
    focal_skew: float | None = None,
) -> Workload:
    """Objects plus query specs from one seeded stream."""
    rng = rng if rng is not None else SimulationRng(params.seed)
    objects = generate_objects(params, rng)
    specs = generate_queries(params, rng, focal_skew=focal_skew)
    return Workload(params=params, objects=tuple(objects), query_specs=tuple(specs))
