"""Simulation parameters (paper Table 1) and scaling for CI-sized runs.

Paper defaults: a 100,000 mi^2 square universe, 10,000 objects, 1,000
queries, 1,000 velocity-vector changes per 30 s step, grid cell side 5 mi,
base-station side 10 mi, query-radius means {3, 2, 1, 4, 5} mi picked by a
zipf(0.8) over that ordered list (std. dev. = mean / 5), query selectivity
0.75, and max speeds {100, 50, 150, 200, 250} mph picked by a zipf(0.8).

Full-scale runs are expensive in pure Python, so experiments default to a
*scaled* parameter set that preserves the paper's densities and ratios:
counts shrink by the scale factor and the area shrinks with them, keeping
objects/mi^2, queries/object, and velocity-change ratio fixed.  Set the
environment variable ``REPRO_SCALE`` (a float, or ``paper`` for 1.0) to
override the benchmark scale.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, replace

from repro.geometry import Rect

PAPER_AREA_SQ_MILES = 100_000.0
DEFAULT_BENCH_SCALE = 0.06


@dataclass(frozen=True, slots=True)
class SimulationParameters:
    """One row of Table 1 plus the derived universe of discourse."""

    time_step_seconds: float = 30.0
    alpha: float = 5.0
    num_objects: int = 10_000
    num_queries: int = 1_000
    velocity_changes_per_step: int = 1_000
    area_sq_miles: float = PAPER_AREA_SQ_MILES
    base_station_side: float = 10.0
    radius_means: tuple[float, ...] = (3.0, 2.0, 1.0, 4.0, 5.0)
    radius_zipf_exponent: float = 0.8
    radius_sigma_fraction: float = 0.2  # std dev = mean / 5
    query_selectivity: float = 0.75
    max_speeds: tuple[float, ...] = (100.0, 50.0, 150.0, 200.0, 250.0)
    speed_zipf_exponent: float = 0.8
    radius_factor: float = 1.0  # Fig. 12's multiplier on query radii
    # Flash-crowd skew: this fraction of the population is squeezed into a
    # vertical strip covering ``hotspot_width`` of the x-axis at the left
    # edge of the UoD.  0.0 (the default) is the paper's uniform placement.
    # The strip is vertical on purpose: the sharded server partitions the
    # grid into column stripes, so an x-axis hotspot lands on few shards
    # and actually skews per-shard load.
    hotspot_fraction: float = 0.0
    hotspot_width: float = 0.2
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_objects <= 0 or self.num_queries < 0:
            raise ValueError("need a positive object population")
        if not 0.0 <= self.hotspot_fraction <= 1.0:
            raise ValueError("hotspot_fraction must lie in [0, 1]")
        if not 0.0 < self.hotspot_width <= 1.0:
            raise ValueError("hotspot_width must lie in (0, 1]")
        if self.num_queries > self.num_objects:
            raise ValueError("cannot have more focal objects than objects")
        if self.velocity_changes_per_step > self.num_objects:
            raise ValueError("cannot change more velocity vectors than objects")
        if self.area_sq_miles <= 0:
            raise ValueError("area must be positive")
        if self.radius_factor <= 0:
            raise ValueError("radius_factor must be positive")

    @property
    def side_miles(self) -> float:
        """Side of the square universe of discourse."""
        return math.sqrt(self.area_sq_miles)

    @property
    def uod(self) -> Rect:
        """The universe-of-discourse rectangle."""
        side = self.side_miles
        return Rect(0.0, 0.0, side, side)

    def scaled(self, scale: float) -> "SimulationParameters":
        """Shrink counts and area together, preserving densities.

        ``scale=1`` is the paper's setup; ``scale=0.05`` yields 500 objects,
        50 queries, 50 velocity changes per step on 5,000 mi^2.
        """
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        num_objects = max(1, round(self.num_objects * scale))
        return replace(
            self,
            num_objects=num_objects,
            num_queries=min(num_objects, max(1, round(self.num_queries * scale))),
            velocity_changes_per_step=min(
                num_objects, max(1, round(self.velocity_changes_per_step * scale))
            ),
            area_sq_miles=self.area_sq_miles * scale,
        )


def paper_defaults() -> SimulationParameters:
    """Table 1 defaults, full paper scale."""
    return SimulationParameters()


def bench_scale_from_env(default: float = DEFAULT_BENCH_SCALE) -> float:
    """The benchmark scale factor, from ``REPRO_SCALE`` when set."""
    raw = os.environ.get("REPRO_SCALE")
    if raw is None:
        return default
    if raw.strip().lower() == "paper":
        return 1.0
    scale = float(raw)
    if scale <= 0:
        raise ValueError(f"REPRO_SCALE must be positive, got {raw!r}")
    return scale


def bench_defaults() -> SimulationParameters:
    """Scaled-down Table 1 defaults used by the benchmark harness."""
    return paper_defaults().scaled(bench_scale_from_env())
