"""Shared fixtures and world-building helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core import MobiEyesConfig, MobiEyesSystem, PropagationMode, QuerySpec, TrueFilter
from repro.geometry import Circle, Point, Rect, Vector
from repro.mobility import MovingObject
from repro.sim import SimulationRng


def make_object(oid, x, y, vx=0.0, vy=0.0, max_speed=100.0, props=None):
    return MovingObject(
        oid=oid,
        pos=Point(float(x), float(y)),
        vel=Vector(float(vx), float(vy)),
        max_speed=max_speed,
        props=props or {},
    )


def make_system(
    objects,
    uod=Rect(0, 0, 50, 50),
    alpha=5.0,
    bs_side=10.0,
    propagation=PropagationMode.EAGER,
    velocity_changes_per_step=0,
    seed=7,
    loss=None,
    motion=None,
    **config_kwargs,
):
    config = MobiEyesConfig(
        uod=uod,
        alpha=alpha,
        base_station_side=bs_side,
        propagation=propagation,
        **config_kwargs,
    )
    return MobiEyesSystem(
        config,
        objects,
        SimulationRng(seed),
        velocity_changes_per_step=velocity_changes_per_step,
        track_accuracy=True,
        loss=loss,
        motion=motion,
    )


def circle_query(oid, radius, query_filter=None):
    return QuerySpec(
        oid=oid, region=Circle(0, 0, radius), filter=query_filter or TrueFilter()
    )


@pytest.fixture
def small_world():
    """A deterministic five-object world: a focal object in the middle and
    targets at known distances."""
    objects = [
        make_object(0, 25, 25),          # focal candidate
        make_object(1, 26, 25),          # 1 mile east (inside r=2)
        make_object(2, 25, 28),          # 3 miles north (outside r=2)
        make_object(3, 45, 45),          # far away
        make_object(4, 24, 24),          # sqrt(2) away (inside r=2)
    ]
    return make_system(objects)
