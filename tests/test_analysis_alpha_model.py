"""Tests for the analytical optimal-alpha messaging model."""

import math

import pytest

from repro.analysis import AlphaCostModel
from repro.workload import paper_defaults


@pytest.fixture
def model():
    return AlphaCostModel.from_params(paper_defaults())


class TestModelPieces:
    def test_cell_crossing_rate_inverse_in_alpha(self, model):
        assert model.cell_crossing_rate(2.0) == pytest.approx(
            2.0 * model.cell_crossing_rate(4.0)
        )

    def test_cell_crossing_rate_formula(self, model):
        # (4/pi) * E[v] / alpha per hour, converted to seconds.
        alpha = 5.0
        expected = (4.0 / math.pi) * model.mean_speed / alpha / 3600.0
        assert model.cell_crossing_rate(alpha) == pytest.approx(expected)

    def test_invalid_alpha(self, model):
        with pytest.raises(ValueError):
            model.cell_crossing_rate(0.0)

    def test_focal_velocity_reports(self, model):
        # nmo * (nmq / no) / ts = 1000 * 0.1 / 30
        assert model.focal_velocity_reports_per_second() == pytest.approx(100.0 / 30.0)

    def test_stations_grow_with_alpha(self, model):
        assert model.stations_per_monitoring_region(16.0) > model.stations_per_monitoring_region(2.0)

    def test_widened_region_needs_more_stations(self, model):
        assert model.stations_per_monitoring_region(
            5.0, widened=5.0
        ) > model.stations_per_monitoring_region(5.0)


class TestModelShape:
    def test_uplink_decreasing_in_alpha(self, model):
        alphas = [0.5, 1, 2, 4, 8, 16]
        rates = [model.uplink_rate(a) for a in alphas]
        assert rates == sorted(rates, reverse=True)

    def test_downlink_increasing_for_large_alpha(self, model):
        assert model.downlink_rate(32.0) > model.downlink_rate(8.0)

    def test_total_is_u_shaped(self, model):
        alphas = [0.5 * 1.3**k for k in range(16)]
        totals = [model.total_rate(a) for a in alphas]
        best = totals.index(min(totals))
        assert 0 < best < len(alphas) - 1  # interior minimum

    def test_optimal_alpha_in_reasonable_range(self, model):
        alpha, rate = model.optimal_alpha()
        assert 2.0 <= alpha <= 20.0  # the paper reports an ideal range [4, 6]
        assert rate > 0

    def test_lazy_mode_cheaper_uplink(self):
        params = paper_defaults()
        eager = AlphaCostModel.from_params(params, lazy=False)
        lazy = AlphaCostModel.from_params(params, lazy=True)
        assert lazy.uplink_rate(5.0) < eager.uplink_rate(5.0)
        assert lazy.downlink_rate(5.0) == eager.downlink_rate(5.0)

    def test_more_queries_move_optimum_left(self):
        """With more queries the broadcast term grows, favoring smaller
        monitoring regions (smaller alpha) -- the trend behind Fig. 4's
        per-curve minima."""
        from dataclasses import replace

        few = AlphaCostModel.from_params(replace(paper_defaults(), num_queries=100))
        many = AlphaCostModel.from_params(replace(paper_defaults(), num_queries=1000))
        assert many.optimal_alpha()[0] <= few.optimal_alpha()[0]


class TestFromParams:
    def test_mean_speed_is_half_zipf_mean_max(self):
        params = paper_defaults()
        model = AlphaCostModel.from_params(params)
        # zipf(0.8) over (100, 50, 150, 200, 250) weights the head most.
        assert 50.0 <= model.mean_speed <= 125.0

    def test_radius_factor_respected(self):
        from dataclasses import replace

        base = AlphaCostModel.from_params(paper_defaults())
        doubled = AlphaCostModel.from_params(replace(paper_defaults(), radius_factor=2.0))
        assert doubled.mean_radius == pytest.approx(2.0 * base.mean_radius)
