"""Tests for the analytical expected-LQT-size model."""

import pytest

from repro.analysis import LqtSizeModel
from repro.experiments.runner import run_mobieyes, with_queries
from repro.workload import paper_defaults


@pytest.fixture
def model():
    return LqtSizeModel.from_params(paper_defaults())


class TestClosedForm:
    def test_linear_in_queries(self, model):
        assert model.expected_lqt_size(5.0, 1000) == pytest.approx(
            10 * model.expected_lqt_size(5.0, 100)
        )

    def test_grows_superlinearly_in_alpha(self, model):
        small = model.expected_lqt_size(2.0)
        mid = model.expected_lqt_size(4.0)
        large = model.expected_lqt_size(8.0)
        assert large - mid > mid - small  # convex growth (Fig. 10)

    def test_fraction_capped_at_one(self, model):
        # A monitoring region larger than the universe covers everyone.
        huge = model.expected_lqt_size(10_000.0)
        assert huge == pytest.approx(model.num_queries * model.selectivity)

    def test_paper_defaults_stay_small(self, model):
        # The paper observes LQT sizes below ~10 at the default setup.
        assert model.expected_lqt_size(5.0) < 10.0

    def test_invalid_alpha(self, model):
        with pytest.raises(ValueError):
            model.monitoring_footprint_area(0.0)

    def test_radius_grows_footprint(self):
        from dataclasses import replace

        base = LqtSizeModel.from_params(paper_defaults())
        bigger = LqtSizeModel.from_params(replace(paper_defaults(), radius_factor=2.0))
        assert bigger.expected_lqt_size(5.0) > base.expected_lqt_size(5.0)


class TestAgainstSimulation:
    def test_matches_simulated_lqt_within_factor(self):
        params = paper_defaults().scaled(0.02)
        model = LqtSizeModel.from_params(params)
        for alpha in (2.5, 5.0, 10.0):
            system = run_mobieyes(
                with_queries(params, params.num_queries), steps=10, warmup=2, alpha=alpha
            )
            simulated = system.metrics.mean_lqt_size()
            predicted = model.expected_lqt_size(alpha)
            assert predicted / 2.5 <= simulated <= predicted * 2.5, (
                f"alpha={alpha}: model {predicted:.2f} vs simulated {simulated:.2f}"
            )
