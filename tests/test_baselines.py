"""Tests for the centralized baselines (index engines + system)."""

import pytest

from repro.baselines import (
    BITS_POSITION_REPORT,
    BITS_STATE_REPORT,
    CentralOptimalReporting,
    CentralizedConfig,
    CentralizedSystem,
    IndexingMode,
    NaiveReporting,
    ObjectIndexEngine,
    QueryIndexEngine,
    ReportingMode,
)
from repro.core import MovingQuery, TrueFilter
from repro.geometry import Circle, Point, Rect, Vector
from repro.sim import SimulationRng
from repro.workload import generate_workload, paper_defaults

from tests.conftest import circle_query, make_object


def make_centralized(objects, reporting=ReportingMode.NAIVE, indexing=IndexingMode.OBJECTS,
                     velocity_changes_per_step=0, seed=7, **kwargs):
    config = CentralizedConfig(
        uod=Rect(0, 0, 50, 50), reporting=reporting, indexing=indexing, **kwargs
    )
    return CentralizedSystem(
        config,
        objects,
        SimulationRng(seed),
        velocity_changes_per_step=velocity_changes_per_step,
        track_accuracy=True,
    )


def query(qid, oid, r):
    return MovingQuery(qid=qid, oid=oid, region=Circle(0, 0, r), filter=TrueFilter())


class TestObjectIndexEngine:
    def test_insert_and_evaluate(self):
        engine = ObjectIndexEngine()
        objs = {i: make_object(i, i * 2.0, 0.0) for i in range(5)}
        positions = {i: o.pos for i, o in objs.items()}
        for i, pos in positions.items():
            engine.apply_position(i, pos)
        results = engine.evaluate({1: query(1, 0, 4.5)}, positions, objs)
        assert results[1] == {1, 2}  # at x=2 and x=4; focal excluded

    def test_position_update_moves_object(self):
        engine = ObjectIndexEngine()
        objs = {0: make_object(0, 0, 0), 1: make_object(1, 1, 0)}
        engine.apply_position(0, Point(0, 0))
        engine.apply_position(1, Point(1, 0))
        engine.apply_position(1, Point(40, 40))
        positions = {0: Point(0, 0), 1: Point(40, 40)}
        results = engine.evaluate({1: query(1, 0, 5.0)}, positions, objs)
        assert results[1] == set()

    def test_same_position_noop(self):
        engine = ObjectIndexEngine()
        engine.apply_position(0, Point(1, 1))
        engine.apply_position(0, Point(1, 1))
        assert len(engine) == 1

    def test_filter_applied(self):
        class OnlyEven:
            def matches(self, props):
                return props.get("n", 1) % 2 == 0

        engine = ObjectIndexEngine()
        objs = {
            i: make_object(i, i * 1.0, 0.0, props={"n": i}) for i in range(4)
        }
        for i, o in objs.items():
            engine.apply_position(i, o.pos)
        positions = {i: o.pos for i, o in objs.items()}
        q = MovingQuery(qid=1, oid=0, region=Circle(0, 0, 10), filter=OnlyEven())
        assert engine.evaluate({1: q}, positions, objs)[1] == {2}


class TestQueryIndexEngine:
    def test_probe_maintains_results_differentially(self):
        engine = QueryIndexEngine()
        focal = make_object(0, 10, 10)
        target = make_object(1, 11, 10)
        engine.add_query(query(1, 0, 2.0), focal.pos)
        engine.probe(1, target.pos, target)
        assert engine.evaluate({1: None}, {}, {})[1] == {1}
        engine.probe(1, Point(30, 30), target)
        assert engine.evaluate({1: None}, {}, {})[1] == set()

    def test_focal_update_moves_query_rect(self):
        engine = QueryIndexEngine()
        focal = make_object(0, 10, 10)
        target = make_object(1, 30, 30)
        engine.add_query(query(1, 0, 2.0), focal.pos)
        engine.update_focal(0, Point(29, 30))
        engine.probe(1, target.pos, target)
        assert engine.evaluate({1: None}, {}, {})[1] == {1}

    def test_remove_query_cleans_state(self):
        engine = QueryIndexEngine()
        focal = make_object(0, 10, 10)
        target = make_object(1, 11, 10)
        engine.add_query(query(1, 0, 2.0), focal.pos)
        engine.probe(1, target.pos, target)
        engine.remove_query(1)
        assert len(engine) == 0
        assert engine.evaluate({}, {}, {}) == {}

    def test_focal_never_its_own_target(self):
        engine = QueryIndexEngine()
        focal = make_object(0, 10, 10)
        engine.add_query(query(1, 0, 2.0), focal.pos)
        engine.probe(0, focal.pos, focal)
        assert engine.evaluate({1: None}, {}, {})[1] == set()

    def test_is_focal(self):
        engine = QueryIndexEngine()
        engine.add_query(query(1, 0, 2.0), Point(0, 0))
        assert engine.is_focal(0)
        assert not engine.is_focal(1)


class TestReportingPolicies:
    def test_naive_reports_on_movement_only(self):
        policy = NaiveReporting()
        obj = make_object(0, 5, 5)
        first = policy.report(obj, 0.0)
        assert first is not None
        assert first[1] == BITS_POSITION_REPORT
        assert policy.report(obj, 0.5) is None  # did not move
        obj.pos = Point(6, 5)
        assert policy.report(obj, 1.0) is not None

    def test_central_optimal_initial_report_then_silence(self):
        policy = CentralOptimalReporting(threshold=0.0)
        obj = make_object(0, 5, 5, vx=10.0)
        first = policy.report(obj, 0.0)
        assert first is not None
        assert first[1] == BITS_STATE_REPORT
        # Linear motion follows the prediction: no further reports.
        obj.pos = Point(10, 5)
        obj.recorded_at = 0.5
        assert policy.report(obj, 0.5) is None

    def test_central_optimal_reports_significant_change(self):
        policy = CentralOptimalReporting(threshold=0.1)
        obj = make_object(0, 5, 5, vx=10.0)
        policy.report(obj, 0.0)
        obj.pos = Point(5, 3)  # 2 miles off the prediction
        assert policy.report(obj, 0.0) is not None

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            CentralOptimalReporting(threshold=-1)


class TestCentralizedSystem:
    def build_world(self):
        return [
            make_object(0, 25, 25),
            make_object(1, 26, 25, vx=30.0),
            make_object(2, 25, 28, vy=-20.0),
            make_object(3, 45, 45),
        ]

    @pytest.mark.parametrize("indexing", [IndexingMode.OBJECTS, IndexingMode.QUERIES])
    @pytest.mark.parametrize(
        "reporting", [ReportingMode.NAIVE, ReportingMode.CENTRAL_OPTIMAL]
    )
    def test_results_match_oracle(self, indexing, reporting):
        system = make_centralized(self.build_world(), reporting=reporting, indexing=indexing)
        qid = system.install_query(circle_query(0, 3.0))
        for _ in range(10):
            system.step()
            assert system.result(qid) == system.oracle_results()[qid]

    def test_unknown_focal_rejected(self):
        system = make_centralized(self.build_world())
        with pytest.raises(KeyError):
            system.install_query(circle_query(99, 1.0))

    def test_remove_query(self):
        system = make_centralized(self.build_world(), indexing=IndexingMode.QUERIES)
        qid = system.install_query(circle_query(0, 3.0))
        system.run(2)
        system.remove_query(qid)
        system.run(2)
        assert qid not in system.results()

    def test_naive_messaging_rate(self):
        # Every moving object reports every step; stationary ones stay
        # silent after their first (initial-position) report.
        system = make_centralized(self.build_world(), reporting=ReportingMode.NAIVE)
        system.install_query(circle_query(0, 3.0))
        system.run(10)
        per_step = system.metrics.messages_per_second() * 30.0
        assert 2.0 <= per_step <= 4.0  # objects 1 and 2 move; 0 and 3 do not

    def test_central_optimal_quieter_than_naive(self):
        params = paper_defaults().scaled(0.01)
        workload = generate_workload(params, SimulationRng(5))

        def build(reporting):
            config = CentralizedConfig(uod=params.uod, reporting=reporting)
            objs = [
                make_object(o.oid, o.pos.x, o.pos.y, o.vel.x, o.vel.y, o.max_speed)
                for o in workload.objects
            ]
            system = CentralizedSystem(
                config,
                objs,
                SimulationRng(6),
                velocity_changes_per_step=params.velocity_changes_per_step,
            )
            system.install_queries(workload.query_specs)
            system.run(10)
            return system.metrics.messages_per_second()

        assert build(ReportingMode.CENTRAL_OPTIMAL) < build(ReportingMode.NAIVE)

    def test_only_uplink_traffic(self):
        system = make_centralized(self.build_world())
        system.install_query(circle_query(0, 3.0))
        system.run(5)
        assert system.metrics.downlink_messages_per_second() == 0.0

    def test_server_load_recorded(self):
        system = make_centralized(self.build_world())
        system.install_query(circle_query(0, 3.0))
        system.run(5)
        assert system.metrics.mean_server_seconds() > 0.0
        assert system.metrics.mean_server_ops() > 0.0
