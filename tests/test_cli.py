"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("fig01", "fig13", "ablation-loss", "analysis-alpha"):
            assert exp_id in out


class TestParams:
    def test_paper_defaults(self, capsys):
        assert main(["params"]) == 0
        out = capsys.readouterr().out
        assert "10000" in out  # no
        assert "1000" in out  # nmq

    def test_scaled(self, capsys):
        assert main(["params", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "100" in out


class TestRun:
    def test_single_experiment(self, capsys):
        assert main(["run", "fig12", "--scale", "0.01", "--steps", "6"]) == 0
        out = capsys.readouterr().out
        assert "[fig12]" in out
        assert "radius-factor" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err


class TestSimulate:
    def test_basic_simulation(self, capsys):
        code = main(
            ["simulate", "--objects", "100", "--queries", "10", "--steps", "6", "--accuracy"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "messages/s" in out
        assert "mean LQT size" in out

    def test_lazy_flag(self, capsys):
        code = main(["simulate", "--objects", "100", "--steps", "4", "--lazy"])
        assert code == 0
        assert "lazy" in capsys.readouterr().out


class TestBench:
    def test_parser_accepts_bench_flags(self):
        args = build_parser().parse_args(
            ["bench", "--smoke", "--tag", "ci", "--output", "out"]
        )
        assert args.smoke is True
        assert args.tag == "ci"
        assert args.output == "out"

    def test_dispatches_to_run_bench(self, monkeypatch, tmp_path):
        import repro.fastpath.bench as bench_mod

        calls = {}

        def fake_run_bench(
            tag=None,
            smoke=False,
            out_dir=None,
            log=print,
            shards=1,
            latency=0,
            jitter=0,
            compare=None,
            workers=0,
            executor="thread",
            scale="default",
            checkpoint_every=0,
            rebalance_every=0,
            rebalance_metric="seconds",
        ):
            calls.update(
                tag=tag, smoke=smoke, out_dir=out_dir, shards=shards,
                latency=latency, jitter=jitter, compare=compare,
                workers=workers, executor=executor, scale=scale,
                checkpoint_every=checkpoint_every,
                rebalance_every=rebalance_every, rebalance_metric=rebalance_metric,
            )
            return tmp_path / "BENCH_x.json"

        monkeypatch.setattr(bench_mod, "run_bench", fake_run_bench)
        assert main([
            "bench", "--smoke", "--tag", "x", "--shards", "4",
            "--latency", "2", "--workers", "4", "--executor", "process",
        ]) == 0
        assert calls == {
            "tag": "x", "smoke": True, "out_dir": None, "shards": 4,
            "latency": 2, "jitter": 0, "compare": None,
            "workers": 4, "executor": "process", "scale": "default",
            "checkpoint_every": 0,
            "rebalance_every": 0, "rebalance_metric": "seconds",
        }

    def test_regression_gate_exit_code(self, monkeypatch, tmp_path):
        import repro.fastpath.bench as bench_mod

        def failing_run_bench(**kwargs):
            raise bench_mod.BenchRegression("dense/reference: 50.0 < 80% of 100.0")

        monkeypatch.setattr(bench_mod, "run_bench", failing_run_bench)
        assert main(["bench", "--smoke", "--compare", "BENCH_old.json"]) == 1


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_prog_name(self):
        assert build_parser().prog == "repro"
