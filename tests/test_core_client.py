"""Unit tests for the moving-object client (LQT processing, reporting)."""

from repro.core import PropagationMode
from repro.core.messages import MotionStateRequest, ResultChangeReport
from repro.geometry import Point, Vector

from tests.conftest import circle_query, make_object, make_system


def uplinks_of_type(system, name):
    return system.ledger.counts_by_type.get(name, 0)


class TestEvaluation:
    def test_initial_targets_reported_after_first_step(self, small_world):
        qid = small_world.install_query(circle_query(0, 2.0))
        small_world.step()
        # objects 1 (1 mi) and 4 (~1.41 mi) are inside radius 2; 2 and 3 not.
        assert small_world.result(qid) == frozenset({1, 4})

    def test_no_report_when_status_unchanged(self, small_world):
        small_world.install_query(circle_query(0, 2.0))
        small_world.step()
        before = uplinks_of_type(small_world, "ResultChangeReport")
        small_world.step()  # nothing moves (all velocities zero)
        after = uplinks_of_type(small_world, "ResultChangeReport")
        assert after == before

    def test_target_leaving_region_reports_false(self, small_world):
        qid = small_world.install_query(circle_query(0, 2.0))
        small_world.step()
        client1 = small_world.client(1)
        client1.obj.pos = Point(29.0, 25.0)  # 4 miles away, same cell range
        small_world.step()
        assert 1 not in small_world.result(qid)

    def test_prediction_uses_focal_velocity(self, small_world):
        """Object-side evaluation dead-reckons the focal position: with a
        moving focal object, a stationary target enters the region without
        any new broadcast."""
        qid = small_world.install_query(circle_query(0, 2.0))
        small_world.step()
        assert 2 not in small_world.result(qid)  # 3 miles north
        # Focal starts moving north at 120 mph = 1 mile per 30 s step.
        client0 = small_world.client(0)
        client0.obj.vel = Vector(0.0, 120.0)
        small_world.step()  # velocity relayed (dead reckoning, delta=0)
        small_world.step()
        # After ~2 steps the focal is ~2 miles north; object 2 within range.
        assert 2 in small_world.result(qid)


class TestGroupedEvaluation:
    def test_query_bitmap_single_report_for_group(self):
        objects = [make_object(0, 25, 25), make_object(1, 26, 25)]
        system = make_system(objects, grouping=True)
        q_small = system.install_query(circle_query(0, 1.5))
        q_large = system.install_query(circle_query(0, 3.0))
        before = uplinks_of_type(system, "ResultChangeReport")
        system.step()
        reports = uplinks_of_type(system, "ResultChangeReport") - before
        assert reports == 1  # one bitmap report covering both queries
        assert system.result(q_small) == frozenset({1})
        assert system.result(q_large) == frozenset({1})

    def test_ungrouped_sends_individual_reports(self):
        objects = [make_object(0, 25, 25), make_object(1, 26, 25)]
        system = make_system(objects, grouping=False)
        system.install_query(circle_query(0, 1.5))
        system.install_query(circle_query(0, 3.0))
        before = uplinks_of_type(system, "ResultChangeReport")
        system.step()
        assert uplinks_of_type(system, "ResultChangeReport") - before == 2

    def test_nested_radii_shortcircuit_counts(self):
        objects = [make_object(0, 25, 25), make_object(1, 35, 35)]
        system = make_system(objects, alpha=25.0, grouping=True)
        system.install_query(circle_query(0, 1.0))
        system.install_query(circle_query(0, 2.0))
        system.install_query(circle_query(0, 3.0))
        system.step()
        client1 = system.client(1)
        # Far outside the largest radius: one real evaluation, two implied.
        stats = client1.stats  # stats were reset at measurement; use totals
        metrics = system.metrics.steps[-1]
        assert metrics.skipped_by_grouping >= 2

    def test_grouping_results_match_ungrouped(self):
        objects = [
            make_object(0, 25, 25),
            make_object(1, 26, 25),
            make_object(2, 27, 25),
            make_object(3, 30, 25),
        ]
        grouped = make_system(objects, grouping=True)
        ungrouped = make_system(
            [make_object(o.oid, o.pos.x, o.pos.y) for o in objects], grouping=False
        )
        for system in (grouped, ungrouped):
            system.install_query(circle_query(0, 1.5))
            system.install_query(circle_query(0, 2.5))
            system.install_query(circle_query(0, 5.5))
            system.step()
        assert grouped.results() == ungrouped.results()


class TestSafePeriodClient:
    def test_far_object_skips_evaluations(self):
        objects = [make_object(0, 5, 5, max_speed=10.0),
                   make_object(1, 45, 45, max_speed=10.0)]
        system = make_system(objects, alpha=50.0, safe_period=True)
        system.install_query(circle_query(0, 1.0))
        system.step()  # first evaluation computes the safe period
        first = system.metrics.steps[-1].evaluated_queries
        system.step()
        second = system.metrics.steps[-1].skipped_by_safe_period
        assert first >= 1
        assert second >= 1  # ~56 miles apart at 20 mph closing: long sp

    def test_safe_period_never_misses_entry(self):
        """An object racing at max speed toward the focal object is picked
        up by the time it enters the region, despite skipped evaluations."""
        objects = [
            make_object(0, 10, 25, max_speed=50.0),
            make_object(1, 40, 25, vx=-200.0, vy=0.0, max_speed=200.0),
        ]
        with_sp = make_system(objects, alpha=50.0, safe_period=True)
        qid = with_sp.install_query(circle_query(0, 2.0))
        entered_steps = []
        for step in range(40):
            with_sp.step()
            if 1 in with_sp.result(qid):
                entered_steps.append(with_sp.clock.step)
                break
        assert entered_steps, "object never detected inside the region"
        # Cross-check against the exact oracle at the detection step.
        assert 1 in with_sp.oracle_results()[qid]


class TestDownlinkHandling:
    def test_motion_state_request_answered(self, small_world):
        before = uplinks_of_type(small_world, "MotionStateResponse")
        small_world.transport.send(3, MotionStateRequest(oid=3))
        assert uplinks_of_type(small_world, "MotionStateResponse") == before + 1

    def test_request_for_other_object_ignored(self, small_world):
        before = uplinks_of_type(small_world, "MotionStateResponse")
        # Deliver a request addressed to object 0 into object 3's radio.
        small_world.client(3).on_downlink(MotionStateRequest(oid=0))
        assert uplinks_of_type(small_world, "MotionStateResponse") == before

    def test_unknown_message_rejected(self, small_world):
        import pytest

        with pytest.raises(TypeError):
            small_world.client(0).on_downlink(object())


class TestLazyClient:
    def test_non_focal_silent_on_cell_change(self):
        objects = [make_object(0, 25, 25), make_object(1, 26, 25)]
        system = make_system(objects, propagation=PropagationMode.LAZY)
        system.install_query(circle_query(0, 2.0))
        before = uplinks_of_type(system, "CellChangeReport")
        client1 = system.client(1)
        client1.obj.pos = Point(41.0, 41.0)  # new cell
        client1.report_phase(system.clock)
        assert uplinks_of_type(system, "CellChangeReport") == before

    def test_focal_still_reports_cell_change_under_lazy(self):
        objects = [make_object(0, 25, 25), make_object(1, 26, 25)]
        system = make_system(objects, propagation=PropagationMode.LAZY)
        system.install_query(circle_query(0, 2.0))
        before = uplinks_of_type(system, "CellChangeReport")
        client0 = system.client(0)
        client0.obj.pos = Point(41.0, 41.0)
        client0.report_phase(system.clock)
        assert uplinks_of_type(system, "CellChangeReport") == before + 1

    def test_stale_queries_dropped_locally(self):
        objects = [make_object(0, 25, 25), make_object(1, 26, 25)]
        system = make_system(objects, propagation=PropagationMode.LAZY)
        qid = system.install_query(circle_query(0, 2.0))
        client1 = system.client(1)
        assert qid in client1.lqt
        client1.obj.pos = Point(48.0, 48.0)  # far outside the mon region
        client1.report_phase(system.clock)
        assert qid not in client1.lqt


class TestDeadReckoningClient:
    def test_no_velocity_report_under_linear_motion(self):
        objects = [make_object(0, 25, 25, vx=60.0), make_object(1, 26, 25)]
        system = make_system(objects, alpha=50.0)  # huge cells: no crossings
        system.install_query(circle_query(0, 2.0))
        before = uplinks_of_type(system, "VelocityChangeReport")
        system.run(4)
        assert uplinks_of_type(system, "VelocityChangeReport") == before

    def test_threshold_suppresses_small_deviations(self):
        objects = [make_object(0, 25, 25, vx=60.0), make_object(1, 26, 25)]
        system = make_system(objects, alpha=50.0, dead_reckoning_threshold=5.0)
        system.install_query(circle_query(0, 2.0))
        client0 = system.client(0)
        client0.obj.vel = Vector(61.0, 0.0)  # tiny change, deviation < 5 mi
        before = uplinks_of_type(system, "VelocityChangeReport")
        system.run(3)
        assert uplinks_of_type(system, "VelocityChangeReport") == before
