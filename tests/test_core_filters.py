"""Tests for filter combinators and their end-to-end behaviour."""

from hypothesis import given, strategies as st

from repro.core import (
    AndFilter,
    NotFilter,
    OrFilter,
    PropertyEqualsFilter,
    QuerySpec,
    TrueFilter,
)
from repro.geometry import Circle
from repro.workload import ClassThresholdFilter

from tests.conftest import make_object, make_system


class TestCombinators:
    def test_property_equals(self):
        f = PropertyEqualsFilter("role", "taxi")
        assert f.matches({"role": "taxi"})
        assert not f.matches({"role": "bus"})
        assert not f.matches({})

    def test_and(self):
        f = AndFilter((PropertyEqualsFilter("a", 1), PropertyEqualsFilter("b", 2)))
        assert f.matches({"a": 1, "b": 2})
        assert not f.matches({"a": 1, "b": 3})

    def test_or(self):
        f = OrFilter((PropertyEqualsFilter("a", 1), PropertyEqualsFilter("b", 2)))
        assert f.matches({"a": 1})
        assert f.matches({"b": 2})
        assert not f.matches({"a": 0, "b": 0})

    def test_not(self):
        f = NotFilter(PropertyEqualsFilter("a", 1))
        assert f.matches({"a": 2})
        assert not f.matches({"a": 1})

    def test_empty_and_is_true(self):
        assert AndFilter(()).matches({})

    def test_empty_or_is_false(self):
        assert not OrFilter(()).matches({})

    def test_nested_composition(self):
        f = AndFilter(
            (
                OrFilter((PropertyEqualsFilter("kind", "car"), PropertyEqualsFilter("kind", "van"))),
                NotFilter(PropertyEqualsFilter("out_of_service", True)),
            )
        )
        assert f.matches({"kind": "van"})
        assert not f.matches({"kind": "van", "out_of_service": True})
        assert not f.matches({"kind": "bike"})

    @given(st.dictionaries(st.text(max_size=3), st.integers(), max_size=4))
    def test_de_morgan(self, props):
        a = PropertyEqualsFilter("x", 1)
        b = PropertyEqualsFilter("y", 2)
        lhs = NotFilter(AndFilter((a, b))).matches(props)
        rhs = OrFilter((NotFilter(a), NotFilter(b))).matches(props)
        assert lhs == rhs

    @given(st.dictionaries(st.text(max_size=3), st.integers(), max_size=4))
    def test_double_negation(self, props):
        f = ClassThresholdFilter(50)
        assert NotFilter(NotFilter(f)).matches(props) == f.matches(props)


class TestFiltersEndToEnd:
    def test_composite_filter_restricts_result(self):
        objects = [
            make_object(0, 25, 25),
            make_object(1, 26, 25, props={"kind": "car", "fuel": "ev"}),
            make_object(2, 24, 25, props={"kind": "car", "fuel": "gas"}),
            make_object(3, 25, 26, props={"kind": "van", "fuel": "ev"}),
        ]
        system = make_system(objects)
        ev_cars = AndFilter(
            (PropertyEqualsFilter("kind", "car"), PropertyEqualsFilter("fuel", "ev"))
        )
        qid = system.install_query(QuerySpec(oid=0, region=Circle(0, 0, 3.0), filter=ev_cars))
        unfiltered = system.install_query(
            QuerySpec(oid=0, region=Circle(0, 0, 3.0), filter=TrueFilter())
        )
        system.step()
        assert system.result(qid) == frozenset({1})
        assert system.result(unfiltered) == frozenset({1, 2, 3})
        assert system.results() == system.oracle_results()
