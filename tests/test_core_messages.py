"""Tests for protocol message types and size accounting."""

from repro.core.messages import (
    BITS_HEADER,
    BITS_MOTION_STATE,
    BITS_OID,
    BITS_QID,
    CellChangeReport,
    FocalRoleNotification,
    MotionStateRequest,
    MotionStateResponse,
    QueryDescriptor,
    QueryInstallBroadcast,
    QueryInstallList,
    QueryRemoveBroadcast,
    QueryUpdateBroadcast,
    ResultChangeReport,
    VelocityChangeBroadcast,
    VelocityChangeReport,
)
from repro.core.query import TrueFilter
from repro.geometry import Circle, Point, Vector
from repro.grid import CellRange
from repro.mobility import MotionState


def state():
    return MotionState(pos=Point(1, 2), vel=Vector(3, 4), recorded_at=0.5)


def descriptor(qid=1):
    return QueryDescriptor(
        qid=qid,
        oid=2,
        region=Circle(0, 0, 3.0),
        filter=TrueFilter(),
        focal_state=state(),
        focal_max_speed=100.0,
        mon_region=CellRange(0, 2, 0, 2),
    )


class TestUplinkSizes:
    def test_velocity_report(self):
        msg = VelocityChangeReport(oid=1, state=state())
        assert msg.bits == BITS_HEADER + BITS_OID + BITS_MOTION_STATE

    def test_cell_change_without_state(self):
        plain = CellChangeReport(oid=1, prev_cell=(0, 0), new_cell=(0, 1))
        with_state = CellChangeReport(oid=1, prev_cell=(0, 0), new_cell=(0, 1), state=state())
        assert with_state.bits == plain.bits + BITS_MOTION_STATE

    def test_result_change_bitmap_grows_by_bytes(self):
        one = ResultChangeReport(oid=1, changes={1: True})
        eight = ResultChangeReport(oid=1, changes={i: True for i in range(8)})
        nine = ResultChangeReport(oid=1, changes={i: True for i in range(9)})
        assert one.bits == eight.bits  # one bitmap byte covers 8 queries
        assert nine.bits == eight.bits + 8

    def test_grouped_report_cheaper_than_individual(self):
        grouped = ResultChangeReport(oid=1, changes={i: True for i in range(5)})
        individual = sum(ResultChangeReport(oid=1, changes={i: True}).bits for i in range(5))
        assert grouped.bits < individual

    def test_motion_state_response(self):
        msg = MotionStateResponse(oid=1, state=state(), max_speed=100.0)
        assert msg.bits > BITS_HEADER + BITS_OID + BITS_MOTION_STATE


class TestDownlinkSizes:
    def test_install_broadcast_scales_with_queries(self):
        one = QueryInstallBroadcast(queries=(descriptor(1),))
        two = QueryInstallBroadcast(queries=(descriptor(1), descriptor(2)))
        assert two.bits == one.bits + descriptor(2).bits

    def test_grouped_install_cheaper_than_separate(self):
        grouped = QueryInstallBroadcast(queries=(descriptor(1), descriptor(2)))
        separate = (
            QueryInstallBroadcast(queries=(descriptor(1),)).bits
            + QueryInstallBroadcast(queries=(descriptor(2),)).bits
        )
        assert grouped.bits < separate

    def test_update_broadcast(self):
        msg = QueryUpdateBroadcast(queries=(descriptor(),))
        assert msg.bits == BITS_HEADER + descriptor().bits

    def test_remove_broadcast(self):
        assert (
            QueryRemoveBroadcast(qids=(1, 2)).bits
            == BITS_HEADER + 2 * BITS_QID
        )

    def test_velocity_broadcast_lazy_expansion_costs_more(self):
        eager = VelocityChangeBroadcast(oid=1, state=state(), qids=(1,))
        lazy = VelocityChangeBroadcast(
            oid=1, state=state(), qids=(1,), descriptors=(descriptor(),)
        )
        assert lazy.bits == eager.bits + descriptor().bits

    def test_focal_notification_small(self):
        assert FocalRoleNotification(oid=1, has_mq=True).bits < 200

    def test_install_list(self):
        msg = QueryInstallList(oid=1, queries=(descriptor(),))
        assert msg.bits == BITS_HEADER + BITS_OID + descriptor().bits

    def test_state_request_minimal(self):
        assert MotionStateRequest(oid=1).bits == BITS_HEADER + BITS_OID


class TestImmutability:
    def test_messages_are_frozen(self):
        import pytest

        msg = MotionStateRequest(oid=1)
        with pytest.raises(AttributeError):
            msg.oid = 2  # type: ignore[misc]
