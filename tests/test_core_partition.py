"""Unit tests for the deterministic grid partitioner (cell -> shard hash)."""

from __future__ import annotations

import pytest

from repro.core import GridPartitioner
from repro.geometry import Rect
from repro.grid import CellRange, Grid


def make_grid(cols=10, rows=7, alpha=5.0):
    return Grid(Rect(0, 0, cols * alpha, rows * alpha), alpha)


class TestStripeBounds:
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 4, 7, 10])
    def test_columns_partition_exactly(self, num_shards):
        """Every column is owned by exactly one shard, stripes are
        contiguous, and shard_of_cell agrees with columns_of."""
        grid = make_grid(cols=10)
        part = GridPartitioner(grid, num_shards)
        seen = []
        for shard in range(part.num_shards):
            lo, hi = part.columns_of(shard)
            assert lo <= hi
            seen.extend(range(lo, hi + 1))
        assert seen == list(range(grid.n_cols))
        for i in range(grid.n_cols):
            for j in range(grid.n_rows):
                shard = part.shard_of_cell((i, j))
                lo, hi = part.columns_of(shard)
                assert lo <= i <= hi
                assert part.owns(shard, (i, j))

    def test_near_even_split(self):
        part = GridPartitioner(make_grid(cols=10), 4)
        widths = [hi - lo + 1 for lo, hi in (part.columns_of(s) for s in range(4))]
        assert sum(widths) == 10
        assert max(widths) - min(widths) <= 1

    def test_requested_count_clamped_to_columns(self):
        grid = make_grid(cols=4)
        part = GridPartitioner(grid, 64)
        assert part.num_shards == 4
        # Every shard still owns at least one column.
        assert all(part.columns_of(s)[0] <= part.columns_of(s)[1] for s in range(4))

    def test_out_of_range_cells_clamp(self):
        part = GridPartitioner(make_grid(cols=10), 3)
        assert part.shard_of_cell((-5, 0)) == 0
        assert part.shard_of_cell((999, 0)) == part.num_shards - 1

    def test_invalid_count_raises(self):
        with pytest.raises(ValueError):
            GridPartitioner(make_grid(), 0)


class TestRegionSplit:
    def test_cells_of_cover_grid(self):
        grid = make_grid(cols=9, rows=5)
        part = GridPartitioner(grid, 3)
        covered = set()
        for shard in range(part.num_shards):
            cells = set(part.cells_of(shard))
            assert not (cells & covered), "shard stripes overlap"
            covered |= cells
        assert len(covered) == grid.n_cols * grid.n_rows

    @pytest.mark.parametrize("num_shards", [1, 2, 3, 5])
    def test_split_is_exact_partition_of_region(self, num_shards):
        grid = make_grid(cols=10, rows=6)
        part = GridPartitioner(grid, num_shards)
        for lo_i in range(0, 9, 2):
            for hi_i in range(lo_i, 10, 3):
                region = CellRange(lo_i, hi_i, 1, 4)
                portions = part.split(region)
                assert [s for s, _ in portions] == sorted({s for s, _ in portions}), (
                    "split not in ascending shard order"
                )
                cells = []
                for shard, portion in portions:
                    for cell in portion:
                        assert part.owns(shard, cell)
                        cells.append(cell)
                assert sorted(cells) == sorted(region), (
                    f"split of {region} is not an exact partition"
                )

    def test_clip_disjoint_is_none(self):
        part = GridPartitioner(make_grid(cols=10), 2)
        region = CellRange(0, 2, 0, 3)  # entirely inside shard 0
        assert part.clip(region, 1) is None
        assert part.clip(region, 0) == region

    def test_shards_of_region_span(self):
        part = GridPartitioner(make_grid(cols=10), 2)  # stripes 0-4, 5-9
        assert list(part.shards_of_region(CellRange(3, 6, 0, 0))) == [0, 1]
        assert list(part.shards_of_region(CellRange(0, 4, 0, 0))) == [0]
        assert list(part.shards_of_region(CellRange(5, 9, 0, 0))) == [1]


class TestMutation:
    """The epoch-versioned mutable side of PartitionMap."""

    def test_initial_epoch_and_bounds(self):
        part = GridPartitioner(make_grid(cols=10), 4)
        assert part.epoch == 0
        assert part.bounds == (0, 2, 5, 7, 10)
        assert [part.width_of(s) for s in range(4)] == [2, 3, 2, 3]

    def test_transfer_moves_columns_and_bumps_epoch(self):
        part = GridPartitioner(make_grid(cols=10), 2)  # stripes 0-4, 5-9
        moved = part.transfer(0, 1, 2)
        assert moved == 2
        assert part.epoch == 1
        assert part.columns_of(0) == (0, 2)
        assert part.columns_of(1) == (3, 9)
        assert part.shard_of_cell((3, 0)) == 1

    def test_transfer_clamps_to_donor_width(self):
        part = GridPartitioner(make_grid(cols=10), 2)
        moved = part.transfer(0, 1, 99)
        assert moved == 5  # shard 0 had exactly 5 columns
        assert part.width_of(0) == 0
        assert part.width_of(1) == 10
        assert part.epoch == 1

    def test_transfer_non_adjacent_or_noop_keeps_epoch(self):
        part = GridPartitioner(make_grid(cols=10), 4)
        with pytest.raises(ValueError):
            part.transfer(0, 2, 1)
        assert part.transfer(0, 1, 0) == 0
        assert part.epoch == 0

    def test_empty_stripe_receives_no_routes(self):
        part = GridPartitioner(make_grid(cols=10), 2)
        part.transfer(0, 1, 5)  # shard 0 emptied
        assert part.width_of(0) == 0
        for col in range(10):
            assert part.shard_of_cell((col, 0)) == 1
        whole = CellRange(0, 9, 0, 6)
        assert part.clip(whole, 0) is None
        assert [s for s, _ in part.split(whole)] == [1]
        assert list(part.shards_of_region(whole)) == [1]

    def test_single_column_stripe_is_a_valid_donor_once(self):
        part = GridPartitioner(make_grid(cols=3), 3)  # one column each
        assert [part.width_of(s) for s in range(3)] == [1, 1, 1]
        assert part.transfer(1, 2, 1) == 1
        assert part.width_of(1) == 0
        # A second donation from the now-empty stripe is a no-op.
        assert part.transfer(1, 2, 1) == 0
        assert part.epoch == 1

    def test_epoch_monotone_under_split_merge_split(self):
        part = GridPartitioner(make_grid(cols=12), 3)
        epochs = [part.epoch]
        part.split_stripe(0)
        epochs.append(part.epoch)
        part.merge_stripes(0, 1)
        epochs.append(part.epoch)
        part.split_stripe(1)
        epochs.append(part.epoch)
        assert epochs == sorted(set(epochs)), "epoch must strictly increase"
        assert sum(part.width_of(s) for s in range(3)) == 12

    def test_restore_state_roundtrip_and_validation(self):
        part = GridPartitioner(make_grid(cols=10), 4)
        part.transfer(0, 1, 2)
        saved_bounds, saved_epoch = part.bounds, part.epoch
        other = GridPartitioner(make_grid(cols=10), 4)
        other.restore_state(saved_bounds, saved_epoch)
        assert other.bounds == saved_bounds and other.epoch == saved_epoch
        with pytest.raises(ValueError):
            other.restore_state((0, 3, 5, 10), saved_epoch)  # wrong length
        with pytest.raises(ValueError):
            other.restore_state((0, 5, 3, 8, 10), saved_epoch)  # not monotone
        with pytest.raises(ValueError):
            other.restore_state((1, 3, 5, 8, 10), saved_epoch)  # wrong span
