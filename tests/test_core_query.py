"""Tests for the moving-query model and filters."""

import pytest

from repro.core import MovingQuery, QuerySpec, TrueFilter
from repro.geometry import Circle, Point
from repro.workload import ClassThresholdFilter, filter_for_selectivity


class TestMovingQuery:
    def make(self, r=2.0):
        return MovingQuery(qid=1, oid=7, region=Circle(0, 0, r), filter=TrueFilter())

    def test_region_must_be_relative(self):
        with pytest.raises(ValueError):
            MovingQuery(qid=1, oid=7, region=Circle(3, 0, 2), filter=TrueFilter())

    def test_radius(self):
        assert self.make(r=2.5).radius == 2.5

    def test_region_at_recenters(self):
        q = self.make()
        assert q.region_at(Point(10, 20)) == Circle(10, 20, 2.0)

    def test_covers(self):
        q = self.make(r=2.0)
        assert q.covers(Point(0, 0), Point(1.5, 0))
        assert q.covers(Point(0, 0), Point(2.0, 0))  # boundary
        assert not q.covers(Point(0, 0), Point(2.1, 0))

    def test_covers_moves_with_focal(self):
        q = self.make(r=2.0)
        assert q.covers(Point(100, 100), Point(101, 100))
        assert not q.covers(Point(100, 100), Point(1, 0))

    def test_spec_with_qid(self):
        spec = QuerySpec(oid=3, region=Circle(0, 0, 1.0))
        q = spec.with_qid(9)
        assert (q.qid, q.oid, q.radius) == (9, 3, 1.0)
        assert isinstance(q.filter, TrueFilter)


class TestFilters:
    def test_true_filter_matches_anything(self):
        assert TrueFilter().matches({})
        assert TrueFilter().matches({"any": "thing"})

    def test_class_threshold(self):
        f = ClassThresholdFilter(threshold=75)
        assert f.matches({"class": 0})
        assert f.matches({"class": 74})
        assert not f.matches({"class": 75})
        assert not f.matches({"class": 99})

    def test_missing_class_property_fails(self):
        assert not ClassThresholdFilter().matches({})

    def test_selectivity_property(self):
        assert ClassThresholdFilter(threshold=75).selectivity == 0.75

    def test_filter_for_selectivity(self):
        assert filter_for_selectivity(0.75).threshold == 75
        assert filter_for_selectivity(0.0).threshold == 0
        assert filter_for_selectivity(1.0).threshold == 100

    def test_invalid_selectivity(self):
        with pytest.raises(ValueError):
            filter_for_selectivity(1.5)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            ClassThresholdFilter(threshold=101)
