"""Tests for the safe-period computation (paper Section 4.2)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core import safe_period_hours

speeds = st.floats(min_value=0.0, max_value=300.0, allow_nan=False)
distances = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False)
radii = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
times = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)


class TestSafePeriodUnit:
    def test_paper_formula(self):
        # sp = (dist - r) / (maxVel_i + maxVel_j)
        assert safe_period_hours(100.0, 10.0, 50.0, 40.0) == pytest.approx(1.0)

    def test_inside_region_zero(self):
        assert safe_period_hours(5.0, 10.0, 50.0, 50.0) == 0.0

    def test_on_boundary_zero(self):
        assert safe_period_hours(10.0, 10.0, 50.0, 50.0) == 0.0

    def test_both_static_never_entered(self):
        assert safe_period_hours(100.0, 10.0, 0.0, 0.0) == math.inf

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            safe_period_hours(-1.0, 0.0, 1.0, 1.0)

    def test_negative_speed_rejected(self):
        with pytest.raises(ValueError):
            safe_period_hours(1.0, 0.0, -1.0, 1.0)


class TestSafePeriodProperty:
    @given(distances, radii, speeds, speeds, times)
    def test_never_skips_a_true_positive(self, dist, r, v1, v2, t):
        """Soundness: within the safe period the object cannot be inside
        the query region, however both objects move (worst case: closing at
        max speeds).  The closest possible approach after time t is
        dist - (v1 + v2) * t; it must still exceed r for any t < sp."""
        sp = safe_period_hours(dist, r, v1, v2)
        if sp == 0.0 or math.isinf(sp):
            return
        t = min(t, sp * 0.999999)  # strictly inside the safe period
        closest_possible = dist - (v1 + v2) * t
        assert closest_possible >= r - 1e-6

    @given(distances, radii, speeds, speeds)
    def test_nonnegative(self, dist, r, v1, v2):
        assert safe_period_hours(dist, r, v1, v2) >= 0.0

    @given(distances, radii, speeds, speeds)
    def test_monotone_in_distance(self, dist, r, v1, v2):
        sp1 = safe_period_hours(dist, r, v1, v2)
        sp2 = safe_period_hours(dist + 10.0, r, v1, v2)
        assert sp2 >= sp1
