"""Unit tests for the MobiEyes server (installation, handlers, RQI)."""

import pytest

from repro.core.messages import (
    CellChangeReport,
    QueryInstallBroadcast,
    ResultChangeReport,
    VelocityChangeReport,
)
from repro.core import PropagationMode

from tests.conftest import circle_query, make_object, make_system


class TestInstallQuery:
    def test_install_creates_sqt_and_rqi_entries(self, small_world):
        qid = small_world.install_query(circle_query(0, 2.0))
        server = small_world.server
        assert qid in server.sqt
        entry = server.sqt.get(qid)
        assert entry.oid == 0
        assert entry.curr_cell == (5, 5)  # (25, 25) with alpha=5
        for cell in entry.mon_region:
            assert qid in server.rqi.queries_at(cell)

    def test_install_populates_fot_via_state_request(self, small_world):
        small_world.install_query(circle_query(0, 2.0))
        assert 0 in small_world.server.fot
        assert small_world.server.fot.get(0).state.pos.x == 25

    def test_focal_object_learns_its_role(self, small_world):
        small_world.install_query(circle_query(0, 2.0))
        assert small_world.client(0).has_mq

    def test_objects_in_monitoring_region_install(self, small_world):
        qid = small_world.install_query(circle_query(0, 2.0))
        # objects 1, 2, 4 share / neighbour the focal cell
        for oid in (1, 2, 4):
            assert qid in small_world.client(oid).lqt
        # object 3 is far outside the monitoring region
        assert qid not in small_world.client(3).lqt

    def test_focal_object_does_not_monitor_own_query(self, small_world):
        qid = small_world.install_query(circle_query(0, 2.0))
        assert qid not in small_world.client(0).lqt

    def test_unknown_focal_raises(self, small_world):
        with pytest.raises(KeyError):
            small_world.install_query(circle_query(99, 2.0))

    def test_distinct_qids(self, small_world):
        a = small_world.install_query(circle_query(0, 2.0))
        b = small_world.install_query(circle_query(1, 1.0))
        assert a != b

    def test_filter_blocks_install(self, small_world):
        class Never:
            def matches(self, props):
                return False

        qid = small_world.install_query(circle_query(0, 2.0, Never()))
        for oid in (1, 2, 3, 4):
            assert qid not in small_world.client(oid).lqt


class TestRemoveQuery:
    def test_remove_cleans_everything(self, small_world):
        qid = small_world.install_query(circle_query(0, 2.0))
        small_world.remove_query(qid)
        server = small_world.server
        assert qid not in server.sqt
        assert 0 not in server.fot
        assert not small_world.client(0).has_mq
        for oid in (1, 2, 3, 4):
            assert qid not in small_world.client(oid).lqt
        server.check_invariants()

    def test_remove_keeps_focal_role_with_other_queries(self, small_world):
        a = small_world.install_query(circle_query(0, 2.0))
        b = small_world.install_query(circle_query(0, 4.0))
        small_world.remove_query(a)
        assert small_world.client(0).has_mq
        assert 0 in small_world.server.fot
        assert b in small_world.server.sqt


class TestVelocityChangeHandling:
    def test_updates_fot_and_rebroadcasts(self, small_world):
        qid = small_world.install_query(circle_query(0, 2.0))
        obj0 = small_world.client(0).obj
        obj0.vel = obj0.vel.__class__(50.0, 0.0)
        state = obj0.snapshot()
        small_world.transport.uplink(VelocityChangeReport(oid=0, state=state))
        assert small_world.server.fot.get(0).state.vel.x == 50.0
        # Objects in the monitoring region saw the fresh state.
        assert small_world.client(1).lqt.get(qid).focal_state.vel.x == 50.0

    def test_stale_report_for_non_focal_ignored(self, small_world):
        state = small_world.client(3).obj.snapshot()
        small_world.transport.uplink(VelocityChangeReport(oid=3, state=state))
        assert 3 not in small_world.server.fot


class TestCellChangeHandling:
    def test_focal_cell_change_moves_monitoring_region(self, small_world):
        qid = small_world.install_query(circle_query(0, 2.0))
        server = small_world.server
        old_region = server.sqt.get(qid).mon_region
        # Teleport the focal object two cells east and report it.
        client0 = small_world.client(0)
        client0.obj.pos = client0.obj.pos.__class__(36.0, 25.0)
        small_world.transport.uplink(
            CellChangeReport(oid=0, prev_cell=(5, 5), new_cell=(7, 5), state=client0.obj.snapshot())
        )
        new_region = server.sqt.get(qid).mon_region
        assert new_region != old_region
        assert server.sqt.get(qid).curr_cell == (7, 5)
        server.check_invariants()

    def test_non_focal_gets_new_queries_on_cell_change(self, small_world):
        qid = small_world.install_query(circle_query(0, 2.0))
        client3 = small_world.client(3)  # far away, no queries
        assert qid not in client3.lqt
        # Move object 3 next to the focal object; its own report phase
        # detects the cell change, uplinks it, and receives the install
        # list synchronously.
        client3.obj.pos = client3.obj.pos.__class__(27.0, 25.0)
        client3.report_phase(small_world.clock)
        assert qid in client3.lqt

    def test_rqi_diff_suppresses_redundant_installs(self, small_world):
        """Moving between two cells inside the same monitoring region must
        not re-send the query (RQI(new) - RQI(prev) is empty)."""
        qid = small_world.install_query(circle_query(0, 2.0))
        before = small_world.ledger.counts_by_type.get("QueryInstallList", 0)
        small_world.transport.uplink(
            CellChangeReport(oid=1, prev_cell=(5, 5), new_cell=(5, 6))
        )
        after = small_world.ledger.counts_by_type.get("QueryInstallList", 0)
        assert after == before
        assert qid in small_world.client(1).lqt


class TestResultChangeHandling:
    def test_add_and_remove_target(self, small_world):
        qid = small_world.install_query(circle_query(0, 2.0))
        small_world.transport.uplink(ResultChangeReport(oid=1, changes={qid: True}))
        assert small_world.result(qid) == frozenset({1})
        small_world.transport.uplink(ResultChangeReport(oid=1, changes={qid: False}))
        assert small_world.result(qid) == frozenset()

    def test_report_for_removed_query_ignored(self, small_world):
        qid = small_world.install_query(circle_query(0, 2.0))
        small_world.remove_query(qid)
        small_world.transport.uplink(ResultChangeReport(oid=1, changes={qid: True}))
        # no crash, no resurrection
        assert qid not in small_world.server.sqt


class TestGroupedBroadcasts:
    def test_same_focal_same_region_shares_broadcast(self):
        objects = [make_object(0, 25, 25), make_object(1, 26, 25)]
        system = make_system(objects, grouping=True)
        system.install_query(circle_query(0, 2.0))
        system.install_query(circle_query(0, 2.2))  # same monitoring region
        before = system.ledger.counts_by_type.get("VelocityChangeBroadcast", 0)
        client0 = system.client(0)
        client0.obj.vel = client0.obj.vel.__class__(40.0, 0.0)
        system.transport.uplink(VelocityChangeReport(oid=0, state=client0.obj.snapshot()))
        broadcasts = system.ledger.counts_by_type["VelocityChangeBroadcast"] - before
        # Monitoring region fits under one base station here: one message.
        assert broadcasts == 1

    def test_grouping_disabled_broadcasts_separately(self):
        objects = [make_object(0, 25, 25), make_object(1, 26, 25)]
        system = make_system(objects, grouping=False)
        system.install_query(circle_query(0, 2.0))
        system.install_query(circle_query(0, 2.2))
        before = system.ledger.counts_by_type.get("VelocityChangeBroadcast", 0)
        client0 = system.client(0)
        client0.obj.vel = client0.obj.vel.__class__(40.0, 0.0)
        system.transport.uplink(VelocityChangeReport(oid=0, state=client0.obj.snapshot()))
        broadcasts = system.ledger.counts_by_type["VelocityChangeBroadcast"] - before
        assert broadcasts == 2


class TestLazyPropagationServer:
    def test_velocity_broadcast_carries_descriptors(self):
        objects = [make_object(0, 25, 25), make_object(1, 26, 25)]
        system = make_system(objects, propagation=PropagationMode.LAZY)
        qid = system.install_query(circle_query(0, 2.0))
        # Wipe object 1's LQT to simulate a missed install.
        system.client(1).lqt.remove(qid)
        client0 = system.client(0)
        client0.obj.vel = client0.obj.vel.__class__(40.0, 0.0)
        system.transport.uplink(VelocityChangeReport(oid=0, state=client0.obj.snapshot()))
        # The expanded broadcast healed the missing install.
        assert qid in system.client(1).lqt


class TestServerLoadAccounting:
    def test_load_accumulates_and_resets(self, small_world):
        small_world.install_query(circle_query(0, 2.0))
        seconds, ops = small_world.server.reset_load()
        assert seconds > 0.0
        assert ops > 0
        seconds2, ops2 = small_world.server.reset_load()
        assert seconds2 == 0.0
        assert ops2 == 0
