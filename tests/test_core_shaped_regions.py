"""Tests for non-circular query regions.

The paper allows "any closed shape description which has a computationally
cheap point containment check", bound to the focal object through a binding
point; these tests exercise rectangular regions end to end.
"""

import pytest

from repro.core import MovingQuery, QuerySpec, TrueFilter
from repro.geometry import Circle, Point, Rect
from repro.grid import region_reach

from tests.conftest import make_object, make_system


def rect_query(oid, rect):
    return QuerySpec(oid=oid, region=rect, filter=TrueFilter())


class TestShapedQueryModel:
    def test_rect_region_accepted(self):
        q = MovingQuery(qid=1, oid=0, region=Rect(-2, -1, 4, 2), filter=TrueFilter())
        assert q.reach == pytest.approx(5**0.5)  # farthest corner (2, 1)

    def test_offcenter_circle_rejected(self):
        with pytest.raises(ValueError):
            QuerySpec(oid=0, region=Circle(1, 0, 2))

    def test_radius_only_for_circles(self):
        q = MovingQuery(qid=1, oid=0, region=Rect(-1, -1, 2, 2), filter=TrueFilter())
        with pytest.raises(TypeError):
            _ = q.radius

    def test_region_at_translates(self):
        q = MovingQuery(qid=1, oid=0, region=Rect(-2, -1, 4, 2), filter=TrueFilter())
        moved = q.region_at(Point(10, 20))
        assert moved == Rect(8, 19, 4, 2)

    def test_covers_rect_semantics(self):
        q = MovingQuery(qid=1, oid=0, region=Rect(-2, -1, 4, 2), filter=TrueFilter())
        assert q.covers(Point(10, 20), Point(11.9, 20.9))
        assert not q.covers(Point(10, 20), Point(12.1, 20))

    def test_asymmetric_rect_reach(self):
        # Binding point at the origin; the farthest corner is (5, 1).
        assert region_reach(Rect(-1, -1, 6, 2)) == pytest.approx(26**0.5)

    def test_offcenter_circle_reach_includes_offset(self):
        assert region_reach(Circle(3, 4, 2)) == 7.0  # |(3,4)| + r


class TestShapedQueriesEndToEnd:
    def build(self):
        objects = [
            make_object(0, 25, 25),   # focal
            make_object(1, 27, 25),   # 2 east: inside a 3-wide east arm
            make_object(2, 25, 27),   # 2 north: outside a flat rect
            make_object(3, 22, 25),   # 3 west
        ]
        return make_system(objects)

    def test_rect_region_results_match_oracle(self):
        system = self.build()
        # A wide, flat corridor: 3 miles east/west, 1 mile north/south.
        qid = system.install_query(rect_query(0, Rect(-3, -1, 6, 2)))
        system.step()
        assert system.result(qid) == system.oracle_results()[qid]
        assert system.result(qid) == frozenset({1, 3})

    def test_rect_region_tracks_motion(self):
        system = self.build()
        qid = system.install_query(rect_query(0, Rect(-3, -1, 6, 2)))
        system.step()
        # March the focal object north; the corridor follows it.
        from repro.geometry import Vector

        system.client(0).obj.vel = Vector(0.0, 120.0)  # 1 mile/step
        for _ in range(4):
            system.step()
            assert system.result(qid) == system.oracle_results()[qid]

    def test_mixed_shapes_on_one_focal(self):
        system = self.build()
        q_rect = system.install_query(rect_query(0, Rect(-3, -1, 6, 2)))
        q_circle = system.install_query(QuerySpec(oid=0, region=Circle(0, 0, 2.5)))
        system.step()
        oracle = system.oracle_results()
        assert system.result(q_rect) == oracle[q_rect]
        assert system.result(q_circle) == oracle[q_circle]

    @pytest.mark.parametrize("grouping", [False, True])
    @pytest.mark.parametrize("safe_period", [False, True])
    def test_rect_regions_with_optimizations(self, grouping, safe_period):
        objects = [
            make_object(0, 25, 25),
            make_object(1, 27, 25, vx=30.0),
            make_object(2, 25, 27, vy=-20.0),
            make_object(3, 22, 25, vx=10.0, vy=10.0),
        ]
        system = make_system(objects, grouping=grouping, safe_period=safe_period)
        q_rect = system.install_query(rect_query(0, Rect(-3, -1, 6, 2)))
        q_circle = system.install_query(QuerySpec(oid=0, region=Circle(0, 0, 2.0)))
        for _ in range(5):
            system.step()
            oracle = system.oracle_results()
            assert system.result(q_rect) == oracle[q_rect]
            assert system.result(q_circle) == oracle[q_circle]
